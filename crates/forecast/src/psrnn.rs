//! Predictive State Recurrent Neural Network (PSRNN, §7.2).
//!
//! "The key advantage ... is that they have an initialization algorithm
//! based on a method of moments that aims to start the optimization process
//! in a better position towards the global optima" (Downey et al. \[17\]).
//!
//! Faithful PSRNNs use two-stage regression over Hilbert-space embeddings.
//! This reproduction implements the same *shape* of algorithm with a
//! tractable CPU-sized substitute (documented in DESIGN.md):
//!
//! 1. **Predictive state extraction** — PCA compresses each time step's
//!    history window into an `H`-dimensional state, a moment-based linear
//!    map (the "kernel" row of Table 3: the state lives in a feature space
//!    of the history, not the raw observations).
//! 2. **Two-stage regression initialization** — ridge regressions estimate
//!    the state-transition operator `s_{t+1} ≈ A s_t + B o_t + b` and the
//!    prediction head `y ≈ C s_t + d`, giving the recurrent network its
//!    method-of-moments starting point.
//! 3. **Gradient refinement** — BPTT fine-tunes `(A, B, C, b, d)` through a
//!    `tanh` state nonlinearity, exactly how PSRNNs are refined after
//!    initialization.
//!
//! As in the paper, the moment-based start does not guarantee beating the
//! LSTM — the approximation and limited data cap its benefit (§7.2).

use qb_linalg::{ridge_regression, Matrix, Pca};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{ensure_finite, validate_series, ForecastError, WindowSpec};
use crate::nn::{Dense, Param};
use crate::Forecaster;

/// PSRNN hyperparameters.
#[derive(Debug, Clone)]
pub struct PsrnnConfig {
    /// Predictive-state dimension.
    pub state_dim: usize,
    /// History-window length used to extract states (defaults to the
    /// forecasting window at fit time when 0).
    pub history: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    pub batch_size: usize,
    pub grad_clip: f64,
    pub seed: u64,
}

impl Default for PsrnnConfig {
    fn default() -> Self {
        Self {
            state_dim: 20,
            history: 0,
            epochs: 30,
            learning_rate: 2e-3,
            batch_size: 16,
            grad_clip: 5.0,
            seed: 0x9599,
        }
    }
}

/// The PSRNN forecaster.
pub struct Psrnn {
    cfg: PsrnnConfig,
    /// State transition: s' = tanh(A s + B o + b).
    a: Option<Dense>,
    b_in: Option<Dense>,
    /// Prediction head y = C s + d.
    head: Option<Dense>,
    /// Initial state (mean extracted state).
    s0: Vec<f64>,
    spec: Option<WindowSpec>,
    clusters: usize,
}

impl Default for Psrnn {
    fn default() -> Self {
        Self::new(PsrnnConfig::default())
    }
}

impl Psrnn {
    pub fn new(cfg: PsrnnConfig) -> Self {
        Self { cfg, a: None, b_in: None, head: None, s0: Vec::new(), spec: None, clusters: 0 }
    }

    /// One forward step of the refined model.
    fn step(&self, s: &[f64], o: &[f64]) -> Vec<f64> {
        let a = self.a.as_ref().expect("fit first");
        let b = self.b_in.as_ref().expect("fit first");
        let za = a.forward(s);
        let zb = b.forward(o);
        za.iter().zip(&zb).map(|(x, y)| (x + y).tanh()).collect()
    }

    fn run_sequence(&self, seq: &[Vec<f64>]) -> Vec<f64> {
        let mut s = self.s0.clone();
        for o in seq {
            s = self.step(&s, o);
        }
        s
    }
}

impl Forecaster for Psrnn {
    fn name(&self) -> &'static str {
        "PSRNN"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        let (clusters, len) = validate_series(series, spec)?;
        let hist = if self.cfg.history == 0 { spec.window } else { self.cfg.history };
        let state_dim = self.cfg.state_dim.min(hist * clusters);
        // Log-space observations, time-major.
        let obs: Vec<Vec<f64>> = (0..len)
            .map(|t| series.iter().map(|s| s[t].max(0.0).ln_1p()).collect())
            .collect();

        // --- Stage 1: predictive states via PCA of history windows. ---
        // State at time t summarizes obs[t-hist..t]. Checked arithmetic: a
        // configured history longer than the series must error, not wrap.
        let n_states = match len.checked_sub(hist) {
            Some(d) if d + 1 >= 4 => d + 1, // states for t = hist-1 .. len-1
            _ => return Err(ForecastError::NotEnoughData { needed: hist + 4, got: len }),
        };
        let mut hist_rows = Vec::with_capacity(n_states);
        for t in 0..n_states {
            let mut row = Vec::with_capacity(hist * clusters);
            for w in 0..hist {
                row.extend_from_slice(&obs[t + w]);
            }
            hist_rows.push(row);
        }
        let hist_mat = Matrix::from_rows(&hist_rows);
        let pca = Pca::fit(&hist_mat, state_dim);
        let states: Vec<Vec<f64>> =
            (0..n_states).map(|t| pca.transform(hist_mat.row(t))).collect();

        // --- Stage 2: two-stage regression initialization. ---
        // Transition: s_{t+1} ≈ A s_t + B o_{t+1} + b (regressed jointly).
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let trans_rows = n_states - 1;
        let mut x = Matrix::zeros(trans_rows, state_dim + clusters + 1);
        let mut y = Matrix::zeros(trans_rows, state_dim);
        // The runtime recursion produces states equal to s/3.2 (the tanh of
        // the atanh-target cancels), so every regression must see states at
        // that same scale — inputs AND head features alike.
        let scaled = |sv: f64| sv.clamp(-3.0, 3.0) / 3.2;
        for t in 0..trans_rows {
            let row = x.row_mut(t);
            for (j, &sv) in states[t].iter().enumerate() {
                row[j] = scaled(sv);
            }
            // Observation that arrives between state t and t+1.
            row[state_dim..state_dim + clusters].copy_from_slice(&obs[t + hist]);
            row[state_dim + clusters] = 1.0;
            // Pre-nonlinearity target: atanh of the scaled next state.
            for (j, &sv) in states[t + 1].iter().enumerate() {
                y[(t, j)] = scaled(sv).atanh();
            }
        }
        let w = ridge_regression(&x, &y, 1e-2)
            .map_err(|e| ForecastError::Numeric(e.to_string()))?;

        let mut a = Dense::new(state_dim, state_dim, &mut rng);
        let mut b_in = Dense::new(clusters, state_dim, &mut rng);
        for j in 0..state_dim {
            for k in 0..state_dim {
                a.w.value[(j, k)] = w[(k, j)];
            }
            for k in 0..clusters {
                b_in.w.value[(j, k)] = w[(state_dim + k, j)];
            }
            // Bias lives on the `a` dense; b_in's bias stays zero.
            a.b.value[(j, 0)] = w[(state_dim + clusters, j)];
            b_in.b.value[(j, 0)] = 0.0;
        }

        // Prediction head: y_{t+h} ≈ C s_t + d, where s_t is the *refined*
        // (tanh-squashed) state. Initialize against the scaled PCA states.
        // States index t corresponds to time (t + hist - 1); target is the
        // observation `horizon` steps later.
        let mut head_rows = 0;
        for t in 0..n_states {
            if t + hist - 1 + spec.horizon < len {
                head_rows += 1;
            }
        }
        let mut xh = Matrix::zeros(head_rows, state_dim + 1);
        let mut yh = Matrix::zeros(head_rows, clusters);
        let mut r = 0;
        for t in 0..n_states {
            let target_t = t + hist - 1 + spec.horizon;
            if target_t >= len {
                continue;
            }
            let row = xh.row_mut(r);
            for (j, &sv) in states[t].iter().enumerate() {
                // Head features are the runtime states: s/3.2, not
                // tanh(s/3.2).
                row[j] = scaled(sv);
            }
            row[state_dim] = 1.0;
            yh.row_mut(r).copy_from_slice(&obs[target_t]);
            r += 1;
        }
        let wh = ridge_regression(&xh, &yh, 1e-2)
            .map_err(|e| ForecastError::Numeric(e.to_string()))?;
        let mut head = Dense::new(state_dim, clusters, &mut rng);
        for c in 0..clusters {
            for j in 0..state_dim {
                head.w.value[(c, j)] = wh[(j, c)];
            }
            head.b.value[(c, 0)] = wh[(state_dim, c)];
        }

        self.a = Some(a);
        self.b_in = Some(b_in);
        self.head = Some(head);
        self.s0 = vec![0.0; state_dim];
        self.spec = Some(spec);
        self.clusters = clusters;

        // --- Stage 3: BPTT refinement over forecasting windows. ---
        let n_examples = len - spec.window - spec.horizon + 1;
        let mut order: Vec<usize> = (0..n_examples).collect();
        let mut adam_t = 0;
        for _epoch in 0..self.cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(self.cfg.batch_size) {
                // Zero grads.
                {
                    let a = self.a.as_mut().expect("set");
                    a.zero_grad();
                }
                {
                    let b = self.b_in.as_mut().expect("set");
                    b.zero_grad();
                }
                {
                    let h = self.head.as_mut().expect("set");
                    h.zero_grad();
                }
                for &idx in batch {
                    let seq: Vec<Vec<f64>> =
                        (0..spec.window).map(|wd| obs[idx + wd].clone()).collect();
                    let target = &obs[idx + spec.window + spec.horizon - 1];
                    // Forward with caches.
                    let mut s = self.s0.clone();
                    let mut cached: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = Vec::new();
                    for o in &seq {
                        let a = self.a.as_ref().expect("set");
                        let b = self.b_in.as_ref().expect("set");
                        let za = a.forward(&s);
                        let zb = b.forward(o);
                        let s_next: Vec<f64> =
                            za.iter().zip(&zb).map(|(x, y)| (x + y).tanh()).collect();
                        cached.push((s.clone(), o.clone(), s_next.clone()));
                        s = s_next;
                    }
                    let head = self.head.as_mut().expect("set");
                    let pred = head.forward(&s);
                    let dy: Vec<f64> = pred
                        .iter()
                        .zip(target)
                        .map(|(p, t)| 2.0 * (p - t) / batch.len() as f64)
                        .collect();
                    let mut ds = head.backward(&s, &dy);
                    for (s_prev, o, s_next) in cached.iter().rev() {
                        let dz: Vec<f64> = ds
                            .iter()
                            .zip(s_next)
                            .map(|(d, sn)| d * (1.0 - sn * sn))
                            .collect();
                        let a = self.a.as_mut().expect("set");
                        let ds_prev = a.backward(s_prev, &dz);
                        let b = self.b_in.as_mut().expect("set");
                        b.backward(o, &dz);
                        ds = ds_prev;
                    }
                }
                adam_t += 1;
                let (a, b, h) = (
                    self.a.as_mut().expect("set"),
                    self.b_in.as_mut().expect("set"),
                    self.head.as_mut().expect("set"),
                );
                Param::clip_global_norm(
                    &mut [&mut a.w, &mut a.b, &mut b.w, &mut b.b, &mut h.w, &mut h.b],
                    self.cfg.grad_clip,
                );
                a.adam_step(self.cfg.learning_rate, adam_t);
                b.adam_step(self.cfg.learning_rate, adam_t);
                h.adam_step(self.cfg.learning_rate, adam_t);
            }
            // BPTT through the tanh recursion can still blow up on hostile
            // inputs; catch it per epoch rather than after all refinement.
            let h = self.head.as_ref().expect("set");
            ensure_finite("PSRNN", "head weights", h.w.value.as_slice().iter().copied())?;
        }
        let (a, b, h) = (
            self.a.as_ref().expect("set"),
            self.b_in.as_ref().expect("set"),
            self.head.as_ref().expect("set"),
        );
        ensure_finite(
            "PSRNN",
            "weights",
            a.w.value
                .as_slice()
                .iter()
                .chain(b.w.value.as_slice())
                .chain(h.w.value.as_slice())
                .copied(),
        )?;
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let spec = self.spec.expect("PSRNN::predict before fit");
        assert_eq!(recent.len(), self.clusters, "PSRNN::predict: cluster count changed");
        let len = recent[0].len();
        assert!(len >= spec.window, "PSRNN::predict: need at least {} steps", spec.window);
        let seq: Vec<Vec<f64>> = (len - spec.window..len)
            .map(|t| recent.iter().map(|s| s[t].max(0.0).ln_1p()).collect())
            .collect();
        let s = self.run_sequence(&seq);
        let head = self.head.as_ref().expect("fit first");
        head.forward(&s).into_iter().map(|v| v.exp_m1().max(0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_periodic_series() {
        let series: Vec<f64> = (0..300)
            .map(|t| 100.0 + 60.0 * ((t % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect();
        let spec = WindowSpec { window: 12, horizon: 1 };
        let mut m = Psrnn::default();
        m.fit(&[series.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&m, &[series], spec, 260);
        assert!(mse < 0.5, "PSRNN should roughly track the cycle: {mse}");
    }

    #[test]
    fn initialization_alone_is_sensible() {
        // With zero refinement epochs, the two-stage-regression init must
        // already produce finite, non-degenerate predictions.
        let series: Vec<f64> = (0..200).map(|t| 50.0 + ((t % 8) as f64) * 10.0).collect();
        let spec = WindowSpec { window: 8, horizon: 1 };
        let mut m = Psrnn::new(PsrnnConfig { epochs: 0, ..PsrnnConfig::default() });
        m.fit(&[series.clone()], spec).unwrap();
        let pred = m.predict(&[series[180..196].to_vec()]);
        assert!(pred[0].is_finite());
        assert!(pred[0] > 1.0 && pred[0] < 10_000.0, "{}", pred[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let series = vec![(0..150).map(|t| ((t % 6) as f64 + 2.0) * 25.0).collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 6, horizon: 1 };
        let mut a = Psrnn::default();
        let mut b = Psrnn::default();
        a.fit(&series, spec).unwrap();
        b.fit(&series, spec).unwrap();
        let recent = vec![series[0][140..146].to_vec()];
        assert_eq!(a.predict(&recent), b.predict(&recent));
    }

    #[test]
    fn state_dim_clamped_to_feature_dim() {
        // 3-step window, 1 cluster → at most 3 state dims; must not panic.
        let series = vec![vec![5.0; 60]];
        let mut m = Psrnn::new(PsrnnConfig { state_dim: 50, epochs: 2, ..Default::default() });
        m.fit(&series, WindowSpec { window: 3, horizon: 1 }).unwrap();
        let pred = m.predict(&[vec![5.0; 3]]);
        assert!(pred[0].is_finite());
    }
}
