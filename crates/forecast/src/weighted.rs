//! Validation-weighted ensemble — the alternative §6.1 rejects.
//!
//! "We also tried averaging the models with weights derived from the
//! training history, but that led to overfitting and generated worse
//! results." This module implements that alternative so the claim can be
//! tested (see the `ablations` experiment in `qb-bench`): member weights
//! are derived from each model's error on a held-out tail of the training
//! history (inverse-MSE weighting, normalized).

use crate::dataset::{ForecastError, WindowSpec};
use crate::lr::LinearRegression;
use crate::rnn::{Rnn, RnnConfig};
use crate::Forecaster;

/// LR + RNN averaged with validation-derived weights.
pub struct WeightedEnsemble {
    lr: LinearRegression,
    rnn: Rnn,
    /// Weight on LR (RNN gets `1 - weight_lr`). Set during fit.
    weight_lr: f64,
    /// Fraction of the training series held out for weight derivation.
    pub validation_fraction: f64,
}

impl Default for WeightedEnsemble {
    fn default() -> Self {
        Self::new(RnnConfig::default())
    }
}

impl WeightedEnsemble {
    pub fn new(rnn_cfg: RnnConfig) -> Self {
        Self {
            lr: LinearRegression::default(),
            rnn: Rnn::new(rnn_cfg),
            weight_lr: 0.5,
            validation_fraction: 0.2,
        }
    }

    /// The LR weight derived at fit time.
    pub fn weight_lr(&self) -> f64 {
        self.weight_lr
    }
}

impl Forecaster for WeightedEnsemble {
    fn name(&self) -> &'static str {
        "W-ENSEMBLE"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        let (_, len) = crate::dataset::validate_series(series, spec)?;
        let n_val = ((len as f64 * self.validation_fraction) as usize).max(spec.horizon + 1);
        let split = len.saturating_sub(n_val);

        // Derive weights from held-out errors when there is room; fall back
        // to equal weights otherwise.
        let head: Vec<Vec<f64>> = series.iter().map(|s| s[..split].to_vec()).collect();
        self.weight_lr = 0.5;
        if split > spec.min_len() + 4 {
            let mut lr = LinearRegression::default();
            let mut rnn_probe = Rnn::new(RnnConfig {
                // A cheap probe: the weights, not the final model.
                epochs: 10,
                ..RnnConfig::default()
            });
            if lr.fit(&head, spec).is_ok() && rnn_probe.fit(&head, spec).is_ok() {
                let (actual, lr_pred) = crate::rolling_forecast(&lr, series, spec, split);
                let (_, rnn_pred) = crate::rolling_forecast(&rnn_probe, series, spec, split);
                let mse = |pred: &Vec<Vec<f64>>| {
                    let per: Vec<f64> = actual
                        .iter()
                        .zip(pred)
                        .filter(|(a, _)| !a.is_empty())
                        .map(|(a, p)| qb_timeseries::mse_log_space(a, p))
                        .collect();
                    per.iter().sum::<f64>() / per.len().max(1) as f64
                };
                let (m_lr, m_rnn) = (mse(&lr_pred), mse(&rnn_pred));
                // Inverse-MSE weighting: the member that validated better
                // gets proportionally more weight.
                let (inv_lr, inv_rnn) = (1.0 / (m_lr + 1e-9), 1.0 / (m_rnn + 1e-9));
                self.weight_lr = inv_lr / (inv_lr + inv_rnn);
            }
        }

        // Final members train on the full history (as §6.1's variant did).
        self.lr.fit(series, spec)?;
        self.rnn.fit(series, spec)?;
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let a = self.lr.predict(recent);
        let b = self.rnn.predict(recent);
        a.iter()
            .zip(&b)
            .map(|(x, y)| self.weight_lr * x + (1.0 - self.weight_lr) * y)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RnnConfig {
        RnnConfig { epochs: 10, hidden: 8, embedding: 6, ..RnnConfig::default() }
    }

    #[test]
    fn weights_sum_to_one_and_favor_better_member() {
        // A pure linear-friendly series: LR should earn more weight.
        let series = vec![(0..260)
            .map(|t| 100.0 + 60.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 24, horizon: 1 };
        let mut we = WeightedEnsemble::new(quick_cfg());
        we.fit(&series, spec).unwrap();
        let w = we.weight_lr();
        assert!((0.0..=1.0).contains(&w));
        assert!(w > 0.5, "LR should dominate on a linear-friendly cycle: {w}");
    }

    #[test]
    fn prediction_is_weighted_member_combination() {
        let series = vec![vec![50.0; 150]];
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut we = WeightedEnsemble::new(quick_cfg());
        we.fit(&series, spec).unwrap();
        let recent = vec![vec![50.0; 10]];
        let p = we.predict(&recent)[0];
        let lr_p = we.lr.predict(&recent)[0];
        let rnn_p = we.rnn.predict(&recent)[0];
        let expect = we.weight_lr() * lr_p + (1.0 - we.weight_lr()) * rnn_p;
        assert!((p - expect).abs() < 1e-9);
    }

    #[test]
    fn short_series_falls_back_to_equal_weights() {
        // 16 steps: enough to fit (window 10 + horizon 1) but the head
        // left after holding out validation cannot support a probe fit.
        let series = vec![vec![10.0; 16]];
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut we = WeightedEnsemble::new(quick_cfg());
        we.fit(&series, spec).unwrap();
        assert_eq!(we.weight_lr(), 0.5);
    }
}
