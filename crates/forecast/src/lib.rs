//! # qb-forecast
//!
//! The QB5000 **Forecaster** (§6): models that predict the future arrival
//! rate of each template cluster. One model is trained *jointly* over all
//! tracked clusters per prediction horizon (§7.2) — the input is a window
//! of every cluster's recent rates and the output is every cluster's rate
//! `horizon` steps ahead.
//!
//! Implemented model classes (Table 3):
//!
//! | model | linear | memory | kernel |
//! |-------|--------|--------|--------|
//! | [`LinearRegression`] (LR) | ✓ | ✗ | ✗ |
//! | [`Arma`] | ✓ | ✓ | ✗ |
//! | [`KernelRegression`] (KR) | ✗ | ✗ | ✓ |
//! | [`Rnn`] (LSTM) | ✗ | ✓ | ✗ |
//! | [`Fnn`] | ✗ | ✗ | ✗ |
//! | [`Psrnn`] | ✗ | ✓ | ✓ |
//!
//! plus the composites QB5000 actually deploys:
//!
//! * [`Ensemble`] — the equal average of LR and RNN predictions (§6.1);
//! * [`Hybrid`] — ENSEMBLE corrected by KR when KR forecasts a spike more
//!   than γ (=150 %) above the ensemble (§6.1), which is the only
//!   configuration able to predict the annual Admissions deadlines (§7.3).
//!
//! All models train in `ln(1+x)` space and report linear-space rates
//! (§7.2); accuracy is measured with [`qb_timeseries::mse_log_space`].

pub mod arma;
pub mod dataset;
pub mod ensemble;
pub mod fallback;
pub mod fnn;
pub mod hybrid;
pub mod interval;
pub mod kr;
pub mod lr;
pub mod nn;
pub mod persist;
pub mod properties;
pub mod psrnn;
pub mod rnn;
pub mod weighted;

pub use arma::Arma;
pub use dataset::{ensure_finite, sliding_windows, ForecastError, WindowSpec};
pub use ensemble::Ensemble;
pub use fallback::Persistence;
pub use fnn::Fnn;
pub use hybrid::{Hybrid, HybridConfig};
pub use interval::{select_interval, IntervalReport, IntervalSelection};
pub use kr::KernelRegression;
pub use lr::LinearRegression;
pub use properties::{model_properties, ModelProperties};
pub use psrnn::Psrnn;
pub use rnn::{Rnn, RnnConfig};
pub use weighted::WeightedEnsemble;

/// How far down the fallback chain HYBRID → ENSEMBLE → single model →
/// last-value persistence a composite forecaster had to degrade after
/// member training failures. Ordered: later variants are more degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Every member trained; the composite serves as designed.
    Full,
    /// HYBRID lost its KR member: the ensemble serves without spike
    /// correction.
    Ensemble,
    /// The ensemble lost a member: a single learned model serves.
    Single,
    /// Every learned model diverged: last-value persistence serves.
    LastValue,
}

impl DegradationLevel {
    pub fn name(self) -> &'static str {
        match self {
            DegradationLevel::Full => "full",
            DegradationLevel::Ensemble => "ensemble",
            DegradationLevel::Single => "single-model",
            DegradationLevel::LastValue => "last-value",
        }
    }

    /// Stable numeric code for durable serialization (append-only).
    pub fn to_code(self) -> u8 {
        match self {
            DegradationLevel::Full => 0,
            DegradationLevel::Ensemble => 1,
            DegradationLevel::Single => 2,
            DegradationLevel::LastValue => 3,
        }
    }

    /// Inverse of [`DegradationLevel::to_code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => DegradationLevel::Full,
            1 => DegradationLevel::Ensemble,
            2 => DegradationLevel::Single,
            3 => DegradationLevel::LastValue,
            _ => return None,
        })
    }
}

/// A forecasting model jointly predicting all clusters at one horizon.
///
/// `series` is cluster-major: `series[c][t]` is cluster `c`'s arrival rate
/// in time-step `t` (linear space; models transform internally).
///
/// `Send` is a supertrait so trained models can be fitted on worker
/// threads and handed back to the caller (the `qb-parallel` engine fits
/// one model per horizon concurrently).
pub trait Forecaster: Send {
    /// Short display name (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// Installs an observability recorder. The default is a no-op: simple
    /// models have no composite structure to report. ENSEMBLE and HYBRID
    /// override it to count member divergences and failures
    /// (`forecast.divergences`, `forecast.member_failures`).
    fn instrument(&mut self, _recorder: &qb_obs::Recorder) {}

    /// How far down the fallback chain the last fit landed.
    /// [`DegradationLevel::Full`] for models without a fallback chain
    /// (the default); ENSEMBLE and HYBRID report their serving level.
    fn degradation(&self) -> DegradationLevel {
        DegradationLevel::Full
    }

    /// Trains on the given aligned history.
    ///
    /// Implementations may return [`ForecastError::NotEnoughData`] when the
    /// series is shorter than `spec.window + spec.horizon`.
    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError>;

    /// Predicts each cluster's arrival rate `spec.horizon` steps after the
    /// end of `recent`, which must contain at least `spec.window` steps per
    /// cluster (extra leading history is ignored by window-based models).
    ///
    /// # Panics
    /// Panics if called before a successful [`Forecaster::fit`] or with a
    /// cluster count differing from training.
    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64>;
}

/// Rolling evaluation used by all the §7 experiments: walk the test range,
/// predict each step from the preceding window, and return per-cluster
/// `(actual, predicted)` pairs in linear space.
///
/// `series` spans training + test; `test_start` is the first time index to
/// score (predictions use only data ending `horizon` steps before the
/// scored point).
pub fn rolling_forecast(
    model: &dyn Forecaster,
    series: &[Vec<f64>],
    spec: WindowSpec,
    test_start: usize,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let clusters = series.len();
    let len = series.first().map_or(0, Vec::len);
    let mut actual = vec![Vec::new(); clusters];
    let mut predicted = vec![Vec::new(); clusters];
    for t in test_start..len {
        // The window that ends `horizon` steps before t.
        let input_end = match t.checked_sub(spec.horizon) {
            Some(e) if e + 1 >= spec.window => e + 1,
            _ => continue,
        };
        let recent: Vec<Vec<f64>> =
            series.iter().map(|s| s[input_end - spec.window..input_end].to_vec()).collect();
        let pred = model.predict(&recent);
        for c in 0..clusters {
            actual[c].push(series[c][t]);
            predicted[c].push(pred[c]);
        }
    }
    (actual, predicted)
}

/// Average log-space MSE across clusters for a rolling forecast.
pub fn evaluate_mse_log(
    model: &dyn Forecaster,
    series: &[Vec<f64>],
    spec: WindowSpec,
    test_start: usize,
) -> f64 {
    let (actual, predicted) = rolling_forecast(model, series, spec, test_start);
    let per_cluster: Vec<f64> = actual
        .iter()
        .zip(&predicted)
        .filter(|(a, _)| !a.is_empty())
        .map(|(a, p)| qb_timeseries::mse_log_space(a, p))
        .collect();
    assert!(!per_cluster.is_empty(), "evaluate_mse_log: no test points");
    per_cluster.iter().sum::<f64>() / per_cluster.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Constant series: every sane model must nail it.
    #[test]
    fn all_models_predict_constant_series() {
        let series = vec![vec![100.0; 200], vec![50.0; 200]];
        let spec = WindowSpec { window: 12, horizon: 1 };
        let models: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LinearRegression::default()),
            Box::new(KernelRegression::default()),
            Box::new(Arma::default()),
            Box::new(Fnn::default()),
            Box::new(Rnn::new(RnnConfig { epochs: 30, ..RnnConfig::default() })),
            Box::new(Psrnn::default()),
            Box::new(Ensemble::default()),
        ];
        for mut m in models {
            m.fit(&series, spec).unwrap();
            let recent = vec![vec![100.0; 12], vec![50.0; 12]];
            let pred = m.predict(&recent);
            assert!(
                (pred[0] - 100.0).abs() < 15.0,
                "{} cluster0 pred {} far from 100",
                m.name(),
                pred[0]
            );
            assert!(
                (pred[1] - 50.0).abs() < 10.0,
                "{} cluster1 pred {} far from 50",
                m.name(),
                pred[1]
            );
        }
    }

    #[test]
    fn rolling_forecast_shapes() {
        let series =
            vec![(0..100).map(|t| (t as f64 * 0.3).sin().abs() * 10.0).collect::<Vec<_>>()];
        let spec = WindowSpec { window: 10, horizon: 2 };
        let mut m = LinearRegression::default();
        m.fit(&series, spec).unwrap();
        let (a, p) = rolling_forecast(&m, &series, spec, 80);
        assert_eq!(a[0].len(), 20);
        assert_eq!(p[0].len(), 20);
    }

    #[test]
    fn evaluate_mse_log_is_finite_and_small_for_good_model() {
        let series = vec![(0..300)
            .map(|t| 100.0 + 50.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 24, horizon: 1 };
        let mut m = LinearRegression::default();
        m.fit(&series, spec).unwrap();
        let mse = evaluate_mse_log(&m, &series, spec, 250);
        assert!(mse.is_finite());
        assert!(mse < 0.5, "LR should track a pure sinusoid: {mse}");
    }
}
