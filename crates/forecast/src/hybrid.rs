//! The HYBRID model (§6.1): ENSEMBLE corrected by KR.
//!
//! "Since KR is good at predicting spikes with a small number \[of\]
//! observations, if its predicted workload volume is above that of ENSEMBLE
//! by more than a specified threshold, γ (γ ≥ 0), then QB5000 uses the
//! result from KR as its prediction. Otherwise, it uses the result
//! generated from the ENSEMBLE model. In QB5000, we set γ to 150%."
//!
//! Per §6.2, the KR member is trained on a longer input window of the full
//! history (the paper uses three weeks of one-hour intervals) so that the
//! pre-spike ramp of a past year lands near this year's in input space
//! (Appendix B).

use qb_parallel::Parallelism;

use crate::dataset::{ForecastError, WindowSpec};
use crate::ensemble::Ensemble;
use crate::kr::KernelRegression;
use crate::rnn::RnnConfig;
use crate::{DegradationLevel, Forecaster};

/// HYBRID configuration.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Spike threshold γ. KR wins when `kr > γ · ensemble`. The paper's
    /// value is 150 % (= 1.5); Appendix C sweeps 100–200 %.
    pub gamma: f64,
    /// Input window for the KR member, in steps. `None` reuses the
    /// ensemble's window.
    pub kr_window: Option<usize>,
    /// RNN settings for the ensemble member.
    pub rnn: RnnConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self { gamma: 1.5, kr_window: None, rnn: RnnConfig::default() }
    }
}

/// ENSEMBLE with KR spike correction.
///
/// Resilience: if the KR member fails to train it is dropped and the
/// ensemble serves un-corrected (no spike override); the ensemble in turn
/// degrades internally (LR-only, then last-value persistence) rather than
/// failing. [`Hybrid::degradation`] reports the effective serving level.
pub struct Hybrid {
    cfg: HybridConfig,
    ensemble: Ensemble,
    kr: KernelRegression,
    /// Member-level parallelism: the ensemble and the KR corrector fit
    /// (and predict) concurrently; results join in fixed member order so
    /// the PR-1 degradation chain is evaluated exactly as sequentially.
    par: Parallelism,
    /// `Some` only while the KR member is trained and serving.
    kr_spec: Option<WindowSpec>,
    kr_failure: Option<ForecastError>,
    /// Counts KR-member failures/divergences; no-ops until
    /// [`Forecaster::instrument`] installs a recorder.
    divergences: qb_obs::Counter,
    member_failures_metric: qb_obs::Counter,
    spec: Option<WindowSpec>,
    /// How often KR overrode the ensemble in the last prediction batch
    /// (observability for the γ sensitivity analysis).
    pub last_overrides: std::cell::Cell<usize>,
}

impl Default for Hybrid {
    fn default() -> Self {
        Self::new(HybridConfig::default())
    }
}

impl Hybrid {
    pub fn new(cfg: HybridConfig) -> Self {
        let ensemble = Ensemble::new(cfg.rnn.clone());
        Self {
            cfg,
            ensemble,
            kr: KernelRegression::default(),
            par: Parallelism::from_env(),
            kr_spec: None,
            kr_failure: None,
            divergences: qb_obs::Counter::default(),
            member_failures_metric: qb_obs::Counter::default(),
            spec: None,
            last_overrides: std::cell::Cell::new(0),
        }
    }

    /// Overrides the environment-derived parallelism for this model and
    /// its ensemble member.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
        self.ensemble.set_parallelism(par);
    }

    /// The configured γ.
    pub fn gamma(&self) -> f64 {
        self.cfg.gamma
    }

    /// How far down the fallback chain the last fit landed.
    pub fn degradation(&self) -> DegradationLevel {
        let ens = self.ensemble.degradation();
        if self.kr_spec.is_some() && ens == DegradationLevel::Full {
            DegradationLevel::Full
        } else {
            // KR lost ⇒ at least Ensemble-level; a degraded ensemble
            // dominates regardless of KR's state.
            ens.max(DegradationLevel::Ensemble)
        }
    }

    /// Member failures behind the current degradation level.
    pub fn member_failures(&self) -> Vec<(&'static str, ForecastError)> {
        let mut out: Vec<(&'static str, ForecastError)> =
            self.ensemble.member_failures().to_vec();
        if let Some(e) = &self.kr_failure {
            out.push(("KR", e.clone()));
        }
        out
    }
}

impl Forecaster for Hybrid {
    fn name(&self) -> &'static str {
        "HYBRID"
    }

    fn instrument(&mut self, recorder: &qb_obs::Recorder) {
        self.ensemble.instrument(recorder);
        self.divergences = recorder.counter("forecast.divergences");
        self.member_failures_metric = recorder.counter("forecast.member_failures");
    }

    fn degradation(&self) -> DegradationLevel {
        Hybrid::degradation(self)
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        self.kr_spec = None;
        self.kr_failure = None;
        self.spec = None;
        let kr_window = self.cfg.kr_window.unwrap_or(spec.window);
        let kr_spec = WindowSpec { window: kr_window, horizon: spec.horizon };
        // Both members fit concurrently; results join in member order
        // (ensemble first), so the failure handling below sees exactly
        // what a sequential run would.
        let (ensemble, kr, par) = (&mut self.ensemble, &mut self.kr, self.par);
        let (ens_res, kr_res) =
            par.join(move || ensemble.fit(series, spec), move || kr.fit(series, kr_spec));
        ens_res?;
        // The KR member degrades on *any* failure, including NotEnoughData:
        // its window may be far longer than the ensemble's (three weeks in
        // §6.2), and losing spike correction beats losing the forecast.
        match kr_res {
            Ok(()) => self.kr_spec = Some(kr_spec),
            Err(e) => {
                self.member_failures_metric.inc();
                if e.is_model_failure() {
                    self.divergences.inc();
                }
                self.kr_failure = Some(e);
            }
        }
        self.spec = Some(spec);
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        assert!(self.spec.is_some(), "HYBRID::predict before fit");
        // KR only scores with a trained member AND enough history for its
        // (typically longer) window; otherwise the ensemble stands alone.
        let kr_active = self.kr_spec.is_some_and(|ks| recent[0].len() >= ks.window);
        if !kr_active {
            self.last_overrides.set(0);
            return self.ensemble.predict(recent);
        }
        // Borrow the members individually: the surrounding `Hybrid` holds
        // a (non-Sync) override counter the closures must not capture.
        let (ensemble, kr) = (&self.ensemble, &self.kr);
        let (e, k) = self.par.join(|| ensemble.predict(recent), || kr.predict(recent));
        let mut overrides = 0;
        let out = e
            .iter()
            .zip(&k)
            .map(|(&ev, &kv)| {
                if kv > self.cfg.gamma * ev {
                    overrides += 1;
                    kv
                } else {
                    ev
                }
            })
            .collect();
        self.last_overrides.set(overrides);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(gamma: f64) -> HybridConfig {
        HybridConfig {
            gamma,
            kr_window: None,
            rnn: RnnConfig { epochs: 10, hidden: 8, embedding: 6, ..RnnConfig::default() },
        }
    }

    /// Baseline 10 q/s with a huge spike every 50 steps after a ramp.
    fn spiky(len: usize) -> Vec<f64> {
        (0..len)
            .map(|t| match t % 50 {
                46..=47 => 80.0,
                48..=49 => 8_000.0,
                _ => 10.0,
            })
            .collect()
    }

    #[test]
    fn kr_override_fires_on_spike_input() {
        let series = spiky(400);
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut h = Hybrid::new(quick_cfg(1.5));
        h.fit(&[series.clone()], spec).unwrap();
        // Window ending right before a spike (phase 48 next).
        let idx_end = 398; // 398 % 50 == 48 → predicting t=398
        let recent = vec![series[idx_end - 10..idx_end].to_vec()];
        let pred = h.predict(&recent);
        assert!(pred[0] > 1_000.0, "hybrid must adopt KR's spike: {}", pred[0]);
        assert_eq!(h.last_overrides.get(), 1);
    }

    #[test]
    fn no_override_on_calm_input() {
        let series = spiky(400);
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut h = Hybrid::new(quick_cfg(1.5));
        h.fit(&[series.clone()], spec).unwrap();
        let recent = vec![series[200..210].to_vec()]; // mid-baseline
        let pred = h.predict(&recent);
        assert!(pred[0] < 500.0, "{}", pred[0]);
    }

    #[test]
    fn low_gamma_overrides_more_often() {
        let series = spiky(400);
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut strict = Hybrid::new(quick_cfg(3.0));
        let mut lax = Hybrid::new(quick_cfg(1.0));
        strict.fit(&[series.clone()], spec).unwrap();
        lax.fit(&[series.clone()], spec).unwrap();
        let mut strict_overrides = 0;
        let mut lax_overrides = 0;
        for end in 50..350 {
            let recent = vec![series[end - 10..end].to_vec()];
            strict.predict(&recent);
            strict_overrides += strict.last_overrides.get();
            lax.predict(&recent);
            lax_overrides += lax.last_overrides.get();
        }
        assert!(lax_overrides >= strict_overrides, "{lax_overrides} < {strict_overrides}");
    }

    #[test]
    fn matches_ensemble_when_kr_agrees() {
        // A flat series: KR and ensemble both predict the constant, so no
        // override and hybrid == ensemble.
        let series = vec![vec![200.0; 150]];
        let spec = WindowSpec { window: 8, horizon: 1 };
        let mut h = Hybrid::new(quick_cfg(1.5));
        h.fit(&series, spec).unwrap();
        let recent = vec![vec![200.0; 8]];
        let pred = h.predict(&recent);
        assert_eq!(h.last_overrides.get(), 0);
        assert!((pred[0] - 200.0).abs() < 30.0);
    }

    #[test]
    fn kr_member_loss_degrades_to_ensemble_level() {
        // KR's window exceeds the series: the member cannot train. HYBRID
        // must drop it and serve the plain ensemble instead of failing.
        let series = vec![vec![100.0; 150]];
        let spec = WindowSpec { window: 8, horizon: 1 };
        let cfg = HybridConfig { kr_window: Some(500), ..quick_cfg(1.5) };
        let mut h = Hybrid::new(cfg);
        h.fit(&series, spec).unwrap();
        assert_eq!(h.degradation(), DegradationLevel::Ensemble);
        assert!(h.member_failures().iter().any(|(m, _)| *m == "KR"));
        let pred = h.predict(&[vec![100.0; 8]]);
        assert!(pred[0].is_finite());
        assert_eq!(h.last_overrides.get(), 0, "no KR, no overrides");
    }

    #[test]
    fn full_chain_collapse_serves_last_value() {
        // ∞ in the series diverges LR, RNN, and KR alike; the chain must
        // bottom out at persistence and still answer.
        let mut s = vec![40.0; 150];
        s[75] = f64::INFINITY;
        let spec = WindowSpec { window: 8, horizon: 1 };
        let mut h = Hybrid::new(quick_cfg(1.5));
        h.fit(&[s], spec).unwrap();
        assert_eq!(h.degradation(), DegradationLevel::LastValue);
        let pred = h.predict(&[vec![33.0; 8]]);
        assert_eq!(pred, vec![33.0]);
    }

    #[test]
    fn healthy_fit_is_full_level() {
        let series = vec![vec![100.0; 150]];
        let mut h = Hybrid::new(quick_cfg(1.5));
        h.fit(&series, WindowSpec { window: 8, horizon: 1 }).unwrap();
        assert_eq!(h.degradation(), DegradationLevel::Full);
        assert!(h.member_failures().is_empty());
    }

    #[test]
    fn recorder_counts_kr_loss_as_failure_not_divergence() {
        let rec = qb_obs::Recorder::new();
        let cfg = HybridConfig { kr_window: Some(500), ..quick_cfg(1.5) };
        let mut h = Hybrid::new(cfg);
        h.instrument(&rec);
        h.fit(&[vec![100.0; 150]], WindowSpec { window: 8, horizon: 1 }).unwrap();
        let snap = rec.snapshot();
        // KR could not train (NotEnoughData): a member failure, but not a
        // numerical divergence.
        assert_eq!(snap.counters["forecast.member_failures"], 1);
        assert_eq!(snap.counters["forecast.divergences"], 0);
        assert_eq!(Forecaster::degradation(&h), DegradationLevel::Ensemble);
    }

    #[test]
    fn short_history_falls_back_to_ensemble() {
        let series = vec![vec![100.0; 200]];
        let spec = WindowSpec { window: 8, horizon: 1 };
        let cfg = HybridConfig { kr_window: Some(50), ..quick_cfg(1.5) };
        let mut h = Hybrid::new(cfg);
        h.fit(&series, spec).unwrap();
        // Only 8 steps of context: shorter than KR's 50.
        let pred = h.predict(&[vec![100.0; 8]]);
        assert!(pred[0].is_finite());
        assert_eq!(h.last_overrides.get(), 0);
    }
}
