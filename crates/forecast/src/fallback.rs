//! Last-value persistence — the terminal link of the degradation chain.
//!
//! When every learned model has diverged, the forecaster of last resort
//! predicts that each cluster's arrival rate stays at its most recent
//! *finite* observation. It cannot diverge, needs no training beyond shape
//! validation, and keeps the §7.6 controller loop supplied with bounded,
//! finite volume estimates until a retrain succeeds.

use crate::dataset::{ForecastError, WindowSpec};
use crate::Forecaster;

/// Predicts the last finite observed value of each cluster.
#[derive(Debug, Clone, Default)]
pub struct Persistence {
    clusters: usize,
    /// Per-cluster carry-forward from training, used when the prediction
    /// input itself contains no finite value.
    last_seen: Vec<f64>,
    fitted: bool,
}

impl Persistence {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Newest-last scan for the most recent finite, non-negative value.
fn last_finite(s: &[f64]) -> Option<f64> {
    s.iter().rev().find(|v| v.is_finite()).map(|v| v.max(0.0))
}

impl Forecaster for Persistence {
    fn name(&self) -> &'static str {
        "PERSISTENCE"
    }

    /// Deliberately more tolerant than `validate_series`: the chain's last
    /// link must accept anything with at least one cluster so degradation
    /// never dead-ends. Window/horizon geometry is irrelevant to a
    /// carry-forward.
    fn fit(&mut self, series: &[Vec<f64>], _spec: WindowSpec) -> Result<(), ForecastError> {
        if series.is_empty() {
            return Err(ForecastError::MalformedSeries("no cluster series".into()));
        }
        self.clusters = series.len();
        self.last_seen = series.iter().map(|s| last_finite(s).unwrap_or(0.0)).collect();
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        assert!(self.fitted, "PERSISTENCE::predict before fit");
        assert_eq!(
            recent.len(),
            self.clusters,
            "PERSISTENCE::predict: cluster count changed"
        );
        recent
            .iter()
            .enumerate()
            .map(|(c, s)| last_finite(s).unwrap_or(self.last_seen[c]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_last_value_forward() {
        let mut p = Persistence::new();
        p.fit(&[vec![1.0, 2.0, 7.0]], WindowSpec { window: 2, horizon: 1 }).unwrap();
        assert_eq!(p.predict(&[vec![3.0, 9.0]]), vec![9.0]);
    }

    #[test]
    fn skips_non_finite_tail() {
        let mut p = Persistence::new();
        p.fit(&[vec![5.0; 4]], WindowSpec { window: 2, horizon: 1 }).unwrap();
        let pred = p.predict(&[vec![4.0, f64::NAN, f64::INFINITY]]);
        assert_eq!(pred, vec![4.0]);
    }

    #[test]
    fn all_nan_input_falls_back_to_training_tail() {
        let mut p = Persistence::new();
        p.fit(&[vec![2.0, 6.0]], WindowSpec { window: 1, horizon: 1 }).unwrap();
        assert_eq!(p.predict(&[vec![f64::NAN, f64::NAN]]), vec![6.0]);
    }

    #[test]
    fn never_negative_or_non_finite() {
        let mut p = Persistence::new();
        p.fit(&[vec![f64::NAN, -3.0]], WindowSpec { window: 1, horizon: 1 }).unwrap();
        let pred = p.predict(&[vec![-8.0]]);
        assert!(pred[0] >= 0.0 && pred[0].is_finite());
    }

    #[test]
    fn tolerates_short_and_ragged_series() {
        let mut p = Persistence::new();
        // A real model would refuse this shape; the last link must not.
        p.fit(&[vec![1.0], vec![]], WindowSpec { window: 24, horizon: 12 }).unwrap();
        assert_eq!(p.predict(&[vec![3.0], vec![]]), vec![3.0, 0.0]);
    }
}
