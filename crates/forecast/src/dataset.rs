//! Supervised-dataset construction shared by every model.
//!
//! The joint multi-cluster encoding of §7.2: a training example at time `t`
//! has input `x_t = [ln(1+s_c[t-W+1..=t]) for every cluster c]` (dimension
//! `W·C`) and target `y_t = [ln(1+s_c[t+h]) for every cluster c]`
//! (dimension `C`), where `W` is the window, `h` the horizon, both counted
//! in steps of the prediction interval.

use qb_linalg::Matrix;

/// Window/horizon geometry, in steps of the prediction interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// How many trailing steps form the model input ("the last day's
    /// arrival rate" for LR/KR at a one-hour interval ⇒ 24).
    pub window: usize,
    /// How many steps ahead the model predicts.
    pub horizon: usize,
}

impl WindowSpec {
    /// Minimum series length that yields at least one training example.
    pub fn min_len(&self) -> usize {
        self.window + self.horizon
    }
}

/// Errors surfaced by model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// Fewer time steps than `window + horizon`.
    NotEnoughData { needed: usize, got: usize },
    /// Cluster series have inconsistent lengths or none were given.
    MalformedSeries(String),
    /// The underlying linear solve failed.
    Numeric(String),
    /// Training produced non-finite loss or weights (NaN/∞). The model
    /// aborted mid-fit rather than serve poisoned predictions.
    Diverged { model: &'static str, detail: String },
}

impl ForecastError {
    /// Whether this failure is internal to the model (divergence, solver
    /// breakdown) rather than a property of the data. Model failures are
    /// what composite forecasters degrade across — a data error (shape,
    /// length) would fail every member of the chain identically and must
    /// reach the caller instead.
    pub fn is_model_failure(&self) -> bool {
        matches!(self, ForecastError::Diverged { .. } | ForecastError::Numeric(_))
    }
}

impl std::fmt::Display for ForecastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForecastError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: need {needed} steps, got {got}")
            }
            ForecastError::MalformedSeries(m) => write!(f, "malformed series: {m}"),
            ForecastError::Numeric(m) => write!(f, "numeric failure: {m}"),
            ForecastError::Diverged { model, detail } => {
                write!(f, "{model} diverged during training: {detail}")
            }
        }
    }
}

impl std::error::Error for ForecastError {}

/// Guard used by every `fit`: fails with [`ForecastError::Diverged`] when
/// any value in `values` is non-finite. `what` names the tensor being
/// checked ("weights", "validation loss", …) for the error message.
pub fn ensure_finite(
    model: &'static str,
    what: &str,
    values: impl IntoIterator<Item = f64>,
) -> Result<(), ForecastError> {
    for (i, v) in values.into_iter().enumerate() {
        if !v.is_finite() {
            return Err(ForecastError::Diverged {
                model,
                detail: format!("{what}[{i}] = {v}"),
            });
        }
    }
    Ok(())
}

/// Validates a cluster-major series and returns `(clusters, len)`.
pub fn validate_series(series: &[Vec<f64>], spec: WindowSpec) -> Result<(usize, usize), ForecastError> {
    if series.is_empty() {
        return Err(ForecastError::MalformedSeries("no cluster series".into()));
    }
    let len = series[0].len();
    for (i, s) in series.iter().enumerate() {
        if s.len() != len {
            return Err(ForecastError::MalformedSeries(format!(
                "cluster 0 has {len} steps but cluster {i} has {}",
                s.len()
            )));
        }
    }
    if len < spec.min_len() {
        return Err(ForecastError::NotEnoughData { needed: spec.min_len(), got: len });
    }
    Ok((series.len(), len))
}

/// Builds the supervised design matrices in log space.
///
/// Returns `(X, Y)` where `X` is `N × (W·C)` and `Y` is `N × C`, with
/// `N = len − window − horizon + 1` examples.
pub fn sliding_windows(
    series: &[Vec<f64>],
    spec: WindowSpec,
) -> Result<(Matrix, Matrix), ForecastError> {
    let (clusters, len) = validate_series(series, spec)?;
    let n = len - spec.window - spec.horizon + 1;
    let mut x = Matrix::zeros(n, spec.window * clusters);
    let mut y = Matrix::zeros(n, clusters);
    for i in 0..n {
        let row = x.row_mut(i);
        for (c, s) in series.iter().enumerate() {
            for w in 0..spec.window {
                row[c * spec.window + w] = s[i + w].max(0.0).ln_1p();
            }
        }
        for (c, s) in series.iter().enumerate() {
            y[(i, c)] = s[i + spec.window + spec.horizon - 1].max(0.0).ln_1p();
        }
    }
    Ok((x, y))
}

/// Encodes a prediction input (the last `window` steps of each cluster) as
/// a single log-space feature row matching [`sliding_windows`]' layout.
///
/// # Panics
/// Panics if any cluster has fewer than `window` steps.
pub fn encode_recent(recent: &[Vec<f64>], window: usize) -> Vec<f64> {
    let clusters = recent.len();
    let mut row = vec![0.0; window * clusters];
    for (c, s) in recent.iter().enumerate() {
        assert!(
            s.len() >= window,
            "encode_recent: cluster {c} has {} steps, window is {window}",
            s.len()
        );
        let tail = &s[s.len() - window..];
        for (w, &v) in tail.iter().enumerate() {
            row[c * window + w] = v.max(0.0).ln_1p();
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_count_and_alignment() {
        let series = vec![vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]];
        let spec = WindowSpec { window: 2, horizon: 1 };
        let (x, y) = sliding_windows(&series, spec).unwrap();
        assert_eq!(x.shape(), (4, 2));
        assert_eq!(y.shape(), (4, 1));
        // First example: inputs [0,1] → target 2.
        assert!((x[(0, 0)] - 0.0f64.ln_1p()).abs() < 1e-12);
        assert!((x[(0, 1)] - 1.0f64.ln_1p()).abs() < 1e-12);
        assert!((y[(0, 0)] - 2.0f64.ln_1p()).abs() < 1e-12);
        // Last example: inputs [3,4] → target 5.
        assert!((y[(3, 0)] - 5.0f64.ln_1p()).abs() < 1e-12);
    }

    #[test]
    fn multi_cluster_layout() {
        let series = vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]];
        let spec = WindowSpec { window: 2, horizon: 1 };
        let (x, y) = sliding_windows(&series, spec).unwrap();
        assert_eq!(x.shape(), (1, 4));
        assert_eq!(y.shape(), (1, 2));
        // Layout: [c0w0, c0w1, c1w0, c1w1].
        assert!((x[(0, 2)] - 10.0f64.ln_1p()).abs() < 1e-12);
    }

    #[test]
    fn horizon_shifts_target() {
        let series = vec![vec![0.0, 1.0, 2.0, 3.0, 4.0]];
        let spec = WindowSpec { window: 2, horizon: 2 };
        let (x, y) = sliding_windows(&series, spec).unwrap();
        assert_eq!(x.rows(), 2);
        // Inputs [0,1] → target at index 3.
        assert!((y[(0, 0)] - 3.0f64.ln_1p()).abs() < 1e-12);
    }

    #[test]
    fn not_enough_data_error() {
        let series = vec![vec![1.0, 2.0]];
        let err = sliding_windows(&series, WindowSpec { window: 2, horizon: 1 }).unwrap_err();
        assert_eq!(err, ForecastError::NotEnoughData { needed: 3, got: 2 });
    }

    #[test]
    fn ragged_series_error() {
        let series = vec![vec![1.0, 2.0, 3.0], vec![1.0]];
        assert!(matches!(
            sliding_windows(&series, WindowSpec { window: 1, horizon: 1 }),
            Err(ForecastError::MalformedSeries(_))
        ));
    }

    #[test]
    fn empty_series_error() {
        assert!(matches!(
            sliding_windows(&[], WindowSpec { window: 1, horizon: 1 }),
            Err(ForecastError::MalformedSeries(_))
        ));
    }

    #[test]
    fn encode_recent_takes_tail() {
        let recent = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let row = encode_recent(&recent, 2);
        assert_eq!(row.len(), 2);
        assert!((row[0] - 3.0f64.ln_1p()).abs() < 1e-12);
        assert!((row[1] - 4.0f64.ln_1p()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "encode_recent")]
    fn encode_recent_short_panics() {
        encode_recent(&[vec![1.0]], 5);
    }
}
