//! Autoregressive moving-average model (ARMA, §7.2).
//!
//! "ARMA is a generalization of LR models that consists of an
//! autoregressive part and a moving average part acting on residuals."
//!
//! Fitted per cluster with the Hannan–Rissanen two-stage procedure:
//!
//! 1. fit a long autoregression to estimate the innovation sequence;
//! 2. regress the series on `p` of its own lags *and* `q` lagged estimated
//!    innovations (ridge-regularized least squares).
//!
//! Prediction iterates the recursion `horizon` steps ahead, feeding back
//! predictions and zero future innovations (their conditional mean). The
//! paper found ARMA unstable across horizons because its optimal `(p, q)`
//! depends on the series' statistical properties — we keep fixed defaults
//! for the same hyperparameter-sensitivity reason (§7.2).

use qb_linalg::{ridge_regression, Matrix};

use crate::dataset::{ensure_finite, validate_series, ForecastError, WindowSpec};
use crate::Forecaster;

/// ARMA(p, q) fitted independently per cluster.
#[derive(Debug, Clone)]
pub struct Arma {
    /// Autoregressive order.
    pub p: usize,
    /// Moving-average order.
    pub q: usize,
    /// Long-AR order for stage 1 of Hannan–Rissanen.
    pub long_ar: usize,
    spec: Option<WindowSpec>,
    /// Per-cluster: (AR coefficients, MA coefficients, intercept).
    fits: Vec<ClusterFit>,
}

#[derive(Debug, Clone)]
struct ClusterFit {
    ar: Vec<f64>,
    ma: Vec<f64>,
    intercept: f64,
    /// Residuals of the training tail, newest last (seed for prediction).
    tail_residuals: Vec<f64>,
    /// Long-AR weights used to recompute residuals at prediction time.
    long_ar_w: Vec<f64>,
    long_ar_intercept: f64,
}

impl Default for Arma {
    fn default() -> Self {
        Self { p: 8, q: 4, long_ar: 16, spec: None, fits: Vec::new() }
    }
}

impl Arma {
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0, "ARMA requires p > 0");
        Self { p, q, long_ar: (2 * (p + q)).max(p + 1), ..Self::default() }
    }

    /// Fits one cluster's series (already in log space).
    fn fit_cluster(&self, s: &[f64]) -> Result<ClusterFit, ForecastError> {
        let n = s.len();
        let m = self.long_ar;
        // Stage 1: long AR to estimate innovations.
        let rows = n - m;
        let mut x = Matrix::zeros(rows, m + 1);
        let mut y = Matrix::zeros(rows, 1);
        for r in 0..rows {
            let row = x.row_mut(r);
            for k in 0..m {
                row[k] = s[r + m - 1 - k];
            }
            row[m] = 1.0;
            y[(r, 0)] = s[r + m];
        }
        let w = ridge_regression(&x, &y, 1e-3)
            .map_err(|e| ForecastError::Numeric(e.to_string()))?;
        let long_ar_w: Vec<f64> = (0..m).map(|k| w[(k, 0)]).collect();
        let long_ar_intercept = w[(m, 0)];

        // Innovations for t in [m, n).
        let mut resid = vec![0.0; n];
        for t in m..n {
            let mut pred = long_ar_intercept;
            for k in 0..m {
                pred += long_ar_w[k] * s[t - 1 - k];
            }
            resid[t] = s[t] - pred;
        }

        // Stage 2: regress on p lags of s and q lags of resid.
        let start = m + self.q; // need q valid residual lags
        let rows2 = n.saturating_sub(start);
        if rows2 < self.p + self.q + 2 {
            return Err(ForecastError::NotEnoughData {
                needed: start + self.p + self.q + 2,
                got: n,
            });
        }
        let dim = self.p + self.q + 1;
        let mut x2 = Matrix::zeros(rows2, dim);
        let mut y2 = Matrix::zeros(rows2, 1);
        for r in 0..rows2 {
            let t = start + r;
            let row = x2.row_mut(r);
            for k in 0..self.p {
                row[k] = if t > k { s[t - 1 - k] } else { 0.0 };
            }
            for k in 0..self.q {
                row[self.p + k] = resid[t - 1 - k];
            }
            row[dim - 1] = 1.0;
            y2[(r, 0)] = s[t];
        }
        let w2 = ridge_regression(&x2, &y2, 1e-3)
            .map_err(|e| ForecastError::Numeric(e.to_string()))?;
        let ar: Vec<f64> = (0..self.p).map(|k| w2[(k, 0)]).collect();
        let ma: Vec<f64> = (0..self.q).map(|k| w2[(self.p + k, 0)]).collect();
        let intercept = w2[(dim - 1, 0)];
        let tail_residuals = resid[n.saturating_sub(self.q.max(1))..].to_vec();
        ensure_finite(
            "ARMA",
            "coefficients",
            ar.iter()
                .chain(&ma)
                .chain(&long_ar_w)
                .chain(&tail_residuals)
                .copied()
                .chain([intercept, long_ar_intercept]),
        )?;
        Ok(ClusterFit { ar, ma, intercept, tail_residuals, long_ar_w, long_ar_intercept })
    }

    /// Iterated multi-step prediction for one cluster from its recent
    /// (log-space) history.
    fn predict_cluster(&self, fit: &ClusterFit, recent: &[f64], horizon: usize) -> f64 {
        // Recompute residuals over the recent window with the long-AR
        // model so the MA part has fresh innovations.
        let m = self.long_ar;
        let n = recent.len();
        let mut resid = vec![0.0; n];
        for t in m.min(n)..n {
            let mut pred = fit.long_ar_intercept;
            for k in 0..m {
                pred += fit.long_ar_w[k] * recent[t - 1 - k];
            }
            resid[t] = recent[t] - pred;
        }
        if n < m {
            // Too little context to estimate innovations: fall back to the
            // training-tail residuals.
            let tail = &fit.tail_residuals;
            let len = tail.len().min(n);
            resid[n - len..].copy_from_slice(&tail[tail.len() - len..]);
        }

        let mut series: Vec<f64> = recent.to_vec();
        let mut residuals = resid;
        // Iterated forecasts of an unconstrained ARMA fit can diverge when
        // the AR polynomial has roots near the unit circle (the horizon
        // instability §7.2 observes). Clamp each step to the log-space
        // range of plausible arrival rates so the recursion stays finite —
        // the model remains "unstable" (bad), just not infinite.
        const LOG_RATE_CAP: f64 = 25.0;
        for _ in 0..horizon {
            let t = series.len();
            let mut yhat = fit.intercept;
            for (k, &a) in fit.ar.iter().enumerate() {
                if t > k {
                    yhat += a * series[t - 1 - k];
                }
            }
            for (k, &b) in fit.ma.iter().enumerate() {
                if t > k {
                    yhat += b * residuals[t - 1 - k];
                }
            }
            series.push(yhat.clamp(0.0, LOG_RATE_CAP));
            residuals.push(0.0); // E[future innovation] = 0
        }
        *series.last().expect("horizon >= 1 pushes at least one")
    }
}

impl Forecaster for Arma {
    fn name(&self) -> &'static str {
        "ARMA"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        validate_series(series, spec)?;
        let min_needed = self.long_ar + self.q + self.p + self.q + 2;
        if series[0].len() < min_needed {
            return Err(ForecastError::NotEnoughData { needed: min_needed, got: series[0].len() });
        }
        let mut fits = Vec::with_capacity(series.len());
        for s in series {
            let logs: Vec<f64> = s.iter().map(|&v| v.max(0.0).ln_1p()).collect();
            fits.push(self.fit_cluster(&logs)?);
        }
        self.fits = fits;
        self.spec = Some(spec);
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let spec = self.spec.expect("ARMA::predict before fit");
        assert_eq!(recent.len(), self.fits.len(), "ARMA::predict: cluster count changed");
        recent
            .iter()
            .zip(&self.fits)
            .map(|(s, fit)| {
                let logs: Vec<f64> = s.iter().map(|&v| v.max(0.0).ln_1p()).collect();
                self.predict_cluster(fit, &logs, spec.horizon).exp_m1().max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_ar1_process() {
        // y_t = 0.8 y_{t-1} + c: deterministic AR(1) in linear space is
        // harder through the log transform, so test pattern-tracking MSE.
        let mut v: f64 = 200.0;
        let series: Vec<f64> = (0..300)
            .map(|t| {
                let shock = if t % 17 == 0 { 30.0 } else { 0.0 };
                v = 0.8 * v + 40.0 + shock;
                v
            })
            .collect();
        let spec = WindowSpec { window: 24, horizon: 1 };
        let mut arma = Arma::default();
        arma.fit(&[series.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&arma, &[series], spec, 260);
        assert!(mse < 0.1, "{mse}");
    }

    #[test]
    fn tracks_periodic_series() {
        let series: Vec<f64> = (0..400)
            .map(|t| 100.0 + 60.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let spec = WindowSpec { window: 48, horizon: 1 };
        let mut arma = Arma { p: 24, q: 4, long_ar: 30, spec: None, fits: Vec::new() };
        arma.fit(&[series.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&arma, &[series], spec, 350);
        assert!(mse < 0.1, "{mse}");
    }

    #[test]
    fn multi_step_horizon_prediction() {
        let series = vec![vec![500.0; 200]];
        let spec = WindowSpec { window: 24, horizon: 12 };
        let mut arma = Arma::default();
        arma.fit(&series, spec).unwrap();
        let pred = arma.predict(&[vec![500.0; 24]]);
        assert!((pred[0] - 500.0).abs() < 100.0, "{}", pred[0]);
    }

    #[test]
    fn per_cluster_independence() {
        let a = vec![100.0; 200];
        let b: Vec<f64> = (0..200).map(|t| ((t % 5) as f64 + 1.0) * 50.0).collect();
        let spec = WindowSpec { window: 20, horizon: 1 };
        let mut arma = Arma::default();
        arma.fit(&[a, b], spec).unwrap();
        let pred = arma.predict(&[vec![100.0; 20], vec![50.0; 20]]);
        assert_eq!(pred.len(), 2);
    }

    #[test]
    fn not_enough_data_error() {
        let mut arma = Arma::default();
        assert!(matches!(
            arma.fit(&[vec![1.0; 10]], WindowSpec { window: 4, horizon: 1 }),
            Err(ForecastError::NotEnoughData { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "ARMA requires p > 0")]
    fn zero_p_panics() {
        Arma::new(0, 1);
    }
}
