//! The model-property matrix of Table 3.

/// The three properties the paper classifies forecasting models by (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelProperties {
    pub name: &'static str,
    /// Assumes a linear input–output relationship.
    pub linear: bool,
    /// Retains memory of past observations beyond the input window.
    pub memory: bool,
    /// Achieves non-linearity through kernel feature maps.
    pub kernel: bool,
}

/// Table 3 verbatim: LR, ARMA, KR, RNN, FNN, PSRNN.
pub fn model_properties() -> [ModelProperties; 6] {
    [
        ModelProperties { name: "LR", linear: true, memory: false, kernel: false },
        ModelProperties { name: "ARMA", linear: true, memory: true, kernel: false },
        ModelProperties { name: "KR", linear: false, memory: false, kernel: true },
        ModelProperties { name: "RNN", linear: false, memory: true, kernel: false },
        ModelProperties { name: "FNN", linear: false, memory: false, kernel: false },
        ModelProperties { name: "PSRNN", linear: false, memory: true, kernel: true },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_3() {
        let props = model_properties();
        let by_name = |n: &str| *props.iter().find(|p| p.name == n).unwrap();
        // Linear row: LR ✓, ARMA ✓, rest ✗.
        assert!(by_name("LR").linear && by_name("ARMA").linear);
        assert!(!by_name("KR").linear && !by_name("RNN").linear);
        assert!(!by_name("FNN").linear && !by_name("PSRNN").linear);
        // Memory row: ARMA, RNN, PSRNN.
        assert!(by_name("ARMA").memory && by_name("RNN").memory && by_name("PSRNN").memory);
        assert!(!by_name("LR").memory && !by_name("KR").memory && !by_name("FNN").memory);
        // Kernel row: KR, PSRNN.
        assert!(by_name("KR").kernel && by_name("PSRNN").kernel);
        assert!(!by_name("LR").kernel && !by_name("ARMA").kernel);
        assert!(!by_name("RNN").kernel && !by_name("FNN").kernel);
    }

    #[test]
    fn six_models_listed() {
        assert_eq!(model_properties().len(), 6);
    }
}
