//! Kernel regression (KR, §6.1): the Nadaraya–Watson estimator.
//!
//! "The prediction for a given input is a weighted average of training
//! outputs where the weights decrease with distance between the given input
//! and corresponding training inputs." We use a Gaussian (RBF) kernel whose
//! bandwidth defaults to the median pairwise distance heuristic.
//!
//! KR needs no iterative training — fitting just stores the design matrix —
//! which matches Table 4's "KR requires no training time". It is the only
//! model that predicts the annual Admissions spikes (§7.3, Appendix B):
//! when this year's pre-deadline window lands near last year's in input
//! space, the estimator re-emits last year's spike.
//!
//! Implementation note: the estimate is truncated to the `k` nearest
//! training inputs and, unless a fixed bandwidth is supplied, the RBF
//! bandwidth adapts locally (a fraction of the median distance among those
//! neighbors). A single global bandwidth drowns a rare pre-spike ramp under
//! thousands of near-duplicate baseline windows; local truncation preserves
//! the spike-separation property of Appendix B on heavily repetitive
//! workloads.

use qb_linalg::Matrix;

use crate::dataset::{encode_recent, ensure_finite, sliding_windows, ForecastError, WindowSpec};
use crate::Forecaster;

/// Nadaraya–Watson kernel regression with an RBF kernel, truncated to the
/// `k` nearest training inputs with a locally adaptive bandwidth.
#[derive(Debug, Clone)]
pub struct KernelRegression {
    /// Fixed RBF bandwidth σ; `None` (default) adapts per query to a
    /// fraction of the median neighbor distance.
    pub bandwidth: Option<f64>,
    /// Neighborhood size for the truncated estimate.
    pub k_neighbors: usize,
    spec: Option<WindowSpec>,
    x: Option<Matrix>,
    y: Option<Matrix>,
    clusters: usize,
}

impl Default for KernelRegression {
    fn default() -> Self {
        Self { bandwidth: None, k_neighbors: 32, spec: None, x: None, y: None, clusters: 0 }
    }
}

impl KernelRegression {
    pub fn with_bandwidth(sigma: f64) -> Self {
        assert!(sigma > 0.0, "bandwidth must be positive");
        Self { bandwidth: Some(sigma), ..Self::default() }
    }

    /// Number of stored training rows (KR's storage grows with history —
    /// Table 4's "training-data size increases linearly").
    pub fn num_stored(&self) -> usize {
        self.x.as_ref().map_or(0, Matrix::rows)
    }

    /// The fitted bandwidth² for a given neighbor-distance profile.
    fn sigma2_for(&self, neighbor_dists: &[f64]) -> f64 {
        if let Some(s) = self.bandwidth {
            return s * s;
        }
        // Locally adaptive: a third of the median neighbor distance. The
        // softmax max-subtraction keeps a near-zero σ numerically safe
        // (only exact matches retain weight — the right limit for heavily
        // duplicated windows).
        let mut d = neighbor_dists.to_vec();
        d.sort_by(f64::total_cmp);
        let med = d[d.len() / 2];
        let sigma = (med / 3.0).max(1e-9);
        sigma * sigma
    }
}

impl Forecaster for KernelRegression {
    fn name(&self) -> &'static str {
        "KR"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        let (x, y) = sliding_windows(series, spec)?;
        // KR "trains" by memorizing exemplars; a non-finite exemplar would
        // poison every weighted average it participates in.
        ensure_finite("KR", "exemplars", x.as_slice().iter().chain(y.as_slice()).copied())?;
        self.spec = Some(spec);
        self.clusters = series.len();
        self.x = Some(x);
        self.y = Some(y);
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let spec = self.spec.expect("KR::predict before fit");
        let x = self.x.as_ref().expect("KR::predict before fit");
        let y = self.y.as_ref().expect("KR::predict before fit");
        assert_eq!(recent.len(), self.clusters, "KR::predict: cluster count changed");
        let q = encode_recent(recent, spec.window);

        // Distances to all training inputs, truncated to the k nearest.
        let mut dists: Vec<(f64, usize)> = (0..x.rows())
            .map(|r| (qb_linalg::l2_distance(x.row(r), &q), r))
            .collect();
        let k = self.k_neighbors.clamp(1, dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbors = &dists[..k];
        let ndists: Vec<f64> = neighbors.iter().map(|(d, _)| *d).collect();
        let sigma2 = self.sigma2_for(&ndists);

        // Subtract the max exponent for numerical stability (softmax trick):
        // weights are invariant to a common factor.
        let neg_d2: Vec<f64> =
            neighbors.iter().map(|(d, _)| -(d * d) / (2.0 * sigma2)).collect();
        let m = neg_d2.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = neg_d2.iter().map(|&e| (e - m).exp()).collect();
        let wsum: f64 = weights.iter().sum();

        (0..self.clusters)
            .map(|c| {
                let num: f64 = weights
                    .iter()
                    .zip(neighbors)
                    .map(|(&w, &(_, r))| w * y[(r, c)])
                    .sum();
                (num / wsum).exp_m1().max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A series with a rare spike: near-zero baseline, a burst every 100
    /// steps. KR must reproduce the burst when shown the pre-burst ramp.
    fn spiky_series(len: usize) -> Vec<f64> {
        (0..len)
            .map(|t| {
                let phase = t % 100;
                match phase {
                    95..=97 => 50.0,          // ramp before the spike
                    98..=99 => 5_000.0,       // the spike
                    _ => 10.0,                // baseline
                }
            })
            .collect()
    }

    #[test]
    fn predicts_recurring_spike_from_few_occurrences() {
        let series = spiky_series(500); // five spike occurrences
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut kr = KernelRegression::default();
        kr.fit(&[series.clone()], spec).unwrap();
        // The window ending at phase 97 (ramp visible) precedes a spike.
        let recent: Vec<f64> = series[488..498].to_vec();
        assert_eq!(498 % 100, 98, "sanity: next step is a spike");
        let pred = kr.predict(&[recent]);
        assert!(pred[0] > 1_000.0, "KR should predict the spike, got {}", pred[0]);
        // And a mid-baseline window must NOT predict a spike.
        let calm: Vec<f64> = series[430..440].to_vec();
        let pred = kr.predict(&[calm]);
        assert!(pred[0] < 100.0, "no spike expected, got {}", pred[0]);
    }

    #[test]
    fn interpolates_smooth_function() {
        let series: Vec<f64> =
            (0..300).map(|t| 100.0 + 50.0 * ((t % 20) as f64 / 20.0 * std::f64::consts::TAU).sin()).collect();
        let spec = WindowSpec { window: 20, horizon: 1 };
        let mut kr = KernelRegression::default();
        kr.fit(&[series.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&kr, &[series], spec, 280);
        assert!(mse < 0.05, "{mse}");
    }

    #[test]
    fn extrapolation_falls_back_to_average() {
        // KR "does not extrapolate well": an unseen input far from all
        // training points yields ~the mean of training outputs, not the
        // continuation of a trend.
        let series: Vec<f64> = (0..100).map(|t| t as f64).collect(); // linear growth
        let spec = WindowSpec { window: 5, horizon: 1 };
        let mut kr = KernelRegression::default();
        kr.fit(&[series], spec).unwrap();
        let pred = kr.predict(&[vec![1e6; 5]]);
        assert!(pred[0] < 200.0, "KR must not extrapolate the trend: {}", pred[0]);
    }

    #[test]
    fn no_training_iteration_needed() {
        // Fit is just storage: stored rows == number of windows.
        let series = vec![vec![1.0; 50]];
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut kr = KernelRegression::default();
        kr.fit(&series, spec).unwrap();
        assert_eq!(kr.num_stored(), 40);
    }

    #[test]
    fn fixed_bandwidth_respected() {
        let kr = KernelRegression::with_bandwidth(2.0);
        // A fixed bandwidth ignores the neighbor-distance profile.
        assert!((kr.sigma2_for(&[100.0, 200.0]) - 4.0).abs() < 1e-12);
        let adaptive = KernelRegression::default();
        assert!(adaptive.sigma2_for(&[3.0, 3.0, 3.0]) < 4.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn invalid_bandwidth_panics() {
        KernelRegression::with_bandwidth(0.0);
    }
}
