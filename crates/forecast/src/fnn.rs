//! Feed-forward neural network (FNN, §7.2).
//!
//! "A non-linear version of the LR models in which the linear function ...
//! is replaced by a feed-forward neural network." Two tanh hidden layers
//! over the same flattened window features LR uses; no recurrence, so —
//! unlike the RNN — it cannot carry state between observations (Table 3:
//! non-linear, no memory, no kernel).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{encode_recent, ensure_finite, sliding_windows, ForecastError, WindowSpec};
use crate::nn::{Dense, Param};
use crate::Forecaster;

/// FNN hyperparameters.
#[derive(Debug, Clone)]
pub struct FnnConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    pub batch_size: usize,
    pub patience: usize,
    pub validation_fraction: f64,
    pub grad_clip: f64,
    pub seed: u64,
}

impl Default for FnnConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 150,
            learning_rate: 3e-3,
            batch_size: 32,
            patience: 10,
            validation_fraction: 0.15,
            grad_clip: 5.0,
            seed: 0xF22,
        }
    }
}

/// Two-hidden-layer MLP forecaster.
pub struct Fnn {
    cfg: FnnConfig,
    l1: Option<Dense>,
    l2: Option<Dense>,
    out: Option<Dense>,
    spec: Option<WindowSpec>,
    clusters: usize,
}

impl Default for Fnn {
    fn default() -> Self {
        Self::new(FnnConfig::default())
    }
}

impl Fnn {
    pub fn new(cfg: FnnConfig) -> Self {
        Self { cfg, l1: None, l2: None, out: None, spec: None, clusters: 0 }
    }

    fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let l1 = self.l1.as_ref().expect("fit first");
        let l2 = self.l2.as_ref().expect("fit first");
        let out = self.out.as_ref().expect("fit first");
        let z1 = l1.forward(x);
        let a1: Vec<f64> = z1.iter().map(|v| v.tanh()).collect();
        let z2 = l2.forward(&a1);
        let a2: Vec<f64> = z2.iter().map(|v| v.tanh()).collect();
        let y = out.forward(&a2);
        (z1, a1, z2, a2, y)
    }
}

impl Forecaster for Fnn {
    fn name(&self) -> &'static str {
        "FNN"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        let (x, y) = sliding_windows(series, spec)?;
        let clusters = series.len();
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        self.l1 = Some(Dense::new(x.cols(), self.cfg.hidden, &mut rng));
        self.l2 = Some(Dense::new(self.cfg.hidden, self.cfg.hidden, &mut rng));
        self.out = Some(Dense::new(self.cfg.hidden, clusters, &mut rng));
        self.spec = Some(spec);
        self.clusters = clusters;

        let n = x.rows();
        // With a single example, validate on it rather than holding out the
        // only training row (which would both starve training and leak the
        // hold-out, since the loop below would still touch index 0).
        let n_val = if n >= 2 {
            ((n as f64 * self.cfg.validation_fraction) as usize).clamp(1, n - 1)
        } else {
            0
        };
        let n_train = n - n_val;

        let val_loss = |me: &Fnn| {
            // Degenerate split: score the training rows themselves.
            let range = if n_val == 0 { 0..n } else { n_train..n };
            let count = range.len().max(1);
            let mut loss = 0.0;
            for r in range {
                let (_, _, _, _, pred) = me.forward_cached(x.row(r));
                loss += pred
                    .iter()
                    .zip(y.row(r))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
            }
            loss / count as f64
        };

        let mut best = f64::INFINITY;
        let mut best_weights: Option<(Dense, Dense, Dense)> = None;
        let mut stale = 0;
        let mut adam_t = 0;
        // Train on every non-held-out row (all rows in the degenerate case).
        let train_rows = if n_val == 0 { n } else { n_train };
        let mut order: Vec<usize> = (0..train_rows).collect();

        for _epoch in 0..self.cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(self.cfg.batch_size) {
                let l1 = self.l1.as_mut().expect("set above");
                let l2 = self.l2.as_mut().expect("set above");
                let out = self.out.as_mut().expect("set above");
                l1.zero_grad();
                l2.zero_grad();
                out.zero_grad();
                for &idx in batch {
                    let xin = x.row(idx);
                    // Inline forward with caches (avoids double borrow).
                    let z1 = l1.forward(xin);
                    let a1: Vec<f64> = z1.iter().map(|v| v.tanh()).collect();
                    let z2 = l2.forward(&a1);
                    let a2: Vec<f64> = z2.iter().map(|v| v.tanh()).collect();
                    let pred = out.forward(&a2);
                    let dy: Vec<f64> = pred
                        .iter()
                        .zip(y.row(idx))
                        .map(|(a, b)| 2.0 * (a - b) / batch.len() as f64)
                        .collect();
                    let da2 = out.backward(&a2, &dy);
                    let dz2: Vec<f64> =
                        da2.iter().zip(&a2).map(|(d, a)| d * (1.0 - a * a)).collect();
                    let da1 = l2.backward(&a1, &dz2);
                    let dz1: Vec<f64> =
                        da1.iter().zip(&a1).map(|(d, a)| d * (1.0 - a * a)).collect();
                    l1.backward(xin, &dz1);
                }
                Param::clip_global_norm(
                    &mut [
                        &mut l1.w, &mut l1.b, &mut l2.w, &mut l2.b, &mut out.w, &mut out.b,
                    ],
                    self.cfg.grad_clip,
                );
                adam_t += 1;
                l1.adam_step(self.cfg.learning_rate, adam_t);
                l2.adam_step(self.cfg.learning_rate, adam_t);
                out.adam_step(self.cfg.learning_rate, adam_t);
            }
            let v = val_loss(self);
            if !v.is_finite() {
                return Err(ForecastError::Diverged {
                    model: "FNN",
                    detail: format!("validation loss {v}"),
                });
            }
            if v + 1e-9 < best {
                best = v;
                best_weights = Some((
                    self.l1.clone().expect("set"),
                    self.l2.clone().expect("set"),
                    self.out.clone().expect("set"),
                ));
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.cfg.patience {
                    break;
                }
            }
        }
        if let Some((l1, l2, out)) = best_weights {
            self.l1 = Some(l1);
            self.l2 = Some(l2);
            self.out = Some(out);
        }
        ensure_finite(
            "FNN",
            "output weights",
            self.out.as_ref().expect("set above").w.value.as_slice().iter().copied(),
        )?;
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let spec = self.spec.expect("FNN::predict before fit");
        assert_eq!(recent.len(), self.clusters, "FNN::predict: cluster count changed");
        let xin = encode_recent(recent, spec.window);
        let (_, _, _, _, y) = self.forward_cached(&xin);
        y.into_iter().map(|v| v.exp_m1().max(0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_periodic_series() {
        let series: Vec<f64> = (0..300)
            .map(|t| 100.0 + 60.0 * ((t % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect();
        let spec = WindowSpec { window: 12, horizon: 1 };
        let mut fnn = Fnn::default();
        fnn.fit(&[series.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&fnn, &[series], spec, 260);
        assert!(mse < 0.3, "FNN should fit the cycle: {mse}");
    }

    #[test]
    fn deterministic_given_seed() {
        let series = vec![(0..120).map(|t| ((t % 7) as f64 + 1.0) * 30.0).collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 7, horizon: 1 };
        let mut a = Fnn::default();
        let mut b = Fnn::default();
        a.fit(&series, spec).unwrap();
        b.fit(&series, spec).unwrap();
        let recent = vec![series[0][100..107].to_vec()];
        assert_eq!(a.predict(&recent), b.predict(&recent));
    }

    #[test]
    fn output_nonnegative() {
        let series = vec![vec![0.0; 80]];
        let mut fnn = Fnn::new(FnnConfig { epochs: 5, ..FnnConfig::default() });
        fnn.fit(&series, WindowSpec { window: 8, horizon: 1 }).unwrap();
        assert!(fnn.predict(&[vec![0.0; 8]])[0] >= 0.0);
    }

    #[test]
    fn not_enough_data() {
        let mut fnn = Fnn::default();
        assert!(matches!(
            fnn.fit(&[vec![1.0; 5]], WindowSpec { window: 10, horizon: 1 }),
            Err(ForecastError::NotEnoughData { .. })
        ));
    }
}
