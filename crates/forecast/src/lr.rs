//! Linear auto-regressive model (LR, §6.1).
//!
//! "They are simple linear models that have closed-form solutions" — we
//! solve the ridge-regularized normal equations via `qb-linalg`. The model
//! regresses each cluster's future rate on the joint window of all
//! clusters' recent rates plus a bias term.

use qb_linalg::{ridge_regression, Matrix};

use crate::dataset::{encode_recent, ensure_finite, sliding_windows, ForecastError, WindowSpec};
use crate::Forecaster;

/// Closed-form ridge auto-regression.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// L2 regularization strength.
    pub lambda: f64,
    spec: Option<WindowSpec>,
    /// `(window·clusters + 1) × clusters` weights (last row = bias).
    weights: Option<Matrix>,
    clusters: usize,
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self { lambda: 1e-3, spec: None, weights: None, clusters: 0 }
    }
}

impl LinearRegression {
    pub fn new(lambda: f64) -> Self {
        Self { lambda, ..Self::default() }
    }

    /// Serialized weight count (Table 4 storage accounting: LR stores its
    /// learned weights, ~100 B in the paper's setup).
    pub fn num_parameters(&self) -> usize {
        self.weights.as_ref().map_or(0, |w| w.rows() * w.cols())
    }
}

/// Appends a constant-1 bias column.
fn with_bias(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols() + 1);
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        row[..x.cols()].copy_from_slice(x.row(r));
        row[x.cols()] = 1.0;
    }
    out
}

impl Forecaster for LinearRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        let (x, y) = sliding_windows(series, spec)?;
        let xb = with_bias(&x);
        let w = ridge_regression(&xb, &y, self.lambda)
            .map_err(|e| ForecastError::Numeric(e.to_string()))?;
        ensure_finite("LR", "weights", w.as_slice().iter().copied())?;
        self.spec = Some(spec);
        self.clusters = series.len();
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let spec = self.spec.expect("LR::predict before fit");
        let w = self.weights.as_ref().expect("LR::predict before fit");
        assert_eq!(recent.len(), self.clusters, "LR::predict: cluster count changed");
        let mut x = encode_recent(recent, spec.window);
        x.push(1.0);
        (0..self.clusters)
            .map(|c| {
                let yhat: f64 = x.iter().enumerate().map(|(i, &v)| v * w[(i, c)]).sum();
                yhat.exp_m1().max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_identity_on_lagged_series() {
        // s[t+1] = s[t]: a random walk that repeats its last value.
        let mut v = 100.0;
        let series: Vec<f64> = (0..200)
            .map(|i| {
                v += if i % 3 == 0 { 5.0 } else { -2.0 };
                v
            })
            .collect();
        let spec = WindowSpec { window: 4, horizon: 1 };
        let mut lr = LinearRegression::default();
        lr.fit(&[series.clone()], spec).unwrap();
        // Prediction from a constant window should be near that constant.
        let pred = lr.predict(&[vec![150.0; 4]]);
        assert!((pred[0] - 150.0).abs() < 20.0, "{}", pred[0]);
    }

    #[test]
    fn learns_periodic_pattern() {
        let series: Vec<f64> = (0..500)
            .map(|t| 100.0 + 80.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let spec = WindowSpec { window: 24, horizon: 1 };
        let mut lr = LinearRegression::default();
        lr.fit(&[series.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&lr, &[series], spec, 450);
        assert!(mse < 0.05, "periodic fit should be tight: {mse}");
    }

    #[test]
    fn joint_training_shares_information() {
        // Cluster 1 is a time-shifted copy of cluster 0: the joint model
        // can use cluster 0's window to predict cluster 1 exactly.
        let base: Vec<f64> =
            (0..300).map(|t| 50.0 + 40.0 * ((t % 12) as f64).sin().abs()).collect();
        let shifted: Vec<f64> = {
            let mut s = vec![50.0; 3];
            s.extend_from_slice(&base[..297]);
            s
        };
        let spec = WindowSpec { window: 12, horizon: 3 };
        let mut lr = LinearRegression::default();
        lr.fit(&[base.clone(), shifted.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&lr, &[base, shifted], spec, 280);
        assert!(mse < 0.05, "shifted-copy cluster should be predictable: {mse}");
    }

    #[test]
    fn never_predicts_negative() {
        let series = vec![vec![0.0; 100]];
        let spec = WindowSpec { window: 5, horizon: 1 };
        let mut lr = LinearRegression::default();
        lr.fit(&series, spec).unwrap();
        let pred = lr.predict(&[vec![0.0; 5]]);
        assert!(pred[0] >= 0.0);
    }

    #[test]
    fn not_enough_data_propagates() {
        let mut lr = LinearRegression::default();
        let err = lr.fit(&[vec![1.0; 3]], WindowSpec { window: 4, horizon: 1 }).unwrap_err();
        assert!(matches!(err, ForecastError::NotEnoughData { .. }));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        LinearRegression::default().predict(&[vec![1.0; 4]]);
    }

    #[test]
    fn parameter_count() {
        let mut lr = LinearRegression::default();
        lr.fit(&[vec![1.0; 50], vec![2.0; 50]], WindowSpec { window: 10, horizon: 1 }).unwrap();
        // (10·2 + 1) × 2
        assert_eq!(lr.num_parameters(), 42);
    }
}

// --- serialization (Table 4's "size of the learned weights") ---

const LR_MAGIC: &[u8; 4] = b"QBLR";
const LR_VERSION: u16 = 1;

impl LinearRegression {
    /// Serializes the fitted model (weights + geometry).
    ///
    /// # Panics
    /// Panics if the model has not been fitted.
    pub fn to_bytes(&self) -> Vec<u8> {
        let spec = self.spec.expect("LR::to_bytes before fit");
        let w = self.weights.as_ref().expect("LR::to_bytes before fit");
        let mut out = crate::persist::Writer::new(LR_MAGIC, LR_VERSION);
        out.f64(self.lambda);
        out.spec(spec);
        out.u64(self.clusters as u64);
        out.u64(w.rows() as u64);
        out.u64(w.cols() as u64);
        out.f64s(w.as_slice());
        out.finish()
    }

    /// Restores a model serialized with [`LinearRegression::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{PersistError, Reader};
        let mut r = Reader::new(bytes, LR_MAGIC, LR_VERSION)?;
        let lambda = r.f64()?;
        let spec = r.spec()?;
        let clusters = r.usize()?;
        let rows = r.usize()?;
        let cols = r.usize()?;
        let data = r.f64s()?;
        if data.len() != rows * cols {
            return Err(PersistError::Malformed(format!(
                "weight buffer {} != {rows}x{cols}",
                data.len()
            )));
        }
        r.expect_end()?;
        Ok(Self {
            lambda,
            spec: Some(spec),
            weights: Some(Matrix::from_vec(rows, cols, data)),
            clusters,
        })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::Forecaster;

    #[test]
    fn roundtrip_preserves_predictions() {
        let series = vec![(0..200)
            .map(|t| 50.0 + 30.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 24, horizon: 2 };
        let mut lr = LinearRegression::default();
        lr.fit(&series, spec).unwrap();
        let bytes = lr.to_bytes();
        let restored = LinearRegression::from_bytes(&bytes).unwrap();
        let recent = vec![series[0][170..194].to_vec()];
        assert_eq!(lr.predict(&recent), restored.predict(&recent));
        // Table 4 narrative: the LR footprint is tiny (weights only).
        assert!(bytes.len() < 1024, "LR serialization is {} bytes", bytes.len());
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let mut lr = LinearRegression::default();
        lr.fit(&[vec![1.0; 50]], WindowSpec { window: 5, horizon: 1 }).unwrap();
        let mut bytes = lr.to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(LinearRegression::from_bytes(&bytes).is_err());
    }
}
