//! The ENSEMBLE model (§6.1): the equal average of LR and RNN predictions.
//!
//! "We apply an ensemble method by equally averaging the prediction results
//! of the LR and RNN models. We also tried averaging the models with
//! weights derived from the training history, but that led to overfitting."
//!
//! Resilience: a member whose training *diverges* (non-finite loss or
//! weights) is dropped rather than failing the fit — the surviving member
//! serves alone, and if both members diverge a last-value [`Persistence`]
//! fallback serves. Data errors (shape, length) still propagate: they would
//! fail every link of the chain identically. [`Ensemble::degradation`]
//! reports how far down the chain the fit landed.

use qb_parallel::Parallelism;

use crate::dataset::{ForecastError, WindowSpec};
use crate::fallback::Persistence;
use crate::lr::LinearRegression;
use crate::rnn::{Rnn, RnnConfig};
use crate::{DegradationLevel, Forecaster};

/// Which members survived the last fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Both,
    LrOnly,
    RnnOnly,
    LastValue,
}

/// LR + RNN averaged with equal weights.
///
/// Members fit (and predict) concurrently when [`Parallelism`] allows:
/// each member is self-contained and seeded independently, and their
/// `Result`s are joined in fixed member order (LR, then RNN), so the
/// degradation chain — and every output bit — is identical to a
/// sequential run.
pub struct Ensemble {
    lr: LinearRegression,
    rnn: Rnn,
    fallback: Persistence,
    mode: Mode,
    failures: Vec<(&'static str, ForecastError)>,
    par: Parallelism,
    /// Counts member divergences across fits; no-op until
    /// [`Forecaster::instrument`] installs a recorder.
    divergences: qb_obs::Counter,
    member_failures_metric: qb_obs::Counter,
}

impl Default for Ensemble {
    fn default() -> Self {
        Self::new(RnnConfig::default())
    }
}

impl Ensemble {
    pub fn new(rnn_cfg: RnnConfig) -> Self {
        Self::from_parts(LinearRegression::default(), Rnn::new(rnn_cfg))
    }

    /// Builds from already-configured members (lets the harness share
    /// settings across the standalone and ensemble evaluations).
    pub fn from_parts(lr: LinearRegression, rnn: Rnn) -> Self {
        Self {
            lr,
            rnn,
            fallback: Persistence::new(),
            mode: Mode::Both,
            failures: Vec::new(),
            par: Parallelism::from_env(),
            divergences: qb_obs::Counter::default(),
            member_failures_metric: qb_obs::Counter::default(),
        }
    }

    /// Overrides the environment-derived member parallelism (the
    /// determinism suite pins both a sequential and a 4-thread instance).
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Read access to the members, for the §7.3 per-model spike plots.
    pub fn members(&self) -> (&LinearRegression, &Rnn) {
        (&self.lr, &self.rnn)
    }

    /// How far down the fallback chain the last fit landed.
    pub fn degradation(&self) -> DegradationLevel {
        match self.mode {
            Mode::Both => DegradationLevel::Full,
            Mode::LrOnly | Mode::RnnOnly => DegradationLevel::Single,
            Mode::LastValue => DegradationLevel::LastValue,
        }
    }

    /// The member failures that caused degradation (empty when Full).
    pub fn member_failures(&self) -> &[(&'static str, ForecastError)] {
        &self.failures
    }
}

impl Forecaster for Ensemble {
    fn name(&self) -> &'static str {
        "ENSEMBLE"
    }

    fn instrument(&mut self, recorder: &qb_obs::Recorder) {
        self.divergences = recorder.counter("forecast.divergences");
        self.member_failures_metric = recorder.counter("forecast.member_failures");
    }

    fn degradation(&self) -> DegradationLevel {
        Ensemble::degradation(self)
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        self.failures.clear();
        self.mode = Mode::Both;
        // Disjoint member borrows fit concurrently; the join returns
        // results in member order regardless of completion order.
        let (lr, rnn, par) = (&mut self.lr, &mut self.rnn, self.par);
        let (lr_res, rnn_res) =
            par.join(move || lr.fit(series, spec), move || rnn.fit(series, spec));
        // Data errors fail the whole chain: no member could train either.
        for res in [&lr_res, &rnn_res] {
            if let Err(e) = res {
                if !e.is_model_failure() {
                    return Err(e.clone());
                }
            }
        }
        self.mode = match (lr_res, rnn_res) {
            (Ok(()), Ok(())) => Mode::Both,
            (Ok(()), Err(e)) => {
                self.failures.push(("RNN", e));
                Mode::LrOnly
            }
            (Err(e), Ok(())) => {
                self.failures.push(("LR", e));
                Mode::RnnOnly
            }
            (Err(lr_err), Err(rnn_err)) => {
                self.failures.push(("LR", lr_err));
                self.failures.push(("RNN", rnn_err));
                self.fallback.fit(series, spec)?;
                Mode::LastValue
            }
        };
        self.member_failures_metric.add(self.failures.len() as u64);
        self.divergences.add(
            self.failures.iter().filter(|(_, e)| e.is_model_failure()).count() as u64,
        );
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        match self.mode {
            Mode::Both => {
                let (a, b) = self
                    .par
                    .join(|| self.lr.predict(recent), || self.rnn.predict(recent));
                a.iter().zip(&b).map(|(x, y)| 0.5 * (x + y)).collect()
            }
            Mode::LrOnly => self.lr.predict(recent),
            Mode::RnnOnly => self.rnn.predict(recent),
            Mode::LastValue => self.fallback.predict(recent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_rnn() -> RnnConfig {
        RnnConfig { epochs: 15, hidden: 8, embedding: 6, ..RnnConfig::default() }
    }

    #[test]
    fn prediction_is_member_average() {
        let series = vec![(0..150)
            .map(|t| 80.0 + 40.0 * ((t % 10) as f64 / 10.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut e = Ensemble::new(quick_rnn());
        e.fit(&series, spec).unwrap();
        let recent = vec![series[0][130..140].to_vec()];
        let pred = e.predict(&recent);
        let (lr, rnn) = e.members();
        let want = 0.5 * (lr.predict(&recent)[0] + rnn.predict(&recent)[0]);
        assert!((pred[0] - want).abs() < 1e-9);
    }

    #[test]
    fn ensemble_not_worse_than_worst_member() {
        let series = vec![(0..220)
            .map(|t| 100.0 + 70.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 24, horizon: 1 };
        let mut e = Ensemble::new(quick_rnn());
        e.fit(&series, spec).unwrap();
        let mse_e = crate::evaluate_mse_log(&e, &series, spec, 190);
        let (lr, rnn) = e.members();
        let mse_lr = crate::evaluate_mse_log(lr, &series, spec, 190);
        let mse_rnn = crate::evaluate_mse_log(rnn, &series, spec, 190);
        let worst = mse_lr.max(mse_rnn);
        assert!(
            mse_e <= worst + 0.05,
            "ensemble {mse_e} worse than worst member {worst}"
        );
    }

    #[test]
    fn fit_error_propagates() {
        let mut e = Ensemble::new(quick_rnn());
        assert!(e.fit(&[vec![1.0; 3]], WindowSpec { window: 10, horizon: 1 }).is_err());
    }

    #[test]
    fn rnn_divergence_degrades_to_single_member() {
        // A NaN learning rate poisons the RNN's optimizer on the first Adam
        // step; the closed-form LR member is untouched. The ensemble must
        // drop the diverged member, not fail.
        let cfg = RnnConfig { learning_rate: f64::NAN, epochs: 3, ..quick_rnn() };
        let series = vec![vec![50.0; 120]];
        let spec = WindowSpec { window: 8, horizon: 1 };
        let mut e = Ensemble::new(cfg);
        e.fit(&series, spec).unwrap();
        assert_eq!(e.degradation(), DegradationLevel::Single);
        let failures = e.member_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "RNN");
        assert!(matches!(failures[0].1, ForecastError::Diverged { model: "RNN", .. }));
        let pred = e.predict(&[vec![50.0; 8]]);
        assert!(pred[0].is_finite());
        assert!((pred[0] - 50.0).abs() < 15.0, "LR alone should serve: {}", pred[0]);
    }

    #[test]
    fn infinite_series_degrades_to_last_value() {
        // ∞ survives the log transform (ln(1+∞) = ∞), so both members see
        // non-finite training data and diverge; persistence must serve.
        let mut s = vec![30.0; 120];
        s[60] = f64::INFINITY;
        let spec = WindowSpec { window: 8, horizon: 1 };
        let mut e = Ensemble::new(quick_rnn());
        e.fit(&[s], spec).unwrap();
        assert_eq!(e.degradation(), DegradationLevel::LastValue);
        assert_eq!(e.member_failures().len(), 2);
        let pred = e.predict(&[vec![25.0; 8]]);
        assert_eq!(pred, vec![25.0], "last-value persistence serves");
    }

    #[test]
    fn nan_series_never_panics_and_predicts_finite() {
        // NaN rates are sanitized to 0 by the `max(0.0).ln_1p()` transform,
        // so training sees zeros; whatever the chain lands on, the
        // prediction must stay finite.
        let mut s: Vec<f64> = (0..120).map(|t| 40.0 + (t % 6) as f64).collect();
        for t in (0..120).step_by(7) {
            s[t] = f64::NAN;
        }
        let spec = WindowSpec { window: 8, horizon: 1 };
        let mut e = Ensemble::new(quick_rnn());
        e.fit(&[s.clone()], spec).unwrap();
        let pred = e.predict(&[s[112..120].to_vec()]);
        assert!(pred[0].is_finite() && pred[0] >= 0.0, "{}", pred[0]);
    }

    #[test]
    fn recorder_counts_member_divergences() {
        let rec = qb_obs::Recorder::new();
        let cfg = RnnConfig { learning_rate: f64::NAN, epochs: 3, ..quick_rnn() };
        let mut e = Ensemble::new(cfg);
        e.instrument(&rec);
        e.fit(&[vec![50.0; 120]], WindowSpec { window: 8, horizon: 1 }).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["forecast.member_failures"], 1);
        assert_eq!(snap.counters["forecast.divergences"], 1);
        assert_eq!(e.degradation(), DegradationLevel::Single);
        assert_eq!(Forecaster::degradation(&e), DegradationLevel::Single);
    }

    #[test]
    fn healthy_fit_reports_full() {
        let series = vec![vec![10.0; 80]];
        let mut e = Ensemble::new(quick_rnn());
        e.fit(&series, WindowSpec { window: 6, horizon: 1 }).unwrap();
        assert_eq!(e.degradation(), DegradationLevel::Full);
        assert!(e.member_failures().is_empty());
    }
}
