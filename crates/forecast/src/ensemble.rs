//! The ENSEMBLE model (§6.1): the equal average of LR and RNN predictions.
//!
//! "We apply an ensemble method by equally averaging the prediction results
//! of the LR and RNN models. We also tried averaging the models with
//! weights derived from the training history, but that led to overfitting."

use crate::dataset::{ForecastError, WindowSpec};
use crate::lr::LinearRegression;
use crate::rnn::{Rnn, RnnConfig};
use crate::Forecaster;

/// LR + RNN averaged with equal weights.
pub struct Ensemble {
    lr: LinearRegression,
    rnn: Rnn,
}

impl Default for Ensemble {
    fn default() -> Self {
        Self::new(RnnConfig::default())
    }
}

impl Ensemble {
    pub fn new(rnn_cfg: RnnConfig) -> Self {
        Self { lr: LinearRegression::default(), rnn: Rnn::new(rnn_cfg) }
    }

    /// Builds from already-configured members (lets the harness share
    /// settings across the standalone and ensemble evaluations).
    pub fn from_parts(lr: LinearRegression, rnn: Rnn) -> Self {
        Self { lr, rnn }
    }

    /// Read access to the members, for the §7.3 per-model spike plots.
    pub fn members(&self) -> (&LinearRegression, &Rnn) {
        (&self.lr, &self.rnn)
    }
}

impl Forecaster for Ensemble {
    fn name(&self) -> &'static str {
        "ENSEMBLE"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        self.lr.fit(series, spec)?;
        self.rnn.fit(series, spec)?;
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let a = self.lr.predict(recent);
        let b = self.rnn.predict(recent);
        a.iter().zip(&b).map(|(x, y)| 0.5 * (x + y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_rnn() -> RnnConfig {
        RnnConfig { epochs: 15, hidden: 8, embedding: 6, ..RnnConfig::default() }
    }

    #[test]
    fn prediction_is_member_average() {
        let series = vec![(0..150)
            .map(|t| 80.0 + 40.0 * ((t % 10) as f64 / 10.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut e = Ensemble::new(quick_rnn());
        e.fit(&series, spec).unwrap();
        let recent = vec![series[0][130..140].to_vec()];
        let pred = e.predict(&recent);
        let (lr, rnn) = e.members();
        let want = 0.5 * (lr.predict(&recent)[0] + rnn.predict(&recent)[0]);
        assert!((pred[0] - want).abs() < 1e-9);
    }

    #[test]
    fn ensemble_not_worse_than_worst_member() {
        let series = vec![(0..220)
            .map(|t| 100.0 + 70.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 24, horizon: 1 };
        let mut e = Ensemble::new(quick_rnn());
        e.fit(&series, spec).unwrap();
        let mse_e = crate::evaluate_mse_log(&e, &series, spec, 190);
        let (lr, rnn) = e.members();
        let mse_lr = crate::evaluate_mse_log(lr, &series, spec, 190);
        let mse_rnn = crate::evaluate_mse_log(rnn, &series, spec, 190);
        let worst = mse_lr.max(mse_rnn);
        assert!(
            mse_e <= worst + 0.05,
            "ensemble {mse_e} worse than worst member {worst}"
        );
    }

    #[test]
    fn fit_error_propagates() {
        let mut e = Ensemble::new(quick_rnn());
        assert!(e.fit(&[vec![1.0; 3]], WindowSpec { window: 10, horizon: 1 }).is_err());
    }
}
