//! LSTM recurrent network (RNN, §6.1).
//!
//! Architecture per §7.2: "a linear embedding layer of size 25 followed by
//! two LSTM layers each with 20 cells", then a linear head mapping the final
//! hidden state to the per-cluster prediction. Trained with Adam on
//! mean-squared error in log space, BPTT through the input window,
//! global-norm gradient clipping, and early stopping when validation
//! accuracy stops improving (§7.5: "We stop training the RNN models when
//! the validation accuracy stops improving").

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dataset::{ensure_finite, validate_series, ForecastError, WindowSpec};
use crate::nn::{Dense, LstmLayer, Param};
use crate::Forecaster;

/// Hyperparameters for the LSTM forecaster. The defaults are the paper's
/// (embedding 25, two layers of 20 cells) and are intentionally *not* tuned
/// per workload (§7.2 fixes hyperparameters across workloads/horizons).
#[derive(Debug, Clone)]
pub struct RnnConfig {
    pub embedding: usize,
    pub hidden: usize,
    /// Maximum training epochs; early stopping usually ends sooner.
    pub epochs: usize,
    pub learning_rate: f64,
    pub batch_size: usize,
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Fraction of examples held out for validation-based early stopping.
    pub validation_fraction: f64,
    pub grad_clip: f64,
    pub seed: u64,
}

impl Default for RnnConfig {
    fn default() -> Self {
        Self {
            embedding: 25,
            hidden: 20,
            epochs: 80,
            learning_rate: 5e-3,
            batch_size: 16,
            patience: 8,
            validation_fraction: 0.15,
            grad_clip: 5.0,
            seed: 0x5157,
        }
    }
}

struct Network {
    embed: Dense,
    lstm1: LstmLayer,
    lstm2: LstmLayer,
    head: Dense,
}

impl Network {
    fn new(clusters: usize, cfg: &RnnConfig, rng: &mut SmallRng) -> Self {
        Self {
            embed: Dense::new(clusters, cfg.embedding, rng),
            lstm1: LstmLayer::new(cfg.embedding, cfg.hidden, rng),
            lstm2: LstmLayer::new(cfg.hidden, cfg.hidden, rng),
            head: Dense::new(cfg.hidden, clusters, rng),
        }
    }

    /// Forward over one sequence (time-major, each step = per-cluster log
    /// rates). Returns the prediction and the caches needed for BPTT.
    fn forward(
        &self,
        seq: &[Vec<f64>],
    ) -> (Vec<f64>, Vec<Vec<f64>>, Vec<crate::nn::LstmStep>, Vec<crate::nn::LstmStep>) {
        let hidden = self.lstm1.hidden;
        let mut h1 = vec![0.0; hidden];
        let mut c1 = vec![0.0; hidden];
        let mut h2 = vec![0.0; hidden];
        let mut c2 = vec![0.0; hidden];
        let mut embeds = Vec::with_capacity(seq.len());
        let mut steps1 = Vec::with_capacity(seq.len());
        let mut steps2 = Vec::with_capacity(seq.len());
        for x in seq {
            let e = self.embed.forward(x);
            let s1 = self.lstm1.step(&e, &h1, &c1);
            h1 = s1.h.clone();
            c1 = s1.c.clone();
            let s2 = self.lstm2.step(&h1, &h2, &c2);
            h2 = s2.h.clone();
            c2 = s2.c.clone();
            embeds.push(e);
            steps1.push(s1);
            steps2.push(s2);
        }
        let y = self.head.forward(&h2);
        (y, embeds, steps1, steps2)
    }

    fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.lstm1.zero_grad();
        self.lstm2.zero_grad();
        self.head.zero_grad();
    }

    fn clip_and_step(&mut self, clip: f64, lr: f64, t: usize) {
        Param::clip_global_norm(
            &mut [
                &mut self.embed.w,
                &mut self.embed.b,
                &mut self.lstm1.wx,
                &mut self.lstm1.wh,
                &mut self.lstm1.b,
                &mut self.lstm2.wx,
                &mut self.lstm2.wh,
                &mut self.lstm2.b,
                &mut self.head.w,
                &mut self.head.b,
            ],
            clip,
        );
        self.embed.adam_step(lr, t);
        self.lstm1.adam_step(lr, t);
        self.lstm2.adam_step(lr, t);
        self.head.adam_step(lr, t);
    }

    fn num_parameters(&self) -> usize {
        self.embed.num_parameters()
            + self.lstm1.num_parameters()
            + self.lstm2.num_parameters()
            + self.head.num_parameters()
    }
}

/// The LSTM forecaster.
pub struct Rnn {
    cfg: RnnConfig,
    net: Option<Network>,
    spec: Option<WindowSpec>,
    clusters: usize,
    /// Epochs actually run before early stopping (observability/Table 4).
    pub epochs_run: usize,
}

impl Default for Rnn {
    fn default() -> Self {
        Self::new(RnnConfig::default())
    }
}

impl Rnn {
    pub fn new(cfg: RnnConfig) -> Self {
        Self { cfg, net: None, spec: None, clusters: 0, epochs_run: 0 }
    }

    /// Total trainable parameter count (Table 4 storage accounting).
    pub fn num_parameters(&self) -> usize {
        self.net.as_ref().map_or(0, Network::num_parameters)
    }

    /// Builds time-major log-space sequences and targets.
    fn make_examples(
        series: &[Vec<f64>],
        spec: WindowSpec,
    ) -> (Vec<Vec<Vec<f64>>>, Vec<Vec<f64>>) {
        let len = series[0].len();
        let n = len - spec.window - spec.horizon + 1;
        let clusters = series.len();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let seq: Vec<Vec<f64>> = (0..spec.window)
                .map(|w| (0..clusters).map(|c| series[c][i + w].max(0.0).ln_1p()).collect())
                .collect();
            let y: Vec<f64> = (0..clusters)
                .map(|c| series[c][i + spec.window + spec.horizon - 1].max(0.0).ln_1p())
                .collect();
            xs.push(seq);
            ys.push(y);
        }
        (xs, ys)
    }

    fn sequence_loss(net: &Network, xs: &[Vec<Vec<f64>>], ys: &[Vec<f64>]) -> f64 {
        let mut loss = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let (pred, _, _, _) = net.forward(x);
            loss += pred.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        }
        loss / xs.len().max(1) as f64
    }
}

impl Forecaster for Rnn {
    fn name(&self) -> &'static str {
        "RNN"
    }

    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        let (clusters, _) = validate_series(series, spec)?;
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut net = Network::new(clusters, &self.cfg, &mut rng);

        let (xs, ys) = Self::make_examples(series, spec);
        let n = xs.len();
        // Hold out the most recent examples for validation (temporal
        // split). With a single example there is nothing to hold out:
        // validate on the training example itself rather than on an empty
        // set (whose zero loss would freeze early stopping at epoch 0).
        let n_val = if n >= 2 {
            ((n as f64 * self.cfg.validation_fraction) as usize).clamp(1, n - 1)
        } else {
            0
        };
        let n_train = n - n_val;
        let (train_x, val_x) = xs.split_at(n_train);
        let (train_y, val_y) = ys.split_at(n_train);
        let (val_x, val_y) =
            if val_x.is_empty() { (train_x, train_y) } else { (val_x, val_y) };

        let mut best_val = f64::INFINITY;
        let mut best_net: Option<Network> = None;
        let mut stale = 0;
        let mut adam_t = 0;
        self.epochs_run = 0;

        // Deterministic epoch shuffling via an LCG over indices.
        let mut order: Vec<usize> = (0..train_x.len()).collect();
        for epoch in 0..self.cfg.epochs {
            // Fisher–Yates with the seeded RNG.
            use rand::Rng;
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(self.cfg.batch_size) {
                net.zero_grad();
                for &idx in batch {
                    let seq = &train_x[idx];
                    let target = &train_y[idx];
                    let (pred, embeds, steps1, steps2) = net.forward(seq);
                    let dy: Vec<f64> = pred
                        .iter()
                        .zip(target)
                        .map(|(a, b)| 2.0 * (a - b) / batch.len() as f64)
                        .collect();
                    // Backprop: head → lstm2 → lstm1 → embed, through time.
                    let last_h2 = &steps2.last().expect("non-empty window").h;
                    let mut dh2 = net.head.backward(last_h2, &dy);
                    let hidden = net.lstm1.hidden;
                    let mut dc2 = vec![0.0; hidden];
                    let mut dh1 = vec![0.0; hidden];
                    let mut dc1 = vec![0.0; hidden];
                    for t in (0..seq.len()).rev() {
                        let (dx2, dh2_prev, dc2_prev) =
                            net.lstm2.backward_step(&steps2[t], &dh2, &dc2);
                        // dx2 flows into lstm1's h output at step t.
                        let dh1_total: Vec<f64> =
                            dh1.iter().zip(&dx2).map(|(a, b)| a + b).collect();
                        let (dx1, dh1_prev, dc1_prev) =
                            net.lstm1.backward_step(&steps1[t], &dh1_total, &dc1);
                        net.embed.backward(&seq[t], &dx1);
                        let _ = embeds;
                        dh2 = dh2_prev;
                        dc2 = dc2_prev;
                        dh1 = dh1_prev;
                        dc1 = dc1_prev;
                    }
                }
                adam_t += 1;
                net.clip_and_step(self.cfg.grad_clip, self.cfg.learning_rate, adam_t);
            }
            self.epochs_run = epoch + 1;

            let val = Self::sequence_loss(&net, val_x, val_y);
            // Divergence guard: a non-finite validation loss means the
            // weights have left the representable range (NaN inputs or an
            // exploding update). Abort — continuing would let NaN weights
            // be silently installed once patience runs out.
            if !val.is_finite() {
                return Err(ForecastError::Diverged {
                    model: "RNN",
                    detail: format!("validation loss {val} at epoch {}", epoch + 1),
                });
            }
            if val + 1e-9 < best_val {
                best_val = val;
                best_net = Some(Network {
                    embed: net.embed.clone(),
                    lstm1: net.lstm1.clone(),
                    lstm2: net.lstm2.clone(),
                    head: net.head.clone(),
                });
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.cfg.patience {
                    break;
                }
            }
        }

        let net = best_net.unwrap_or(net);
        ensure_finite("RNN", "head weights", net.head.w.value.as_slice().iter().copied())?;
        self.net = Some(net);
        self.spec = Some(spec);
        self.clusters = clusters;
        Ok(())
    }

    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let net = self.net.as_ref().expect("RNN::predict before fit");
        let spec = self.spec.expect("RNN::predict before fit");
        assert_eq!(recent.len(), self.clusters, "RNN::predict: cluster count changed");
        let len = recent[0].len();
        assert!(len >= spec.window, "RNN::predict: need at least {} steps", spec.window);
        let seq: Vec<Vec<f64>> = (len - spec.window..len)
            .map(|t| recent.iter().map(|s| s[t].max(0.0).ln_1p()).collect())
            .collect();
        let (y, _, _, _) = net.forward(&seq);
        y.into_iter().map(|v| v.exp_m1().max(0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RnnConfig {
        RnnConfig { epochs: 40, hidden: 10, embedding: 8, patience: 40, ..RnnConfig::default() }
    }

    #[test]
    fn learns_periodic_series() {
        let series: Vec<f64> = (0..240)
            .map(|t| 100.0 + 80.0 * ((t % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect();
        let spec = WindowSpec { window: 12, horizon: 1 };
        let mut rnn = Rnn::new(quick_cfg());
        rnn.fit(&[series.clone()], spec).unwrap();
        let mse = crate::evaluate_mse_log(&rnn, &[series], spec, 200);
        assert!(mse < 0.3, "LSTM should track the cycle: {mse}");
    }

    #[test]
    fn early_stopping_engages() {
        // Constant series: validation loss bottoms out almost immediately.
        let series = vec![vec![100.0; 120]];
        let cfg = RnnConfig { epochs: 200, patience: 3, ..quick_cfg() };
        let mut rnn = Rnn::new(cfg);
        rnn.fit(&series, WindowSpec { window: 8, horizon: 1 }).unwrap();
        assert!(rnn.epochs_run < 200, "early stopping should cut training short");
    }

    #[test]
    fn deterministic_given_seed() {
        let series = vec![(0..100).map(|t| (t % 10) as f64 * 10.0).collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 10, horizon: 1 };
        let mut a = Rnn::new(quick_cfg());
        let mut b = Rnn::new(quick_cfg());
        a.fit(&series, spec).unwrap();
        b.fit(&series, spec).unwrap();
        let recent = vec![series[0][88..98].to_vec()];
        assert_eq!(a.predict(&recent), b.predict(&recent));
    }

    #[test]
    fn multi_cluster_output_dims() {
        let series = vec![vec![10.0; 60], vec![20.0; 60], vec![30.0; 60]];
        let spec = WindowSpec { window: 6, horizon: 2 };
        let mut rnn = Rnn::new(RnnConfig { epochs: 5, ..quick_cfg() });
        rnn.fit(&series, spec).unwrap();
        let pred = rnn.predict(&vec![vec![10.0; 6]; 3]);
        assert_eq!(pred.len(), 3);
        assert!(pred.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let series = vec![vec![1.0; 50]];
        let cfg = RnnConfig { embedding: 25, hidden: 20, epochs: 1, ..RnnConfig::default() };
        let mut rnn = Rnn::new(cfg);
        rnn.fit(&series, WindowSpec { window: 5, horizon: 1 }).unwrap();
        // embed: 25·1+25, lstm1: 4·20·(25+20+1), lstm2: 4·20·(20+20+1),
        // head: 1·20+1.
        let expected = (25 + 25) + 80 * 46 + 80 * 41 + 21;
        assert_eq!(rnn.num_parameters(), expected);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        Rnn::default().predict(&[vec![1.0; 24]]);
    }

    #[test]
    fn infinite_input_aborts_with_diverged() {
        // ∞ survives the ln(1+x) transform, so training loss goes
        // non-finite; the guard must abort instead of installing garbage.
        let mut s = vec![10.0; 100];
        s[50] = f64::INFINITY;
        let mut rnn = Rnn::new(RnnConfig { epochs: 5, ..quick_cfg() });
        let err = rnn.fit(&[s], WindowSpec { window: 8, horizon: 1 }).unwrap_err();
        assert!(matches!(err, ForecastError::Diverged { model: "RNN", .. }), "{err}");
    }

    #[test]
    fn nan_input_never_panics() {
        // NaN rates sanitize to 0 in the log transform; training must
        // either succeed or abort cleanly — never panic or emit NaN.
        let mut s: Vec<f64> = (0..100).map(|t| 20.0 + (t % 5) as f64).collect();
        s[10] = f64::NAN;
        s[55] = f64::NAN;
        let mut rnn = Rnn::new(RnnConfig { epochs: 5, ..quick_cfg() });
        if rnn.fit(&[s.clone()], WindowSpec { window: 8, horizon: 1 }).is_ok() {
            let pred = rnn.predict(&[s[92..100].to_vec()]);
            assert!(pred[0].is_finite() && pred[0] >= 0.0);
        }
    }

    #[test]
    fn nan_optimizer_aborts_with_diverged() {
        let cfg = RnnConfig { learning_rate: f64::NAN, epochs: 3, ..quick_cfg() };
        let mut rnn = Rnn::new(cfg);
        let err =
            rnn.fit(&[vec![10.0; 80]], WindowSpec { window: 8, horizon: 1 }).unwrap_err();
        assert!(err.is_model_failure(), "{err}");
    }
}

// --- serialization (Table 4's "serialized model object ... contains both
// the model parameters and network structure") ---

const RNN_MAGIC: &[u8; 4] = b"QBRN";
const RNN_VERSION: u16 = 1;

impl Rnn {
    /// Serializes the trained network: architecture dimensions plus every
    /// weight tensor.
    ///
    /// # Panics
    /// Panics if the model has not been fitted.
    pub fn to_bytes(&self) -> Vec<u8> {
        let net = self.net.as_ref().expect("RNN::to_bytes before fit");
        let spec = self.spec.expect("RNN::to_bytes before fit");
        let mut w = crate::persist::Writer::new(RNN_MAGIC, RNN_VERSION);
        w.spec(spec);
        w.u64(self.clusters as u64);
        w.u64(self.cfg.embedding as u64);
        w.u64(self.cfg.hidden as u64);
        for m in [
            &net.embed.w.value,
            &net.embed.b.value,
            &net.lstm1.wx.value,
            &net.lstm1.wh.value,
            &net.lstm1.b.value,
            &net.lstm2.wx.value,
            &net.lstm2.wh.value,
            &net.lstm2.b.value,
            &net.head.w.value,
            &net.head.b.value,
        ] {
            w.f64s(m.as_slice());
        }
        w.finish()
    }

    /// Restores a model serialized with [`Rnn::to_bytes`]. The restored
    /// model predicts identically; it can also be trained further (fresh
    /// optimizer state).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{PersistError, Reader};
        use rand::SeedableRng;
        let mut r = Reader::new(bytes, RNN_MAGIC, RNN_VERSION)?;
        let spec = r.spec()?;
        let clusters = r.usize()?;
        let embedding = r.usize()?;
        let hidden = r.usize()?;
        // Sanity-check the architecture header before allocating: a corrupt
        // file must yield PersistError, not a multi-gigabyte allocation.
        const MAX_DIM: usize = 65_536;
        if clusters == 0 || clusters > MAX_DIM || embedding == 0 || embedding > MAX_DIM
            || hidden == 0 || hidden > MAX_DIM
        {
            return Err(PersistError::Malformed(format!(
                "implausible architecture {clusters}x{embedding}x{hidden}"
            )));
        }
        let cfg = RnnConfig { embedding, hidden, ..RnnConfig::default() };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed);
        let mut net = Network::new(clusters, &cfg, &mut rng);

        let mut load = |target: &mut qb_linalg::Matrix| -> Result<(), PersistError> {
            let data = r.f64s()?;
            if data.len() != target.rows() * target.cols() {
                return Err(PersistError::Malformed(format!(
                    "tensor size {} != {}x{}",
                    data.len(),
                    target.rows(),
                    target.cols()
                )));
            }
            target.as_mut_slice().copy_from_slice(&data);
            Ok(())
        };
        load(&mut net.embed.w.value)?;
        load(&mut net.embed.b.value)?;
        load(&mut net.lstm1.wx.value)?;
        load(&mut net.lstm1.wh.value)?;
        load(&mut net.lstm1.b.value)?;
        load(&mut net.lstm2.wx.value)?;
        load(&mut net.lstm2.wh.value)?;
        load(&mut net.lstm2.b.value)?;
        load(&mut net.head.w.value)?;
        load(&mut net.head.b.value)?;
        r.expect_end()?;
        Ok(Self { cfg, net: Some(net), spec: Some(spec), clusters, epochs_run: 0 })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_predictions() {
        let series = vec![(0..120)
            .map(|t| 40.0 + 20.0 * ((t % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect::<Vec<f64>>()];
        let spec = WindowSpec { window: 12, horizon: 1 };
        let mut rnn = Rnn::new(RnnConfig {
            epochs: 5,
            hidden: 6,
            embedding: 4,
            ..RnnConfig::default()
        });
        use crate::Forecaster;
        rnn.fit(&series, spec).unwrap();
        let bytes = rnn.to_bytes();
        let restored = Rnn::from_bytes(&bytes).unwrap();
        let recent = vec![series[0][100..112].to_vec()];
        assert_eq!(rnn.predict(&recent), restored.predict(&recent));
        // The RNN object dwarfs LR's footprint (Table 4's relative claim).
        assert!(bytes.len() > 2_000, "{} bytes", bytes.len());
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let mut rnn = Rnn::new(RnnConfig {
            epochs: 2,
            hidden: 4,
            embedding: 3,
            ..RnnConfig::default()
        });
        use crate::Forecaster;
        rnn.fit(&[vec![5.0; 60]], WindowSpec { window: 6, horizon: 1 }).unwrap();
        let mut bytes = rnn.to_bytes();
        bytes[6] ^= 0xFF;
        // Either a read error or a size mismatch — never a panic.
        let _ = Rnn::from_bytes(&bytes);
        bytes.truncate(20);
        assert!(Rnn::from_bytes(&bytes).is_err());
    }
}
