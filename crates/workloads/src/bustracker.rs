//! The BusTracker trace (§2.1): live transit tracking.
//!
//! "It ingests bus location information at regular intervals from the
//! transit system, and then helps users find nearby bus stops and get route
//! information." Rider-facing queries follow the daily commuter cycle of
//! Figure 1a (morning + evening rush, quieter weekends); ingest writes are
//! steady; maintenance deletes run overnight. The query-type mix tracks
//! Table 1's PostgreSQL column (~98 % SELECT, ~0.8 % INSERT, ~1 % UPDATE,
//! ~0.2 % DELETE).

use rand::Rng;

use crate::pattern::{daily_cycle, weekday_factor};
use crate::trace::{TemplateSpec, TraceConfig, TraceGenerator};
use crate::hour_of_day;

/// Builds the BusTracker generator.
pub fn generator(cfg: TraceConfig) -> TraceGenerator {
    let mut templates = Vec::new();

    // Rider-facing traffic: daily cycle with rush peaks, weekend dip.
    let rider = |weight: f64, make: Box<dyn Fn(&mut rand::rngs::SmallRng, i64) -> String + Send + Sync>| {
        let cycle = daily_cycle(0.15, 1.0, 0.85);
        let wk = weekday_factor(0.55);
        TemplateSpec { make_sql: make, weight, rate: Box::new(move |t| cycle(t) * wk(t)) }
    };

    // The workhorse: nearby-stop search.
    templates.push(rider(
        30.0,
        Box::new(|rng, _| {
            let lat = 40.40 + rng.gen_range(0..500) as f64 * 1e-4;
            let lon = -79.99 + rng.gen_range(0..500) as f64 * 1e-4;
            format!(
                "SELECT stop_id, stop_name, lat, lon FROM stops \
                 WHERE lat BETWEEN {:.4} AND {:.4} AND lon BETWEEN {:.4} AND {:.4}",
                lat - 0.01,
                lat + 0.01,
                lon - 0.01,
                lon + 0.01
            )
        }),
    ));

    // ETA lookup for a stop+route.
    templates.push(rider(
        26.0,
        Box::new(|rng, _| {
            format!(
                "SELECT eta_seconds, bus_id FROM predictions \
                 WHERE stop_id = {} AND route_id = {} ORDER BY eta_seconds LIMIT 3",
                rng.gen_range(1..2000),
                rng.gen_range(1..90)
            )
        }),
    ));

    // Live positions along a route.
    templates.push(rider(
        18.0,
        Box::new(|rng, _| {
            format!(
                "SELECT bus_id, lat, lon, heading FROM positions \
                 WHERE route_id = {} ORDER BY recorded_at DESC LIMIT 8",
                rng.gen_range(1..90)
            )
        }),
    ));

    // Route metadata.
    templates.push(rider(
        9.0,
        Box::new(|rng, _| {
            format!("SELECT route_id, route_name, color FROM routes WHERE route_id = {}", rng.gen_range(1..90))
        }),
    ));

    // Stops served by a route.
    templates.push(rider(
        7.0,
        Box::new(|rng, _| {
            format!(
                "SELECT s.stop_id, s.stop_name, rs.seq FROM stops AS s \
                 JOIN route_stops AS rs ON s.stop_id = rs.stop_id \
                 WHERE rs.route_id = {} ORDER BY rs.seq",
                rng.gen_range(1..90)
            )
        }),
    ));

    // Scheduled departures at a stop.
    templates.push(rider(
        6.0,
        Box::new(|rng, _| {
            format!(
                "SELECT trip_id, depart_time FROM schedule \
                 WHERE stop_id = {} AND service_day = {} AND depart_time > {} \
                 ORDER BY depart_time LIMIT 10",
                rng.gen_range(1..2000),
                rng.gen_range(0..7),
                rng.gen_range(0..86_400)
            )
        }),
    ));

    // User favorites (dashboard load).
    templates.push(rider(
        5.0,
        Box::new(|rng, _| {
            format!(
                "SELECT f.stop_id, s.stop_name FROM favorites AS f \
                 JOIN stops AS s ON f.stop_id = s.stop_id WHERE f.user_id = {}",
                rng.gen_range(1..100_000)
            )
        }),
    ));

    // Service alerts.
    templates.push(rider(
        3.0,
        Box::new(|rng, _| {
            format!(
                "SELECT alert_id, message, severity FROM alerts \
                 WHERE route_id = {} AND expires_at > {} ORDER BY severity DESC",
                rng.gen_range(1..90),
                rng.gen_range(0..1_000_000)
            )
        }),
    ));

    // Trip detail page.
    templates.push(rider(
        2.5,
        Box::new(|rng, _| {
            format!(
                "SELECT t.trip_id, t.headsign, v.capacity FROM trips AS t \
                 JOIN vehicles AS v ON t.vehicle_id = v.vehicle_id WHERE t.trip_id = {}",
                rng.gen_range(1..50_000)
            )
        }),
    ));

    // Session touch (rider activity, UPDATE share of the mix).
    templates.push(rider(
        1.0,
        Box::new(|rng, _| {
            format!(
                "UPDATE sessions SET last_seen = {}, hits = hits + 1 WHERE session_id = {}",
                rng.gen_range(0..1_000_000),
                rng.gen_range(1..500_000)
            )
        }),
    ));

    // Favorite add/remove (small INSERT/DELETE share, rider-shaped).
    templates.push(rider(
        0.12,
        Box::new(|rng, _| {
            format!(
                "INSERT INTO favorites (user_id, stop_id, created_at) VALUES ({}, {}, {})",
                rng.gen_range(1..100_000),
                rng.gen_range(1..2000),
                rng.gen_range(0..1_000_000)
            )
        }),
    ));
    templates.push(rider(
        0.10,
        Box::new(|rng, _| {
            format!(
                "DELETE FROM favorites WHERE user_id = {} AND stop_id = {}",
                rng.gen_range(1..100_000),
                rng.gen_range(1..2000)
            )
        }),
    ));

    // Steady machine traffic: position ingest from the transit feed, every
    // interval regardless of hour ("ingests bus location information at
    // regular intervals").
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "INSERT INTO positions (bus_id, route_id, lat, lon, heading, recorded_at) \
                 VALUES ({}, {}, {:.5}, {:.5}, {}, {})",
                rng.gen_range(1..400),
                rng.gen_range(1..90),
                40.4 + rng.gen_range(0..1000) as f64 * 1e-5,
                -80.0 + rng.gen_range(0..1000) as f64 * 1e-5,
                rng.gen_range(0..360),
                t
            )
        }),
        weight: 0.55,
        rate: Box::new(|_| 1.0),
    });

    // Prediction refresh (steady UPDATE).
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "UPDATE predictions SET eta_seconds = {}, updated_at = {} \
                 WHERE stop_id = {} AND route_id = {}",
                rng.gen_range(30..3600),
                rng.gen_range(0..1_000_000),
                rng.gen_range(1..2000),
                rng.gen_range(1..90)
            )
        }),
        weight: 0.35,
        rate: Box::new(|_| 1.0),
    });

    // Overnight maintenance: purge stale positions between 02:00–04:00.
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!("DELETE FROM positions WHERE recorded_at < {}", t - rng.gen_range(80_000..100_000))
        }),
        weight: 0.6,
        rate: Box::new(|t| {
            let h = hour_of_day(t);
            if (2.0..4.0).contains(&h) {
                1.0
            } else {
                0.0
            }
        }),
    });

    TraceGenerator::new(templates, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_timeseries::MINUTES_PER_DAY;

    fn small() -> TraceConfig {
        TraceConfig { start: 0, days: 3, scale: 0.3, seed: 11 }
    }

    #[test]
    fn all_sql_parses() {
        for ev in generator(small()).take(3000) {
            qb_sqlparse::parse_statement(&ev.sql)
                .unwrap_or_else(|e| panic!("unparseable `{}`: {e}", ev.sql));
        }
    }

    #[test]
    fn select_dominates_mix() {
        let mut selects = 0u64;
        let mut total = 0u64;
        for ev in generator(small()) {
            total += ev.count;
            if ev.sql.starts_with("SELECT") {
                selects += ev.count;
            }
        }
        let frac = selects as f64 / total as f64;
        assert!(frac > 0.90, "SELECT fraction {frac} too low (Table 1: ~98%)");
    }

    #[test]
    fn rush_hours_peak() {
        let g = generator(small());
        // Expected rate at 08:00 vs 03:00 on a weekday (day 3 = Monday).
        let monday = 3 * MINUTES_PER_DAY;
        let rush = g.expected_rate(monday + 8 * 60);
        let night = g.expected_rate(monday + 3 * 60);
        assert!(rush > night * 2.5, "rush {rush} vs night {night}");
    }

    #[test]
    fn weekend_quieter_than_weekday() {
        let g = generator(small());
        let saturday_noon = MINUTES_PER_DAY + 12 * 60; // day 1 = Saturday
        let monday_noon = 3 * MINUTES_PER_DAY + 12 * 60;
        assert!(g.expected_rate(monday_noon) > g.expected_rate(saturday_noon) * 1.3);
    }

    #[test]
    fn maintenance_only_overnight() {
        let events: Vec<_> = generator(TraceConfig { days: 2, ..small() })
            .filter(|e| e.sql.starts_with("DELETE FROM positions"))
            .collect();
        assert!(!events.is_empty(), "maintenance deletes should appear");
        for e in &events {
            let h = hour_of_day(e.minute);
            assert!((2.0..4.0).contains(&h), "delete at hour {h}");
        }
    }
}
