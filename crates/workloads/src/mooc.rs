//! The MOOC trace (§2.1): an online-course platform.
//!
//! "Instructors can upload their course materials, and students can check
//! out the course content and submit their course assignments." MOOC is
//! the *workload evolution* exemplar (Figure 1c): the set of distinct
//! queries grows over the trace as instructors launch new courses and the
//! organization ships new features — modeled as template *cohorts* that
//! activate at staggered times, including one large feature-release burst.

use rand::Rng;

use crate::pattern::{daily_cycle, step_after, weekday_factor};
use crate::trace::{TemplateSpec, TraceConfig, TraceGenerator};
use qb_timeseries::MINUTES_PER_DAY;

/// Day (relative to trace start) of the big feature release that causes
/// Figure 1c's early-May shift.
pub const FEATURE_RELEASE_DAY: i64 = 30;

/// Builds the MOOC generator.
pub fn generator(cfg: TraceConfig) -> TraceGenerator {
    let mut templates = Vec::new();

    let student_rate = || -> crate::pattern::RateFn {
        let cycle = daily_cycle(0.3, 0.5, 1.0);
        let wk = weekday_factor(0.8);
        Box::new(move |t| cycle(t) * wk(t))
    };

    // --- Core templates, live from day one. ---
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT course_id, title, instructor_id FROM courses \
                 WHERE published = TRUE AND category = {} ORDER BY enrolled DESC LIMIT 20",
                rng.gen_range(1..40)
            )
        }),
        weight: 14.0,
        rate: student_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT m.module_id, m.title, m.video_ref FROM modules AS m \
                 WHERE m.course_id = {} ORDER BY m.seq",
                rng.gen_range(1..5000)
            )
        }),
        weight: 18.0,
        rate: student_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT e.course_id, c.title, e.progress FROM enrollments AS e \
                 JOIN courses AS c ON e.course_id = c.course_id WHERE e.user_id = {}",
                rng.gen_range(1..500_000)
            )
        }),
        weight: 10.0,
        rate: student_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT a.assignment_id, a.due_at, s.grade FROM assignments AS a \
                 LEFT JOIN submissions AS s ON a.assignment_id = s.assignment_id \
                 WHERE a.course_id = {} AND s.user_id = {}",
                rng.gen_range(1..5000),
                rng.gen_range(1..500_000)
            )
        }),
        weight: 7.0,
        rate: student_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "INSERT INTO submissions (assignment_id, user_id, payload_ref, submitted_at) \
                 VALUES ({}, {}, 'blob-{}', {})",
                rng.gen_range(1..60_000),
                rng.gen_range(1..500_000),
                rng.gen_range(1..10_000_000),
                t
            )
        }),
        weight: 1.2,
        rate: student_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "UPDATE enrollments SET progress = {}, last_active = {} \
                 WHERE user_id = {} AND course_id = {}",
                rng.gen_range(0..101),
                t,
                rng.gen_range(1..500_000),
                rng.gen_range(1..5000)
            )
        }),
        weight: 3.0,
        rate: student_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "INSERT INTO enrollments (user_id, course_id, enrolled_at, progress) \
                 VALUES ({}, {}, {}, 0)",
                rng.gen_range(1..500_000),
                rng.gen_range(1..5000),
                t
            )
        }),
        weight: 0.8,
        rate: student_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!("DELETE FROM sessions WHERE expires_at < {}", rng.gen_range(0..10_000_000))
        }),
        weight: 0.4,
        rate: Box::new(|_| 1.0),
    });

    // --- Instructor cohorts: a new course launch every ~9 days brings a
    // fresh set of queries against course-specific structures. ---
    let cohort_days = [5i64, 14, 23, 41, 50, 59, 68, 77];
    for (k, &day) in cohort_days.iter().enumerate() {
        let activate = cfg.start + day * MINUTES_PER_DAY;
        let table = format!("course_forum_{k}");
        let quiz_table = format!("quiz_bank_{k}");
        {
            let table = table.clone();
            let gate = step_after(activate);
            let cycle = daily_cycle(0.2, 0.4, 0.8);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, _| {
                    format!(
                        "SELECT post_id, author_id, body FROM {table} \
                         WHERE thread_id = {} ORDER BY created_at DESC LIMIT 15",
                        rng.gen_range(1..3000)
                    )
                }),
                weight: 2.2,
                rate: Box::new(move |t| gate(t) * cycle(t)),
            });
        }
        {
            let gate = step_after(activate);
            let cycle = daily_cycle(0.2, 0.4, 0.8);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, t| {
                    format!(
                        "INSERT INTO {table} (thread_id, author_id, body, created_at) \
                         VALUES ({}, {}, 'post-{}', {})",
                        rng.gen_range(1..3000),
                        rng.gen_range(1..500_000),
                        rng.gen_range(1..1_000_000),
                        t
                    )
                }),
                weight: 0.25,
                rate: Box::new(move |t| gate(t) * cycle(t)),
            });
        }
        {
            let gate = step_after(activate);
            let cycle = daily_cycle(0.15, 0.3, 0.6);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, _| {
                    format!(
                        "SELECT question_id, prompt, answer_key FROM {quiz_table} \
                         WHERE difficulty BETWEEN {} AND {}",
                        rng.gen_range(1..3),
                        rng.gen_range(3..6)
                    )
                }),
                weight: 1.1,
                rate: Box::new(move |t| gate(t) * cycle(t)),
            });
        }
    }

    // --- The feature release (Figure 1c's "New Release"): a burst of new
    // functionality — live sessions, peer review, certificates — shifting
    // the workload mixture. ---
    let release = cfg.start + FEATURE_RELEASE_DAY * MINUTES_PER_DAY;
    let feature_specs: Vec<(f64, &str)> = vec![
        (6.0, "SELECT session_id, starts_at, capacity FROM live_sessions WHERE course_id = $C AND starts_at > $T ORDER BY starts_at LIMIT 5"),
        (3.5, "SELECT r.review_id, r.score FROM peer_reviews AS r WHERE r.submission_id = $S"),
        (2.0, "INSERT INTO peer_reviews (submission_id, reviewer_id, score, created_at) VALUES ($S, $U, $G, $T)"),
        (2.5, "SELECT cert_id, issued_at FROM certificates WHERE user_id = $U AND course_id = $C"),
        (1.0, "INSERT INTO certificates (user_id, course_id, issued_at) VALUES ($U, $C, $T)"),
        (3.0, "SELECT badge_id, kind FROM badges WHERE user_id = $U ORDER BY earned_at DESC"),
    ];
    for (weight, shape) in feature_specs {
        let gate = step_after(release);
        let cycle = daily_cycle(0.3, 0.5, 1.0);
        let shape = shape.to_string();
        templates.push(TemplateSpec {
            make_sql: Box::new(move |rng, t| {
                shape
                    .replace("$C", &rng.gen_range(1..5000).to_string())
                    .replace("$S", &rng.gen_range(1..2_000_000).to_string())
                    .replace("$U", &rng.gen_range(1..500_000).to_string())
                    .replace("$G", &rng.gen_range(1..11).to_string())
                    .replace("$T", &t.to_string())
            }),
            weight,
            rate: Box::new(move |t| gate(t) * cycle(t)),
        });
    }

    TraceGenerator::new(templates, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cfg(days: u32) -> TraceConfig {
        TraceConfig { start: 0, days, scale: 0.2, seed: 31 }
    }

    #[test]
    fn all_sql_parses() {
        for ev in generator(cfg(40)).take(5000) {
            qb_sqlparse::parse_statement(&ev.sql)
                .unwrap_or_else(|e| panic!("unparseable `{}`: {e}", ev.sql));
        }
    }

    #[test]
    fn distinct_templates_grow_over_time() {
        // Count distinct templates (via real templating) by day 4 vs day 40.
        let mut by_day4 = HashSet::new();
        let mut by_day40 = HashSet::new();
        for ev in generator(cfg(40)) {
            let stmt = qb_sqlparse::parse_statement(&ev.sql).expect("valid SQL");
            let templ = qb_preprocessor::templatize(&stmt).text;
            if ev.minute < 4 * MINUTES_PER_DAY {
                by_day4.insert(templ.clone());
            }
            by_day40.insert(templ);
        }
        assert!(
            by_day40.len() >= by_day4.len() + 10,
            "workload evolution: {} → {}",
            by_day4.len(),
            by_day40.len()
        );
    }

    #[test]
    fn feature_release_adds_burst_of_new_queries() {
        let release = FEATURE_RELEASE_DAY * MINUTES_PER_DAY;
        let mut seen_before = false;
        let mut seen_after = false;
        for ev in generator(cfg(35)) {
            if ev.sql.contains("live_sessions") {
                if ev.minute < release {
                    seen_before = true;
                } else {
                    seen_after = true;
                }
            }
        }
        assert!(!seen_before, "feature queries must not appear before the release");
        assert!(seen_after, "feature queries must appear after the release");
    }
}
