//! The noisy composite workload of Appendix D (Figure 17).
//!
//! "We constructed a synthetic workload trace that consists of benchmarks
//! from the OLTP-Bench testbed ... executed consecutively with varying
//! average arrival rates: Wikipedia, TATP, YCSB, Smallbank, TPCC, Twitter,
//! Epinions, and Voter. Each benchmark is executed for 10 hours. We add
//! white noise to the arrival rate that has a variance set to be 50% of its
//! mean. We also inject random anomalies (i.e., spikes)."
//!
//! Each phase has a disjoint template set, so every switch floods QB5000
//! with previously-unseen templates — the trigger for early re-clustering
//! (§5.2).

use rand::Rng;

use crate::trace::{TemplateSpec, TraceConfig, TraceGenerator};
use qb_timeseries::{Minute, MINUTES_PER_HOUR};

/// Phase length: 10 hours per benchmark.
pub const PHASE_MINUTES: i64 = 10 * MINUTES_PER_HOUR;

/// The eight benchmarks, in execution order, with their mean arrival rates
/// (relative units — "varying average arrival rates").
pub const BENCHMARKS: [(&str, f64); 8] = [
    ("wikipedia", 1.0),
    ("tatp", 1.8),
    ("ycsb", 2.5),
    ("smallbank", 0.8),
    ("tpcc", 1.4),
    ("twitter", 2.2),
    ("epinions", 0.6),
    ("voter", 3.0),
];

/// Deterministic per-minute white noise in `[-1, 1]` (splitmix64 hash of
/// the minute), so the rate function stays a pure `Fn`.
fn noise(t: Minute, salt: u64) -> f64 {
    let mut z = (t as u64).wrapping_add(salt).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Phase gate with noise and injected spikes. `phase` indexes BENCHMARKS.
fn phase_rate(start: Minute, phase: usize, mean: f64) -> crate::pattern::RateFn {
    Box::new(move |t| {
        let begin = start + phase as i64 * PHASE_MINUTES;
        let end = begin + PHASE_MINUTES;
        if t < begin || t >= end {
            return 0.0;
        }
        // White noise with std ≈ 0.707·mean ⇒ variance 0.5·mean² — the
        // paper says variance = 50 % of the mean; either reading produces a
        // visibly noisy series, we use ±70 % uniform jitter.
        let jitter = 1.0 + 0.7 * noise(t, phase as u64);
        // Injected anomalies: ~2 % of minutes carry an 8× spike, in
        // short bursts of a few consecutive minutes.
        let spike_roll = noise(t.div_euclid(3), 0xA50 + phase as u64);
        let spike = if spike_roll > 0.96 { 8.0 } else { 1.0 };
        (mean * jitter * spike).max(0.0)
    })
}

/// Per-benchmark template shapes (parameter markers get filled per event).
fn benchmark_templates(name: &str) -> Vec<(f64, String)> {
    let t = |w: f64, s: &str| (w, s.to_string());
    match name {
        "wikipedia" => vec![
            t(10.0, "SELECT page_id, title FROM page WHERE page_id = $1"),
            t(6.0, "SELECT rev_id, rev_text FROM revision WHERE page_id = $1 ORDER BY rev_id DESC LIMIT 1"),
            t(2.0, "SELECT user_id, user_name FROM wikiuser WHERE user_id = $1"),
            t(0.8, "INSERT INTO revision (page_id, user_id, rev_text, created_at) VALUES ($1, $2, 'rev-$3', $4)"),
            t(0.5, "UPDATE watchlist SET notified = TRUE WHERE user_id = $1 AND page_id = $2"),
        ],
        "tatp" => vec![
            t(12.0, "SELECT sub_id, vlr_location FROM subscriber WHERE sub_id = $1"),
            t(5.0, "SELECT cf.numberx FROM call_forwarding AS cf WHERE cf.sub_id = $1 AND cf.start_time <= $2"),
            t(2.0, "UPDATE subscriber SET vlr_location = $1 WHERE sub_id = $2"),
            t(0.7, "INSERT INTO call_forwarding (sub_id, start_time, end_time, numberx) VALUES ($1, $2, $3, 'n-$4')"),
            t(0.4, "DELETE FROM call_forwarding WHERE sub_id = $1 AND start_time = $2"),
        ],
        "ycsb" => vec![
            t(14.0, "SELECT f0, f1, f2 FROM usertable WHERE ycsb_key = $1"),
            t(4.0, "UPDATE usertable SET f0 = 'v-$1' WHERE ycsb_key = $2"),
            t(1.5, "INSERT INTO usertable (ycsb_key, f0, f1, f2) VALUES ($1, 'a-$2', 'b-$3', 'c-$4')"),
            t(2.0, "SELECT ycsb_key, f0 FROM usertable WHERE ycsb_key BETWEEN $1 AND $2 LIMIT 50"),
        ],
        "smallbank" => vec![
            t(8.0, "SELECT bal FROM savings WHERE custid = $1"),
            t(8.0, "SELECT bal FROM checking WHERE custid = $1"),
            t(3.0, "UPDATE checking SET bal = bal - $1 WHERE custid = $2"),
            t(3.0, "UPDATE savings SET bal = bal + $1 WHERE custid = $2"),
            t(1.0, "SELECT custid, name FROM accounts WHERE name = 'cust-$1'"),
        ],
        "tpcc" => vec![
            t(6.0, "SELECT w_tax, w_name FROM warehouse WHERE w_id = $1"),
            t(6.0, "SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2"),
            t(5.0, "SELECT i_price, i_name FROM item WHERE i_id = $1"),
            t(4.0, "UPDATE stock SET s_quantity = s_quantity - $1 WHERE s_i_id = $2 AND s_w_id = $3"),
            t(3.0, "INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id, ol_quantity) VALUES ($1, $2, $3, $4, $5, $6)"),
            t(2.0, "SELECT c_balance, c_credit FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3"),
        ],
        "twitter" => vec![
            t(12.0, "SELECT tweet_id, body FROM tweets WHERE uid = $1 ORDER BY created_at DESC LIMIT 20"),
            t(8.0, "SELECT f2 FROM follows WHERE f1 = $1 LIMIT 100"),
            t(3.0, "INSERT INTO tweets (uid, body, created_at) VALUES ($1, 'tw-$2', $3)"),
            t(1.0, "INSERT INTO follows (f1, f2, created_at) VALUES ($1, $2, $3)"),
            t(2.0, "SELECT uname FROM twitter_user WHERE uid = $1"),
        ],
        "epinions" => vec![
            t(7.0, "SELECT i_title FROM epinions_item WHERE i_id = $1"),
            t(5.0, "SELECT rating FROM review WHERE u_id = $1 AND i_id = $2"),
            t(4.0, "SELECT AVG(rating) FROM review WHERE i_id = $1"),
            t(1.0, "INSERT INTO review (u_id, i_id, rating, rank) VALUES ($1, $2, $3, $4)"),
            t(1.5, "SELECT t2 FROM trust WHERE t1 = $1"),
        ],
        "voter" => vec![
            t(15.0, "INSERT INTO votes (phone_number, state, contestant_number, created_at) VALUES ($1, 'PA', $2, $3)"),
            t(4.0, "SELECT COUNT(*) FROM votes WHERE phone_number = $1"),
            t(2.0, "SELECT contestant_number, contestant_name FROM contestants WHERE contestant_number = $1"),
        ],
        other => unreachable!("unknown benchmark {other}"),
    }
}

/// Builds the 8-phase noisy composite generator. The trace naturally spans
/// `8 × 10h`; `cfg.days` caps it if shorter.
pub fn generator(cfg: TraceConfig) -> TraceGenerator {
    let mut templates = Vec::new();
    for (phase, (name, mean)) in BENCHMARKS.iter().enumerate() {
        for (weight, shape) in benchmark_templates(name) {
            let rate = phase_rate(cfg.start, phase, *mean);
            let shape_c = shape.clone();
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, t| {
                    shape_c
                        .replace("$1", &rng.gen_range(1..1_000_000).to_string())
                        .replace("$2", &rng.gen_range(1..100_000).to_string())
                        .replace("$3", &rng.gen_range(1..10_000).to_string())
                        .replace("$4", &rng.gen_range(1..1_000).to_string())
                        .replace("$5", &rng.gen_range(1..100).to_string())
                        .replace("$6", &rng.gen_range(1..10).to_string())
                        .replace("$T", &t.to_string())
                }),
                weight,
                rate,
            });
        }
    }
    TraceGenerator::new(templates, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        // 80 hours = all 8 phases.
        TraceConfig { start: 0, days: 4, scale: 0.3, seed: 41 }
    }

    #[test]
    fn all_sql_parses() {
        for ev in generator(cfg()).take(8000) {
            qb_sqlparse::parse_statement(&ev.sql)
                .unwrap_or_else(|e| panic!("unparseable `{}`: {e}", ev.sql));
        }
    }

    #[test]
    fn phases_are_disjoint() {
        for ev in generator(cfg()) {
            let phase = (ev.minute / PHASE_MINUTES) as usize;
            if phase >= BENCHMARKS.len() {
                continue;
            }
            let (name, _) = BENCHMARKS[phase];
            let shapes: Vec<String> =
                benchmark_templates(name).into_iter().map(|(_, s)| s).collect();
            let table_hit = shapes.iter().any(|s| {
                // Match on the shape prefix up to the first parameter
                // marker; tables and verbs are phase-unique.
                let prefix = s.split('$').next().unwrap_or("");
                ev.sql.starts_with(prefix.trim_end())
            });
            assert!(table_hit, "minute {} event `{}` not from phase {}", ev.minute, ev.sql, name);
        }
    }

    #[test]
    fn noise_function_deterministic_and_bounded() {
        for t in 0..5000 {
            let n = noise(t, 7);
            assert!((-1.0..=1.0).contains(&n));
            assert_eq!(n, noise(t, 7));
        }
    }

    #[test]
    fn rates_vary_minute_to_minute() {
        let r = phase_rate(0, 0, 10.0);
        let values: Vec<f64> = (0..60).map(r).collect();
        let distinct = values.iter().map(|v| (v * 1e6) as i64).collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 30, "white noise should vary: {distinct:?}");
    }

    #[test]
    fn spikes_present_but_rare() {
        let r = phase_rate(0, 2, 10.0);
        let n = PHASE_MINUTES;
        let base_max = 10.0 * 1.7; // mean × max jitter
        let spikes = (2 * PHASE_MINUTES..2 * PHASE_MINUTES + n)
            .filter(|&t| r(t) > base_max * 2.0)
            .count();
        assert!(spikes > 0, "expected injected spikes");
        assert!((spikes as f64) < n as f64 * 0.05, "spikes too frequent: {spikes}");
    }

    #[test]
    fn volume_tracks_benchmark_means() {
        // YCSB (mean 2.5) should outweigh Epinions (mean 0.6).
        let mut ycsb = 0u64;
        let mut epinions = 0u64;
        for ev in generator(cfg()) {
            let phase = (ev.minute / PHASE_MINUTES) as usize;
            match phase {
                2 => ycsb += ev.count,
                6 => epinions += ev.count,
                _ => {}
            }
        }
        assert!(ycsb > epinions * 2, "{ycsb} vs {epinions}");
    }
}
