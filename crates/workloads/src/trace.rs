//! Trace-generation machinery shared by the per-application modules.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qb_timeseries::{Minute, MINUTES_PER_DAY};

use crate::pattern::RateFn;

/// One batch of identical query arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEvent {
    /// Arrival minute.
    pub minute: Minute,
    /// The SQL text (with concrete parameters).
    pub sql: String,
    /// How many arrivals of this statement occurred within the minute.
    /// Parameters vary between real invocations; the generator materializes
    /// one representative parameterization per minute to bound allocation.
    pub count: u64,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// First minute of the trace (see `crate`-level epoch note).
    pub start: Minute,
    /// Trace length in days.
    pub days: u32,
    /// Global volume multiplier. 1.0 ≈ the paper's per-day volumes scaled
    /// to laptop runtime; tests use ≪ 1.
    pub scale: f64,
    /// RNG seed (generators are fully deterministic given the config).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { start: 0, days: 7, scale: 1.0, seed: 0xDB }
    }
}

impl TraceConfig {
    /// One past the last minute of the trace.
    pub fn end(&self) -> Minute {
        self.start + self.days as i64 * MINUTES_PER_DAY
    }
}

/// A template the generator can emit: a SQL factory plus its rate shape.
pub struct TemplateSpec {
    /// Produces one concrete SQL string for an arrival at minute `t`.
    pub make_sql: Box<dyn Fn(&mut SmallRng, Minute) -> String + Send + Sync>,
    /// Mean arrivals/minute at rate 1.0 (before pattern & scale).
    pub weight: f64,
    /// The template's arrival-rate pattern.
    pub rate: RateFn,
}

impl TemplateSpec {
    /// Expected arrivals in minute `t` under `scale`.
    pub fn lambda(&self, t: Minute, scale: f64) -> f64 {
        self.weight * (self.rate)(t) * scale
    }
}

/// Draws from a Poisson distribution. Knuth's product method for small λ,
/// a rounded normal approximation above 30 (error ≪ the white noise the
/// traces carry anyway).
pub fn poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as u64
    }
}

/// Streams `QueryEvent`s minute by minute for a set of templates.
pub struct TraceGenerator {
    templates: Vec<TemplateSpec>,
    cfg: TraceConfig,
    rng: SmallRng,
    current_minute: Minute,
    /// Events already produced for the current minute, pending emission.
    pending: Vec<QueryEvent>,
}

impl TraceGenerator {
    pub fn new(templates: Vec<TemplateSpec>, cfg: TraceConfig) -> Self {
        assert!(!templates.is_empty(), "TraceGenerator: no templates");
        assert!(cfg.scale > 0.0, "TraceGenerator: scale must be positive");
        Self {
            templates,
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            current_minute: cfg.start,
            pending: Vec::new(),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Number of distinct template specs.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// The expected (noise-free) total arrival rate at minute `t`, summed
    /// over templates — used by the Figure 1 pattern harness.
    pub fn expected_rate(&self, t: Minute) -> f64 {
        self.templates.iter().map(|s| s.lambda(t, self.cfg.scale)).sum()
    }

    fn fill_minute(&mut self) {
        let t = self.current_minute;
        for spec in &self.templates {
            let lambda = spec.lambda(t, self.cfg.scale);
            let count = poisson(&mut self.rng, lambda);
            if count > 0 {
                let sql = (spec.make_sql)(&mut self.rng, t);
                self.pending.push(QueryEvent { minute: t, sql, count });
            }
        }
        // Emit in insertion order; reverse so `pop` yields FIFO.
        self.pending.reverse();
    }
}

impl Iterator for TraceGenerator {
    type Item = QueryEvent;

    fn next(&mut self) -> Option<QueryEvent> {
        loop {
            if let Some(ev) = self.pending.pop() {
                return Some(ev);
            }
            if self.current_minute >= self.cfg.end() {
                return None;
            }
            self.fill_minute();
            self.current_minute += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_template(weight: f64) -> TemplateSpec {
        TemplateSpec {
            make_sql: Box::new(|rng, _| {
                format!("SELECT x FROM t WHERE id = {}", rng.gen_range(0..1000))
            }),
            weight,
            rate: Box::new(|_| 1.0),
        }
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 30_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda}: sample mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -5.0), 0);
    }

    #[test]
    fn generator_covers_trace_range() {
        let g = TraceGenerator::new(
            vec![constant_template(2.0)],
            TraceConfig { start: 0, days: 1, scale: 1.0, seed: 3 },
        );
        let events: Vec<QueryEvent> = g.collect();
        assert!(!events.is_empty());
        assert!(events.first().map(|e| e.minute).expect("non-empty") >= 0);
        assert!(events.last().map(|e| e.minute).expect("non-empty") < MINUTES_PER_DAY);
        // Total volume ≈ 2/min × 1440 min.
        let total: u64 = events.iter().map(|e| e.count).sum();
        assert!((total as f64 - 2880.0).abs() < 300.0, "{total}");
    }

    #[test]
    fn events_are_time_ordered() {
        let g = TraceGenerator::new(
            vec![constant_template(1.0), constant_template(0.5)],
            TraceConfig { start: 100, days: 1, scale: 1.0, seed: 4 },
        );
        let minutes: Vec<Minute> = g.map(|e| e.minute).collect();
        assert!(minutes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            TraceGenerator::new(
                vec![constant_template(1.0)],
                TraceConfig { start: 0, days: 1, scale: 0.5, seed },
            )
            .map(|e| (e.minute, e.sql, e.count))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn scale_multiplies_volume() {
        let volume = |scale| {
            TraceGenerator::new(
                vec![constant_template(4.0)],
                TraceConfig { start: 0, days: 1, scale, seed: 5 },
            )
            .map(|e| e.count)
            .sum::<u64>() as f64
        };
        let v1 = volume(1.0);
        let v3 = volume(3.0);
        assert!((v3 / v1 - 3.0).abs() < 0.3, "{v1} vs {v3}");
    }

    #[test]
    #[should_panic(expected = "no templates")]
    fn empty_templates_panics() {
        TraceGenerator::new(vec![], TraceConfig::default());
    }
}
