//! # qb-workloads
//!
//! Synthetic trace generators standing in for the paper's three proprietary
//! application traces (§2.1) plus the OLTP-Bench-style noisy composite of
//! Appendix D. Each generator emits a stream of timestamped SQL statements
//! whose *temporal statistics* reproduce the published properties:
//!
//! * **BusTracker** — 24-hour cycles with morning/evening rush-hour peaks,
//!   weekday/weekend modulation (Figure 1a); SELECT-dominated with steady
//!   position-ingest INSERTs (Table 1: ~98 % SELECT).
//! * **Admissions** — volume growth toward the Dec 1 / Dec 15 application
//!   deadlines, repeating annually, with post-deadline collapse and
//!   review-season activity (Figure 1b); ≥ 99 % SELECT.
//! * **MOOC** — workload evolution: new template cohorts appear when
//!   "features ship" or instructors launch courses (Figure 1c); the
//!   distinct-template count grows over the trace.
//! * **Noisy composite** — eight phases with disjoint template sets
//!   switching every 10 hours, 50 %-of-mean white noise, injected spikes
//!   (Appendix D / Figure 17).
//! * **Churn scenarios** — evolving-workload template churn over a stable
//!   base population: schema-migration drift, feature-launch bursts,
//!   tenant-onboarding waves, flash-crowd spikes, and seasonal+trend
//!   mixes ([`churn::ChurnScenario`]), exercising the cold-start path.
//!
//! Volumes are driven by seeded Poisson sampling around deterministic rate
//! functions, so traces are reproducible and the per-minute *shape* is
//! independent of the `scale` knob that keeps experiment runtimes sane
//! (DESIGN.md, "Scaled volumes").

pub mod admissions;
pub mod bustracker;
pub mod churn;
pub mod faults;
pub mod mooc;
pub mod noisy;
pub mod pattern;
pub mod trace;

pub use churn::{ChurnScenario, CHURN_SCENARIOS};
pub use faults::{FaultInjector, FaultPlan, FaultStats, StorageFaultKind, StorageFaultPlan};
pub use pattern::{
    daily_cycle, deadline_growth, pulse_between, ramp_between, step_after, weekday_factor, RateFn,
};
pub use trace::{poisson, QueryEvent, TemplateSpec, TraceConfig, TraceGenerator};

use qb_timeseries::Minute;

/// The three real-world applications of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    Admissions,
    BusTracker,
    Mooc,
}

impl Workload {
    pub fn name(self) -> &'static str {
        match self {
            Workload::Admissions => "Admissions",
            Workload::BusTracker => "BusTracker",
            Workload::Mooc => "MOOC",
        }
    }

    /// Number of schema tables (Table 1: 216 / 95 / 454). The generators
    /// reference a representative subset; this constant reports the
    /// modeled application's full schema size for the Table 1 harness.
    pub fn num_tables(self) -> usize {
        match self {
            Workload::Admissions => 216,
            Workload::BusTracker => 95,
            Workload::Mooc => 454,
        }
    }

    /// Trace length in days used by the paper (Table 1: 507 / 58 / 85).
    pub fn paper_trace_days(self) -> u32 {
        match self {
            Workload::Admissions => 507,
            Workload::BusTracker => 58,
            Workload::Mooc => 85,
        }
    }

    /// Builds the generator for this workload.
    pub fn generator(self, cfg: TraceConfig) -> TraceGenerator {
        match self {
            Workload::Admissions => admissions::generator(cfg),
            Workload::BusTracker => bustracker::generator(cfg),
            Workload::Mooc => mooc::generator(cfg),
        }
    }
}

/// Simulation epoch bookkeeping: the trace epoch (minute 0) is
/// **2016-01-01 00:00** on a 365-day-year calendar (leap days ignored — the
/// rate functions only need day-of-year periodicity).
pub const MINUTES_PER_YEAR: i64 = 365 * qb_timeseries::MINUTES_PER_DAY;

/// Day-of-year in `[0, 365)` for a minute timestamp.
pub fn day_of_year(t: Minute) -> f64 {
    let m = t.rem_euclid(MINUTES_PER_YEAR);
    m as f64 / qb_timeseries::MINUTES_PER_DAY as f64
}

/// Hour-of-day in `[0, 24)`.
pub fn hour_of_day(t: Minute) -> f64 {
    let m = t.rem_euclid(qb_timeseries::MINUTES_PER_DAY);
    m as f64 / 60.0
}

/// Day-of-week in `[0, 7)`; day 0 (2016-01-01) is treated as a Friday.
pub fn day_of_week(t: Minute) -> u32 {
    let day = t.div_euclid(qb_timeseries::MINUTES_PER_DAY);
    ((day + 4).rem_euclid(7)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_helpers() {
        assert_eq!(hour_of_day(0), 0.0);
        assert_eq!(hour_of_day(90), 1.5);
        assert_eq!(day_of_year(0), 0.0);
        assert!((day_of_year(MINUTES_PER_YEAR + 1440) - 1.0).abs() < 1e-9);
        // Day 0 is Friday (4); day 1 Saturday (5); day 3 Monday (0).
        assert_eq!(day_of_week(0), 4);
        assert_eq!(day_of_week(1440), 5);
        assert_eq!(day_of_week(3 * 1440), 0);
    }

    #[test]
    fn workload_metadata() {
        assert_eq!(Workload::Admissions.num_tables(), 216);
        assert_eq!(Workload::BusTracker.paper_trace_days(), 58);
        assert_eq!(Workload::Mooc.name(), "MOOC");
    }
}
