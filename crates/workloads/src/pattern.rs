//! Composable arrival-rate pattern functions (§2.2).
//!
//! A rate function maps a minute timestamp to an expected queries-per-minute
//! intensity; generators multiply a template's weight by its group's rate
//! and Poisson-sample the actual count.

use qb_timeseries::Minute;

use crate::{day_of_week, day_of_year, hour_of_day};

/// A deterministic arrival-rate intensity function.
pub type RateFn = Box<dyn Fn(Minute) -> f64 + Send + Sync>;

/// The human daily cycle of Figure 1a: a low overnight base with Gaussian
/// bumps at the morning and evening rush hours.
///
/// `base` is the overnight floor (relative units); the peaks reach
/// `base + am + pm` contributions.
pub fn daily_cycle(base: f64, am_peak: f64, pm_peak: f64) -> impl Fn(Minute) -> f64 {
    move |t| {
        let h = hour_of_day(t);
        let bump = |center: f64, width: f64, height: f64| {
            let d = (h - center).abs().min(24.0 - (h - center).abs());
            height * (-d * d / (2.0 * width * width)).exp()
        };
        // Broad daytime swell plus the two rush peaks.
        base + bump(13.0, 4.5, base * 1.5) + bump(8.0, 1.2, am_peak) + bump(17.5, 1.5, pm_peak)
    }
}

/// Weekday/weekend modulation: weekdays 1.0, weekends `weekend` (< 1 for
/// commuter apps like BusTracker).
pub fn weekday_factor(weekend: f64) -> impl Fn(Minute) -> f64 {
    move |t| {
        let dow = day_of_week(t);
        if dow == 5 || dow == 6 {
            weekend
        } else {
            1.0
        }
    }
}

/// The growth-and-spike pattern of Figure 1b: volume rises exponentially as
/// a recurring annual deadline (day-of-year `deadline_doy`) approaches,
/// spikes on the final days, then collapses.
///
/// * `lead_days` — how long before the deadline growth becomes visible;
/// * `growth` — multiplier at the deadline relative to the base (the
///   Admissions trace grows ~10× in the final two days).
pub fn deadline_growth(deadline_doy: f64, lead_days: f64, growth: f64) -> impl Fn(Minute) -> f64 {
    move |t| {
        let doy = day_of_year(t);
        // Days until the deadline, wrapping the year boundary.
        let mut until = deadline_doy - doy;
        if until < -2.0 {
            until += 365.0;
        }
        if until > lead_days || until < -2.0 {
            return 1.0;
        }
        if until >= 0.0 {
            // Exponential ramp: 1 at lead_days out, `growth` at zero.
            let frac = 1.0 - until / lead_days;
            growth.powf(frac * frac)
        } else {
            // Post-deadline collapse over two days.
            1.0 + (growth - 1.0) * (1.0 + until / 2.0).max(0.0) * 0.2
        }
    }
}

/// A one-off step: 0 before `start`, 1 after. Models MOOC feature releases
/// that activate new template cohorts.
pub fn step_after(start: Minute) -> impl Fn(Minute) -> f64 {
    move |t| {
        if t >= start {
            1.0
        } else {
            0.0
        }
    }
}

/// A linear ramp: 0 before `start`, rising linearly to 1 at `end`, 1 after.
/// Models gradual drift — schema migrations shift traffic from an old
/// template to its successor over a cut-over window rather than at a cliff.
/// Degenerates to [`step_after`] when `end <= start`.
pub fn ramp_between(start: Minute, end: Minute) -> impl Fn(Minute) -> f64 {
    let span = (end - start).max(1) as f64;
    move |t| {
        if t < start {
            0.0
        } else if t >= end {
            1.0
        } else {
            (t - start) as f64 / span
        }
    }
}

/// A rectangular pulse: 1 inside `[start, end)`, 0 outside. Models
/// flash-crowd spikes — templates that exist only for the duration of an
/// incident or a short-lived promotion.
pub fn pulse_between(start: Minute, end: Minute) -> impl Fn(Minute) -> f64 {
    move |t| {
        if t >= start && t < end {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_timeseries::MINUTES_PER_DAY;

    #[test]
    fn daily_cycle_peaks_at_rush_hours() {
        let rate = daily_cycle(10.0, 50.0, 40.0);
        let at = |h: f64| rate((h * 60.0) as Minute);
        assert!(at(8.0) > at(3.0) * 3.0, "morning rush should dominate the night");
        assert!(at(17.5) > at(3.0) * 2.5, "evening rush should dominate the night");
        assert!(at(8.0) > at(12.0), "rush peak exceeds midday swell");
    }

    #[test]
    fn daily_cycle_is_24h_periodic() {
        let rate = daily_cycle(5.0, 20.0, 15.0);
        for m in [0, 123, 456, 1000] {
            assert!((rate(m) - rate(m + MINUTES_PER_DAY)).abs() < 1e-9);
        }
    }

    #[test]
    fn weekday_factor_drops_weekends() {
        let f = weekday_factor(0.5);
        // Day 0 = Friday, day 1 = Saturday, day 2 = Sunday, day 3 = Monday.
        assert_eq!(f(0), 1.0);
        assert_eq!(f(MINUTES_PER_DAY), 0.5);
        assert_eq!(f(2 * MINUTES_PER_DAY), 0.5);
        assert_eq!(f(3 * MINUTES_PER_DAY), 1.0);
    }

    #[test]
    fn deadline_growth_ramps_and_collapses() {
        // Deadline at day 100; 30-day lead; 10x growth.
        let g = deadline_growth(100.0, 30.0, 10.0);
        let at_day = |d: f64| g((d * MINUTES_PER_DAY as f64) as Minute);
        assert_eq!(at_day(50.0), 1.0, "far before: flat");
        assert!(at_day(95.0) > at_day(85.0), "growth accelerates");
        assert!(at_day(99.9) > 8.0, "near-deadline spike");
        assert!(at_day(103.5) < 1.5, "post-deadline collapse");
        // Annual repetition.
        assert!((at_day(99.9 + 365.0) - at_day(99.9)).abs() < 1e-6);
    }

    #[test]
    fn step_after_activates() {
        let s = step_after(1000);
        assert_eq!(s(999), 0.0);
        assert_eq!(s(1000), 1.0);
    }

    #[test]
    fn ramp_between_interpolates() {
        let r = ramp_between(100, 200);
        assert_eq!(r(99), 0.0);
        assert_eq!(r(100), 0.0);
        assert!((r(150) - 0.5).abs() < 1e-9);
        assert_eq!(r(200), 1.0);
        assert_eq!(r(10_000), 1.0);
        // Degenerate window behaves as a step.
        let s = ramp_between(100, 100);
        assert_eq!(s(99), 0.0);
        assert_eq!(s(100), 1.0);
    }

    #[test]
    fn pulse_between_is_rectangular() {
        let p = pulse_between(50, 60);
        assert_eq!(p(49), 0.0);
        assert_eq!(p(50), 1.0);
        assert_eq!(p(59), 1.0);
        assert_eq!(p(60), 0.0);
    }
}
