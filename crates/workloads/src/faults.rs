//! Deterministic fault injection for workload streams.
//!
//! Production query traces are not clean: collectors truncate statements,
//! buffers replay duplicates, clock skew reorders or back-dates arrivals,
//! collection gaps drop whole minutes, and incidents spike arrival counts.
//! [`FaultInjector`] wraps any [`QueryEvent`] iterator — every generator in
//! this crate — and injects those corruptions at configurable rates from a
//! seeded RNG, so a chaos run is exactly reproducible.
//!
//! The injector also keeps [`FaultStats`], the ground truth a resilience
//! test needs to check accounting identities (e.g. everything emitted was
//! either ingested or quarantined downstream).

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qb_timeseries::Minute;

use crate::trace::QueryEvent;

/// Per-event fault probabilities (each in `[0, 1]`), plus shape knobs.
///
/// All rates default to zero: a default plan is a passthrough.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed; the same plan over the same stream replays identically.
    pub seed: u64,
    /// Corrupt the SQL text (dropped characters, unbalanced quotes,
    /// keyword damage) so it no longer parses.
    pub malformed_sql: f64,
    /// Truncate the SQL text at an arbitrary character boundary, as a
    /// collector with a too-small capture buffer would.
    pub truncated_sql: f64,
    /// Re-emit the event a second time (replayed delivery).
    pub duplicate: f64,
    /// Hold the event back and deliver it after a few later events, so its
    /// timestamp is out of order with respect to the stream position.
    pub out_of_order: f64,
    /// Rewrite the timestamp a random number of minutes into the past
    /// (clock skew / backwards clock).
    pub backdate: f64,
    /// Probability that a given minute of the trace is dropped entirely
    /// (collection gap); every event in that minute disappears.
    pub dropped_minute: f64,
    /// Multiply the arrival count by [`FaultPlan::spike_factor`].
    pub arrival_spike: f64,
    /// Count multiplier for spiked events.
    pub spike_factor: u64,
    /// Maximum minutes a backdated timestamp is moved into the past.
    pub max_backdate: i64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            malformed_sql: 0.0,
            truncated_sql: 0.0,
            duplicate: 0.0,
            out_of_order: 0.0,
            backdate: 0.0,
            dropped_minute: 0.0,
            arrival_spike: 0.0,
            spike_factor: 20,
            max_backdate: 45,
        }
    }
}

impl FaultPlan {
    /// A passthrough plan (all rates zero).
    pub fn none(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// A plan with every fault class enabled, scaled by `intensity` — the
    /// escalation knob chaos suites sweep. `intensity = 1.0` is the §7.6
    /// chaos baseline: 5 % malformed SQL, 2 % duplicates, 1 % out-of-order.
    pub fn with_intensity(seed: u64, intensity: f64) -> Self {
        assert!(intensity >= 0.0, "intensity must be non-negative");
        let p = |base: f64| (base * intensity).min(0.9);
        Self {
            seed,
            malformed_sql: p(0.05),
            truncated_sql: p(0.01),
            duplicate: p(0.02),
            out_of_order: p(0.01),
            backdate: p(0.005),
            dropped_minute: p(0.01),
            arrival_spike: p(0.002),
            ..Self::default()
        }
    }

    /// Wraps a stream with this plan.
    pub fn inject<I: Iterator<Item = QueryEvent>>(self, inner: I) -> FaultInjector<I> {
        FaultInjector::new(inner, self)
    }
}

/// Ground-truth corruption counters, filled as the stream is consumed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Events pulled from the wrapped generator.
    pub events_in: u64,
    /// Events emitted downstream (duplicates add, drops subtract).
    pub events_out: u64,
    /// Arrivals emitted downstream (sum of emitted `count`s).
    pub arrivals_out: u64,
    pub malformed: u64,
    pub truncated: u64,
    pub duplicated: u64,
    pub reordered: u64,
    pub backdated: u64,
    /// Events swallowed by dropped minutes.
    pub dropped_events: u64,
    /// Distinct minutes dropped.
    pub dropped_minutes: u64,
    pub spiked: u64,
}

impl FaultStats {
    /// Upper bound on statements the pipeline may legitimately reject
    /// (quarantine) from this stream. Only corrupted SQL can fail to
    /// parse — `malformed` and `truncated` events — and each duplication
    /// re-emits at most one copy of an already-corrupted event, so:
    /// `rejected ≤ malformed + truncated + duplicated`. The simulation
    /// harness asserts this bound ("quarantine never drops more than the
    /// fault plan injected").
    pub fn max_possible_rejections(&self) -> u64 {
        self.malformed + self.truncated + self.duplicated
    }
}

/// Storage-level fault classes: what a crash or a misbehaving disk leaves
/// of a write that was in flight.
///
/// Where [`FaultPlan`] corrupts the *query stream* a pipeline ingests,
/// these corrupt the *byte image* a durable pipeline leaves on disk — the
/// WAL tail or a snapshot temp file. [`StorageFaultPlan::apply`] turns a
/// (durable prefix, in-flight write) pair into the post-crash file image
/// for one of these kinds, deterministically from a seed, so durability
/// tests can fuzz torn and corrupted tails reproducibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFaultKind {
    /// The write stopped partway: an arbitrary strict prefix of the new
    /// bytes reached the disk (the classic torn write).
    TornWrite,
    /// The write was cut just short: all but the last few bytes landed.
    ShortWrite,
    /// The write landed whole but one bit flipped in flight (media or bus
    /// corruption).
    BitFlip,
    /// The process died after issuing the write but before fsync; the page
    /// cache was lost, so none of the new bytes survived.
    CrashBeforeFsync,
    /// The process died right after fsync; the new bytes are fully
    /// durable, the process state is gone.
    CrashAfterFsync,
}

impl StorageFaultKind {
    /// Every storage fault kind, for test matrices.
    pub const ALL: [StorageFaultKind; 5] = [
        StorageFaultKind::TornWrite,
        StorageFaultKind::ShortWrite,
        StorageFaultKind::BitFlip,
        StorageFaultKind::CrashBeforeFsync,
        StorageFaultKind::CrashAfterFsync,
    ];
}

/// A seeded generator of post-crash storage images; see
/// [`StorageFaultKind`].
#[derive(Debug, Clone)]
pub struct StorageFaultPlan {
    rng: SmallRng,
    /// Faults applied so far, by construction order.
    pub applied: u64,
}

impl StorageFaultPlan {
    /// The same seed over the same inputs produces the same images.
    pub fn new(seed: u64) -> Self {
        Self { rng: SmallRng::seed_from_u64(seed ^ 0x5704A6E), applied: 0 }
    }

    /// The file image left behind when `write` (appended after the already
    /// durable `durable` bytes) is interrupted by `kind`.
    pub fn apply(&mut self, kind: StorageFaultKind, durable: &[u8], write: &[u8]) -> Vec<u8> {
        self.applied += 1;
        let mut image = durable.to_vec();
        match kind {
            StorageFaultKind::TornWrite => {
                // A strict prefix: at least one byte missing, possibly all.
                let kept = if write.is_empty() { 0 } else { self.rng.gen_range(0..write.len()) };
                image.extend_from_slice(&write[..kept]);
            }
            StorageFaultKind::ShortWrite => {
                let lost = if write.is_empty() {
                    0
                } else {
                    self.rng.gen_range(1..=write.len().min(8))
                };
                image.extend_from_slice(&write[..write.len() - lost]);
            }
            StorageFaultKind::BitFlip => {
                image.extend_from_slice(write);
                if !write.is_empty() {
                    let bit = self.rng.gen_range(0..write.len() * 8);
                    image[durable.len() + bit / 8] ^= 1 << (bit % 8);
                }
            }
            StorageFaultKind::CrashBeforeFsync => {} // the write never lands
            StorageFaultKind::CrashAfterFsync => image.extend_from_slice(write),
        }
        image
    }
}

/// How many later events an out-of-order event is held behind.
const REORDER_DELAY: u32 = 3;

/// A fault-injecting adapter over any [`QueryEvent`] stream.
pub struct FaultInjector<I: Iterator<Item = QueryEvent>> {
    inner: I,
    plan: FaultPlan,
    rng: SmallRng,
    /// Events ready to emit, in emission order.
    ready: VecDeque<QueryEvent>,
    /// Held-back (out-of-order) events awaiting release.
    delayed: VecDeque<QueryEvent>,
    /// Inner events consumed since the last delayed release.
    since_release: u32,
    /// Decision cache for the current minute's drop fault.
    minute_state: Option<(Minute, bool)>,
    stats: FaultStats,
}

impl<I: Iterator<Item = QueryEvent>> FaultInjector<I> {
    pub fn new(inner: I, plan: FaultPlan) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed ^ 0xFA17);
        Self {
            inner,
            plan,
            rng,
            ready: VecDeque::new(),
            delayed: VecDeque::new(),
            since_release: 0,
            minute_state: None,
            stats: FaultStats::default(),
        }
    }

    /// Corruption counters so far. Final only once the stream is drained.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Whether this minute falls into a collection gap (decision made once
    /// per distinct minute, so a gap swallows the *whole* minute).
    fn minute_dropped(&mut self, minute: Minute) -> bool {
        match self.minute_state {
            Some((m, dropped)) if m == minute => dropped,
            _ => {
                let dropped =
                    self.plan.dropped_minute > 0.0 && self.rng.gen_bool(self.plan.dropped_minute);
                if dropped {
                    self.stats.dropped_minutes += 1;
                }
                self.minute_state = Some((minute, dropped));
                dropped
            }
        }
    }

    /// Damages SQL so it no longer parses. Char-boundary safe.
    fn corrupt_sql(&mut self, sql: &str) -> String {
        let boundaries: Vec<usize> = sql.char_indices().map(|(i, _)| i).collect();
        match self.rng.gen_range(0..4u32) {
            // Chop mid-statement.
            0 if boundaries.len() > 2 => {
                let cut = boundaries[self.rng.gen_range(1..boundaries.len())];
                sql[..cut].to_string()
            }
            // Unbalanced quote.
            1 => format!("{sql} '"),
            // Keyword damage: drop the first character of the statement.
            2 => sql
                .char_indices()
                .nth(1)
                .map(|(i, _)| sql[i..].to_string())
                .unwrap_or_default(),
            // Binary garbage prepended (a torn collector buffer).
            _ => format!("\u{0}\u{1}\u{fffd}{sql}"),
        }
    }

    fn truncate_sql(&mut self, sql: &str) -> String {
        let boundaries: Vec<usize> = sql.char_indices().map(|(i, _)| i).collect();
        if boundaries.len() < 2 {
            return String::new();
        }
        let cut = boundaries[self.rng.gen_range(1..boundaries.len())];
        sql[..cut].to_string()
    }
}

impl<I: Iterator<Item = QueryEvent>> Iterator for FaultInjector<I> {
    type Item = QueryEvent;

    fn next(&mut self) -> Option<QueryEvent> {
        loop {
            if let Some(ev) = self.ready.pop_front() {
                self.stats.events_out += 1;
                self.stats.arrivals_out += ev.count;
                return Some(ev);
            }

            let Some(mut ev) = self.inner.next() else {
                // Source exhausted: flush any still-held reordered events.
                if let Some(d) = self.delayed.pop_front() {
                    self.ready.push_back(d);
                    continue;
                }
                return None;
            };
            self.stats.events_in += 1;

            if self.minute_dropped(ev.minute) {
                self.stats.dropped_events += 1;
                continue;
            }

            // Content faults (mutually exclusive so the counters partition
            // the corrupted events).
            if self.plan.malformed_sql > 0.0 && self.rng.gen_bool(self.plan.malformed_sql) {
                ev.sql = self.corrupt_sql(&ev.sql);
                self.stats.malformed += 1;
            } else if self.plan.truncated_sql > 0.0 && self.rng.gen_bool(self.plan.truncated_sql)
            {
                ev.sql = self.truncate_sql(&ev.sql);
                self.stats.truncated += 1;
            }

            if self.plan.arrival_spike > 0.0 && self.rng.gen_bool(self.plan.arrival_spike) {
                ev.count = ev.count.saturating_mul(self.plan.spike_factor.max(1));
                self.stats.spiked += 1;
            }

            if self.plan.backdate > 0.0 && self.rng.gen_bool(self.plan.backdate) {
                ev.minute -= self.rng.gen_range(1..=self.plan.max_backdate.max(1));
                self.stats.backdated += 1;
            }

            if self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate) {
                self.ready.push_back(ev.clone());
                self.stats.duplicated += 1;
            }

            if self.plan.out_of_order > 0.0 && self.rng.gen_bool(self.plan.out_of_order) {
                self.delayed.push_back(ev);
                self.stats.reordered += 1;
            } else {
                self.ready.push_back(ev);
            }

            // Release a held event after enough of the stream has passed it.
            self.since_release += 1;
            if self.since_release >= REORDER_DELAY {
                if let Some(d) = self.delayed.pop_front() {
                    self.ready.push_back(d);
                }
                self.since_release = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use crate::Workload;

    fn base_stream() -> impl Iterator<Item = QueryEvent> {
        Workload::BusTracker.generator(TraceConfig {
            start: 0,
            days: 1,
            scale: 0.02,
            seed: 11,
        })
    }

    #[test]
    fn zero_plan_is_passthrough() {
        let clean: Vec<QueryEvent> = base_stream().collect();
        let mut inj = FaultPlan::none(5).inject(base_stream());
        let faulted: Vec<QueryEvent> = inj.by_ref().collect();
        assert_eq!(clean, faulted);
        let s = inj.stats();
        assert_eq!(s.events_in, s.events_out);
        assert_eq!(s.malformed + s.duplicated + s.reordered + s.dropped_events, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || -> Vec<QueryEvent> {
            FaultPlan::with_intensity(42, 1.0).inject(base_stream()).collect()
        };
        assert_eq!(run(), run());
        let other: Vec<QueryEvent> =
            FaultPlan::with_intensity(43, 1.0).inject(base_stream()).collect();
        assert_ne!(run(), other, "different seeds must corrupt differently");
    }

    #[test]
    fn fault_rates_are_respected() {
        let mut inj = FaultPlan::with_intensity(7, 1.0).inject(base_stream());
        let n = inj.by_ref().count() as f64;
        let s = inj.stats().clone();
        assert!(n > 1_000.0, "need a substantial stream, got {n}");
        let frac = s.malformed as f64 / s.events_in as f64;
        assert!((0.03..0.07).contains(&frac), "malformed fraction {frac}");
        let dup = s.duplicated as f64 / s.events_in as f64;
        assert!((0.01..0.03).contains(&dup), "duplicate fraction {dup}");
        assert!(s.reordered > 0 && s.dropped_events > 0 && s.backdated > 0);
    }

    #[test]
    fn event_accounting_balances() {
        let mut inj = FaultPlan::with_intensity(3, 2.0).inject(base_stream());
        let emitted = inj.by_ref().count() as u64;
        let s = inj.stats();
        assert_eq!(emitted, s.events_out);
        assert_eq!(s.events_out, s.events_in - s.dropped_events + s.duplicated);
    }

    #[test]
    fn reordered_events_still_all_delivered_but_out_of_order() {
        let plan = FaultPlan { out_of_order: 0.2, ..FaultPlan::none(9) };
        let mut inj = plan.inject(base_stream());
        let events: Vec<QueryEvent> = inj.by_ref().collect();
        assert_eq!(inj.stats().events_out, inj.stats().events_in);
        let inversions = events.windows(2).filter(|w| w[1].minute < w[0].minute).count();
        assert!(inversions > 0, "stream should contain timestamp inversions");
    }

    #[test]
    fn dropped_minutes_swallow_whole_minutes() {
        let plan = FaultPlan { dropped_minute: 0.3, ..FaultPlan::none(13) };
        let mut inj = plan.inject(base_stream());
        let kept_minutes: std::collections::HashSet<i64> =
            inj.by_ref().map(|e| e.minute).collect();
        let s = inj.stats();
        assert!(s.dropped_minutes > 0);
        // A dropped minute must not appear downstream at all.
        let all_minutes: std::collections::HashSet<i64> =
            base_stream().map(|e| e.minute).collect();
        let missing = all_minutes.difference(&kept_minutes).count() as u64;
        assert_eq!(missing, s.dropped_minutes);
    }

    #[test]
    fn corrupted_sql_is_valid_utf8_and_distinct() {
        let plan = FaultPlan { malformed_sql: 1.0, ..FaultPlan::none(21) };
        for (faulted, clean) in plan.inject(base_stream()).zip(base_stream()).take(500) {
            assert_ne!(faulted.sql, clean.sql, "every statement must be damaged");
            // String construction already guarantees UTF-8; the zip pairs
            // line up because malformed_sql alone keeps order and count.
            assert_eq!(faulted.minute, clean.minute);
        }
    }

    #[test]
    fn storage_faults_shape_the_post_crash_image() {
        let durable = b"DURABLE-".to_vec();
        let write = b"0123456789abcdef".to_vec();
        let mut plan = StorageFaultPlan::new(99);
        for kind in StorageFaultKind::ALL {
            let image = plan.apply(kind, &durable, &write);
            assert!(image.starts_with(&durable), "{kind:?} must never damage durable bytes");
            match kind {
                StorageFaultKind::TornWrite => {
                    assert!(image.len() < durable.len() + write.len(), "strict prefix")
                }
                StorageFaultKind::ShortWrite => {
                    let lost = durable.len() + write.len() - image.len();
                    assert!((1..=8).contains(&lost), "short by 1..=8 bytes, lost {lost}");
                    assert!(write.starts_with(&image[durable.len()..]));
                }
                StorageFaultKind::BitFlip => {
                    assert_eq!(image.len(), durable.len() + write.len());
                    let diff: u32 = image[durable.len()..]
                        .iter()
                        .zip(&write)
                        .map(|(a, b)| (a ^ b).count_ones())
                        .sum();
                    assert_eq!(diff, 1, "exactly one flipped bit");
                }
                StorageFaultKind::CrashBeforeFsync => assert_eq!(image, durable),
                StorageFaultKind::CrashAfterFsync => {
                    assert_eq!(&image[durable.len()..], &write[..])
                }
            }
        }
        assert_eq!(plan.applied, StorageFaultKind::ALL.len() as u64);
    }

    #[test]
    fn storage_fault_plan_is_deterministic_per_seed() {
        let write: Vec<u8> = (0..64).collect();
        let image = |seed: u64| {
            let mut p = StorageFaultPlan::new(seed);
            (
                p.apply(StorageFaultKind::TornWrite, b"x", &write),
                p.apply(StorageFaultKind::BitFlip, b"x", &write),
            )
        };
        assert_eq!(image(4), image(4));
        assert_ne!(image(4), image(5), "different seeds tear differently");
    }

    #[test]
    fn spikes_multiply_counts() {
        let plan = FaultPlan {
            arrival_spike: 1.0,
            spike_factor: 10,
            ..FaultPlan::none(17)
        };
        for (faulted, clean) in plan.inject(base_stream()).zip(base_stream()).take(200) {
            assert_eq!(faulted.count, clean.count * 10);
        }
    }
}
