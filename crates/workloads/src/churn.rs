//! Evolving-workload churn scenarios (ROADMAP item 4).
//!
//! QB5000 forecasts arrival rates of *known* clusters, but real workloads
//! keep minting query templates the clusterer has never seen: schemas
//! migrate, features launch, tenants onboard, incidents go viral. Each
//! [`ChurnScenario`] wraps the same stable storefront base population with
//! a different template-churn shape, so the cold-start forecast path and
//! the churn-facing clusterer behavior can be exercised deterministically.
//!
//! Every scenario is a plain [`TraceGenerator`]: seeded, chunk-invariant,
//! and composable with [`crate::FaultPlan`] like any other workload. The
//! `intensity` knob scales how much churn is layered on — `0.0` yields
//! *only* the stable base population (bit-identical across scenarios),
//! which is what the cold-start differential test relies on.
//!
//! Churn activation times are expressed as *fractions of the trace span*,
//! not absolute days, so a 3-day simulation case sees the same scenario
//! shape as a 40-day soak run.

use rand::Rng;

use crate::pattern::{daily_cycle, pulse_between, ramp_between, step_after, weekday_factor};
use crate::trace::{TemplateSpec, TraceConfig, TraceGenerator};
use qb_timeseries::{Minute, MINUTES_PER_DAY};

/// The template-churn scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnScenario {
    /// Gradual schema-migration drift: legacy templates fade out over a
    /// cut-over window while renamed successors ramp in.
    SchemaMigration,
    /// A feature launch: a burst of brand-new templates activates at one
    /// release instant, mid-trace.
    FeatureLaunch,
    /// Tenant onboarding: staggered waves, each bringing a per-tenant set
    /// of templates against tenant-specific structures.
    TenantOnboarding,
    /// Flash crowds: short-lived spike templates that exist only for the
    /// duration of an incident, then vanish.
    FlashCrowd,
    /// Seasonal + trend mixes: templates that appear mid-trace and then
    /// grow along a linear trend modulated by daily/weekly seasonality.
    SeasonalTrend,
}

/// All scenarios, in matrix-sweep order.
pub const CHURN_SCENARIOS: [ChurnScenario; 5] = [
    ChurnScenario::SchemaMigration,
    ChurnScenario::FeatureLaunch,
    ChurnScenario::TenantOnboarding,
    ChurnScenario::FlashCrowd,
    ChurnScenario::SeasonalTrend,
];

impl ChurnScenario {
    pub fn name(self) -> &'static str {
        match self {
            ChurnScenario::SchemaMigration => "schema-migration",
            ChurnScenario::FeatureLaunch => "feature-launch",
            ChurnScenario::TenantOnboarding => "tenant-onboarding",
            ChurnScenario::FlashCrowd => "flash-crowd",
            ChurnScenario::SeasonalTrend => "seasonal-trend",
        }
    }

    /// Parses a scenario name as printed by [`ChurnScenario::name`] — the
    /// `QB_SIM_WORKLOAD`-style repro path uses this.
    pub fn parse(s: &str) -> Option<ChurnScenario> {
        CHURN_SCENARIOS.iter().copied().find(|c| c.name().eq_ignore_ascii_case(s))
    }

    /// Builds the generator: the stable base population plus this
    /// scenario's churn templates scaled by `intensity`.
    ///
    /// `intensity = 0.0` appends no churn templates at all, so the stream
    /// is bit-identical to the bare base population (and identical across
    /// scenarios); `1.0` is the nominal churn load; larger values add
    /// proportionally more cohorts.
    pub fn generator(self, cfg: TraceConfig, intensity: f64) -> TraceGenerator {
        assert!(intensity >= 0.0, "churn intensity must be non-negative");
        let mut templates = base_population();
        let span = cfg.days as i64 * MINUTES_PER_DAY;
        let at = move |frac: f64| -> Minute { cfg.start + (span as f64 * frac) as i64 };
        match self {
            ChurnScenario::SchemaMigration => schema_migration(&mut templates, intensity, at),
            ChurnScenario::FeatureLaunch => feature_launch(&mut templates, intensity, at),
            ChurnScenario::TenantOnboarding => tenant_onboarding(&mut templates, intensity, at),
            ChurnScenario::FlashCrowd => flash_crowd(&mut templates, intensity, at),
            ChurnScenario::SeasonalTrend => seasonal_trend(&mut templates, intensity, at),
        }
        TraceGenerator::new(templates, cfg)
    }
}

/// Number of churn cohorts for a nominal count at the given intensity.
/// `0.0` → 0; `1.0` → `nominal`; fractional intensities round up so any
/// nonzero intensity produces at least one cohort.
fn cohorts(nominal: usize, intensity: f64) -> usize {
    (nominal as f64 * intensity).ceil() as usize
}

/// Shopper diurnal rhythm shared by the base population: daily cycle with
/// a slight weekend lift (retail browsing, unlike commuter traffic).
fn shop_rate() -> crate::pattern::RateFn {
    let cycle = daily_cycle(0.3, 0.5, 1.0);
    let wk = weekday_factor(1.2);
    Box::new(move |t| cycle(t) * wk(t))
}

/// The stable storefront base population: live from minute zero in every
/// scenario, never churned. Intensity 0 yields exactly this set.
fn base_population() -> Vec<TemplateSpec> {
    let mut templates = Vec::new();
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT product_id, name, price FROM products \
                 WHERE category = {} ORDER BY rank LIMIT 25",
                rng.gen_range(1..60)
            )
        }),
        weight: 14.0,
        rate: shop_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT o.order_id, o.status, o.total FROM orders AS o \
                 WHERE o.customer_id = {} ORDER BY o.placed_at DESC LIMIT 10",
                rng.gen_range(1..400_000)
            )
        }),
        weight: 9.0,
        rate: shop_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT c.cart_id, c.item_count, c.subtotal FROM carts AS c \
                 WHERE c.customer_id = {}",
                rng.gen_range(1..400_000)
            )
        }),
        weight: 7.0,
        rate: shop_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT i.sku, i.qty FROM inventory AS i \
                 WHERE i.warehouse_id = {} AND i.sku = {}",
                rng.gen_range(1..12),
                rng.gen_range(1..80_000)
            )
        }),
        weight: 5.0,
        rate: shop_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "INSERT INTO orders (customer_id, total, status, placed_at) \
                 VALUES ({}, {}, 'placed', {})",
                rng.gen_range(1..400_000),
                rng.gen_range(5..900),
                t
            )
        }),
        weight: 1.5,
        rate: shop_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "UPDATE inventory SET qty = qty - {}, updated_at = {} WHERE sku = {}",
                rng.gen_range(1..4),
                t,
                rng.gen_range(1..80_000)
            )
        }),
        weight: 2.0,
        rate: shop_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!("DELETE FROM carts WHERE abandoned_at < {}", rng.gen_range(0..10_000_000))
        }),
        weight: 0.3,
        rate: Box::new(|_| 1.0),
    });
    templates
}

/// Gradual schema-migration drift: each cohort is a legacy/successor pair.
/// The legacy template carries full traffic until the cut-over window
/// opens at 35 % of the trace, then fades linearly to zero by 70 % while
/// the renamed successor ramps in over the same window.
fn schema_migration(templates: &mut Vec<TemplateSpec>, intensity: f64, at: impl Fn(f64) -> Minute) {
    for k in 0..cohorts(3, intensity) {
        let stagger = 0.04 * (k % 3) as f64;
        let (from, to) = (at(0.35 + stagger), at(0.70 + stagger));
        let legacy = format!("legacy_shipments_{k}");
        let successor = format!("shipments_v2_{k}");
        {
            let ramp = ramp_between(from, to);
            let cycle = daily_cycle(0.25, 0.4, 0.8);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, _| {
                    format!(
                        "SELECT shipment_id, carrier, eta FROM {legacy} \
                         WHERE order_id = {} ORDER BY eta LIMIT 5",
                        rng.gen_range(1..2_000_000)
                    )
                }),
                weight: 4.0,
                rate: Box::new(move |t| (1.0 - ramp(t)) * cycle(t)),
            });
        }
        {
            let ramp = ramp_between(from, to);
            let cycle = daily_cycle(0.25, 0.4, 0.8);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, _| {
                    format!(
                        "SELECT shipment_id, carrier_code, eta_at FROM {successor} \
                         WHERE order_id = {} ORDER BY eta_at LIMIT 5",
                        rng.gen_range(1..2_000_000)
                    )
                }),
                weight: 4.0,
                rate: Box::new(move |t| ramp(t) * cycle(t)),
            });
        }
    }
}

/// A feature launch: every cohort's templates activate at the same release
/// instant (half-way through the trace) and stay on — the burst shape the
/// cold-start path must handle without a full history window.
fn feature_launch(templates: &mut Vec<TemplateSpec>, intensity: f64, at: impl Fn(f64) -> Minute) {
    let release = at(0.5);
    let shapes: [(f64, &str); 5] = [
        (6.0, "SELECT rec_id, product_id, score FROM recommendations WHERE customer_id = $U ORDER BY score DESC LIMIT 8"),
        (4.0, "SELECT w.wishlist_id, w.product_id FROM wishlists AS w WHERE w.customer_id = $U"),
        (3.0, "INSERT INTO wishlists (customer_id, product_id, added_at) VALUES ($U, $P, $T)"),
        (3.5, "SELECT r.review_id, r.stars, r.body FROM reviews AS r WHERE r.product_id = $P ORDER BY r.created_at DESC LIMIT 10"),
        (2.0, "INSERT INTO loyalty_points (customer_id, delta, reason, created_at) VALUES ($U, $G, 'purchase', $T)"),
    ];
    for k in 0..cohorts(5, intensity) {
        let (weight, shape) = shapes[k % shapes.len()];
        // Cohorts past the nominal five get suffixed table names so each
        // is a genuinely distinct template.
        let shape = if k < shapes.len() {
            shape.to_string()
        } else {
            shape.replace(" FROM ", &format!(" FROM x{}_", k / shapes.len())).replace(
                "INSERT INTO ",
                &format!("INSERT INTO x{}_", k / shapes.len()),
            )
        };
        let gate = step_after(release);
        let cycle = daily_cycle(0.3, 0.5, 1.0);
        templates.push(TemplateSpec {
            make_sql: Box::new(move |rng, t| {
                shape
                    .replace("$U", &rng.gen_range(1..400_000).to_string())
                    .replace("$P", &rng.gen_range(1..80_000).to_string())
                    .replace("$G", &rng.gen_range(1..500).to_string())
                    .replace("$T", &t.to_string())
            }),
            weight,
            rate: Box::new(move |t| gate(t) * cycle(t)),
        });
    }
}

/// Tenant onboarding: staggered waves between 30 % and 70 % of the trace,
/// each bringing a per-tenant template set against tenant-specific tables.
fn tenant_onboarding(templates: &mut Vec<TemplateSpec>, intensity: f64, at: impl Fn(f64) -> Minute) {
    let waves = cohorts(3, intensity);
    for w in 0..waves {
        let frac = 0.3 + 0.4 * w as f64 / waves.max(2) as f64;
        let onboard = at(frac.min(0.85));
        let events = format!("tenant_{w}_events");
        let users = format!("tenant_{w}_users");
        {
            let events = events.clone();
            let gate = step_after(onboard);
            let cycle = daily_cycle(0.3, 0.5, 0.9);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, _| {
                    format!(
                        "SELECT event_id, kind, payload_ref FROM {events} \
                         WHERE account_id = {} ORDER BY created_at DESC LIMIT 20",
                        rng.gen_range(1..50_000)
                    )
                }),
                weight: 5.0,
                rate: Box::new(move |t| gate(t) * cycle(t)),
            });
        }
        {
            let gate = step_after(onboard);
            let cycle = daily_cycle(0.3, 0.5, 0.9);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, t| {
                    format!(
                        "INSERT INTO {events} (account_id, kind, payload_ref, created_at) \
                         VALUES ({}, 'page_view', 'blob-{}', {})",
                        rng.gen_range(1..50_000),
                        rng.gen_range(1..1_000_000),
                        t
                    )
                }),
                weight: 1.5,
                rate: Box::new(move |t| gate(t) * cycle(t)),
            });
        }
        {
            let gate = step_after(onboard);
            let cycle = daily_cycle(0.2, 0.35, 0.7);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, _| {
                    format!(
                        "SELECT user_id, email, role FROM {users} WHERE account_id = {}",
                        rng.gen_range(1..50_000)
                    )
                }),
                weight: 2.5,
                rate: Box::new(move |t| gate(t) * cycle(t)),
            });
        }
    }
}

/// Flash crowds: each cohort is a pair of spike templates live only inside
/// a two-hour pulse window — high-volume while it lasts, gone after.
fn flash_crowd(templates: &mut Vec<TemplateSpec>, intensity: f64, at: impl Fn(f64) -> Minute) {
    for k in 0..cohorts(3, intensity) {
        let frac = 0.35 + 0.18 * (k % 4) as f64;
        let open = at(frac);
        let close = open + 120;
        let sale = format!("flash_sale_{k}");
        {
            let sale = sale.clone();
            let pulse = pulse_between(open, close);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, _| {
                    format!(
                        "SELECT item_id, stock_left, price FROM {sale} \
                         WHERE item_id = {} AND stock_left > 0",
                        rng.gen_range(1..200)
                    )
                }),
                weight: 30.0,
                rate: Box::new(pulse),
            });
        }
        {
            let pulse = pulse_between(open, close);
            templates.push(TemplateSpec {
                make_sql: Box::new(move |rng, t| {
                    format!(
                        "UPDATE {sale} SET stock_left = stock_left - 1, last_claim = {} \
                         WHERE item_id = {} AND stock_left > 0",
                        t,
                        rng.gen_range(1..200)
                    )
                }),
                weight: 8.0,
                rate: Box::new(pulse),
            });
        }
    }
}

/// Seasonal + trend mixes: cohorts appear at staggered points and then
/// *grow* along a linear trend toward the end of the trace, modulated by
/// daily and weekly seasonality (weekend-heavy, like holiday shopping).
fn seasonal_trend(templates: &mut Vec<TemplateSpec>, intensity: f64, at: impl Fn(f64) -> Minute) {
    for k in 0..cohorts(4, intensity) {
        let start_frac = 0.3 + 0.1 * (k % 4) as f64;
        let appear = at(start_frac);
        let end = at(1.0);
        let table = format!("seasonal_promo_{k}");
        let gate = step_after(appear);
        let trend = ramp_between(appear, end);
        let cycle = daily_cycle(0.25, 0.4, 0.9);
        let wk = weekday_factor(1.6);
        templates.push(TemplateSpec {
            make_sql: Box::new(move |rng, _| {
                format!(
                    "SELECT promo_id, discount_pct, ends_at FROM {table} \
                     WHERE region = {} ORDER BY discount_pct DESC LIMIT 12",
                    rng.gen_range(1..30)
                )
            }),
            weight: 5.0,
            // Starts at 30 % volume on appearance and trends up to full.
            rate: Box::new(move |t| gate(t) * (0.3 + 0.7 * trend(t)) * cycle(t) * wk(t)),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(days: u32) -> TraceConfig {
        TraceConfig { start: 0, days, scale: 0.2, seed: 0xC0FFEE }
    }

    fn stream(scenario: ChurnScenario, intensity: f64) -> Vec<(Minute, String, u64)> {
        scenario.generator(cfg(4), intensity).map(|e| (e.minute, e.sql, e.count)).collect()
    }

    #[test]
    fn all_sql_parses_in_every_scenario() {
        for scenario in CHURN_SCENARIOS {
            for ev in scenario.generator(cfg(4), 1.5).take(4000) {
                qb_sqlparse::parse_statement(&ev.sql).unwrap_or_else(|e| {
                    panic!("{}: unparseable `{}`: {e}", scenario.name(), ev.sql)
                });
            }
        }
    }

    #[test]
    fn intensity_zero_is_base_only_and_scenario_independent() {
        let reference = stream(ChurnScenario::SchemaMigration, 0.0);
        assert!(!reference.is_empty());
        for scenario in CHURN_SCENARIOS {
            assert_eq!(
                stream(scenario, 0.0),
                reference,
                "{} at intensity 0 must equal the bare base population",
                scenario.name()
            );
        }
        // And no churn table ever shows up.
        for (_, sql, _) in &reference {
            for marker in ["tenant_", "flash_sale_", "seasonal_promo_", "shipments_v2_"] {
                assert!(!sql.contains(marker), "churn marker {marker} at intensity 0: {sql}");
            }
        }
    }

    #[test]
    fn churn_templates_respect_activation_gates() {
        let span = 4 * MINUTES_PER_DAY;
        // Feature launch: nothing before the release minute, plenty after.
        let release = span / 2;
        let (mut before, mut after) = (0u64, 0u64);
        for ev in ChurnScenario::FeatureLaunch.generator(cfg(4), 1.0) {
            if ev.sql.contains("recommendations") || ev.sql.contains("wishlists") {
                if ev.minute < release {
                    before += 1;
                } else {
                    after += 1;
                }
            }
        }
        assert_eq!(before, 0, "launch templates must not appear before the release");
        assert!(after > 0, "launch templates must appear after the release");

        // Flash crowd: spike templates vanish once their pulse closes.
        let mut last_flash: Minute = 0;
        let mut any_flash = false;
        for ev in ChurnScenario::FlashCrowd.generator(cfg(4), 1.0) {
            if ev.sql.contains("flash_sale_") {
                last_flash = last_flash.max(ev.minute);
                any_flash = true;
            }
        }
        assert!(any_flash, "flash-crowd templates must fire inside their window");
        // Last window opens at 0.35 + 0.18*2 = 0.71 of the span, 120 min wide.
        let close = (span as f64 * 0.71) as i64 + 120;
        assert!(last_flash < close, "flash template after its window: {last_flash} >= {close}");
    }

    #[test]
    fn schema_migration_shifts_traffic_to_successor() {
        let span = 4 * MINUTES_PER_DAY;
        let (mut legacy_late, mut successor_late) = (0u64, 0u64);
        let (mut legacy_early, mut successor_early) = (0u64, 0u64);
        for ev in ChurnScenario::SchemaMigration.generator(cfg(4), 1.0) {
            let late = ev.minute > span * 3 / 4;
            if ev.sql.contains("legacy_shipments_") {
                if late {
                    legacy_late += ev.count;
                } else {
                    legacy_early += ev.count;
                }
            } else if ev.sql.contains("shipments_v2_") {
                if late {
                    successor_late += ev.count;
                } else {
                    successor_early += ev.count;
                }
            }
        }
        assert!(legacy_early > successor_early, "legacy dominates early");
        assert!(successor_late > legacy_late, "successor dominates late");
    }

    #[test]
    fn intensity_scales_distinct_template_count() {
        let distinct = |intensity: f64| {
            let mut set = std::collections::HashSet::new();
            for ev in ChurnScenario::TenantOnboarding.generator(cfg(4), intensity) {
                let stmt = qb_sqlparse::parse_statement(&ev.sql).expect("valid SQL");
                set.insert(qb_preprocessor::templatize(&stmt).text);
            }
            set.len()
        };
        let base = distinct(0.0);
        let nominal = distinct(1.0);
        let heavy = distinct(2.0);
        assert!(nominal > base, "intensity 1 adds templates: {base} vs {nominal}");
        assert!(heavy > nominal, "intensity 2 adds more: {nominal} vs {heavy}");
    }

    #[test]
    fn scenario_names_round_trip() {
        for scenario in CHURN_SCENARIOS {
            assert_eq!(ChurnScenario::parse(scenario.name()), Some(scenario));
        }
        assert_eq!(ChurnScenario::parse("no-such-scenario"), None);
    }
}
