//! The Admissions trace (§2.1): a graduate-admissions portal.
//!
//! "Students submit their application materials to programs in different
//! departments. Faculties review the applications after the deadline."
//! Applicant traffic follows the growth-and-spike pattern of Figure 1b —
//! volume swells toward the **Dec 1** and **Dec 15** deadlines and repeats
//! every year (the property KR exploits in §7.3) — while faculty-review
//! traffic switches on after the deadlines. The mix is overwhelmingly
//! SELECT (Table 1: 99.8 %).

use rand::Rng;

use crate::pattern::{daily_cycle, deadline_growth};
use crate::trace::{TemplateSpec, TraceConfig, TraceGenerator};
use crate::day_of_year;

/// Day-of-year (0-based, non-leap) of the two application deadlines.
pub const DEADLINE_DEC_1: f64 = 334.0;
pub const DEADLINE_DEC_15: f64 = 348.0;

/// Builds the Admissions generator.
pub fn generator(cfg: TraceConfig) -> TraceGenerator {
    let mut templates = Vec::new();

    // Applicant-facing rate: diurnal cycle × two annual deadline ramps.
    // 30-day lead, ~12× growth at the deadline (Figure 1b's final-two-day
    // surge comes from the superlinear ramp shape).
    let applicant_rate = || -> crate::pattern::RateFn {
        let cycle = daily_cycle(0.25, 0.7, 0.9);
        let d1 = deadline_growth(DEADLINE_DEC_1, 30.0, 12.0);
        let d2 = deadline_growth(DEADLINE_DEC_15, 30.0, 12.0);
        Box::new(move |t| cycle(t) * (d1(t) + d2(t) - 1.0).max(0.05))
    };

    let applicant = |weight: f64,
                     make: Box<dyn Fn(&mut rand::rngs::SmallRng, i64) -> String + Send + Sync>| {
        TemplateSpec { make_sql: make, weight, rate: applicant_rate() }
    };

    // Application status check — the single hottest query.
    templates.push(applicant(
        34.0,
        Box::new(|rng, _| {
            format!(
                "SELECT app_id, status, updated_at FROM applications \
                 WHERE student_id = {} ORDER BY updated_at DESC",
                rng.gen_range(1..200_000)
            )
        }),
    ));

    // Program browsing.
    templates.push(applicant(
        22.0,
        Box::new(|rng, _| {
            format!(
                "SELECT p.program_id, p.name, d.dept_name FROM programs AS p \
                 JOIN departments AS d ON p.dept_id = d.dept_id WHERE p.program_id = {}",
                rng.gen_range(1..300)
            )
        }),
    ));

    // Requirements checklist.
    templates.push(applicant(
        15.0,
        Box::new(|rng, _| {
            format!(
                "SELECT req_id, description, required FROM requirements WHERE program_id = {}",
                rng.gen_range(1..300)
            )
        }),
    ));

    // Uploaded-document listing.
    templates.push(applicant(
        12.0,
        Box::new(|rng, _| {
            format!(
                "SELECT doc_id, kind, uploaded_at FROM documents \
                 WHERE app_id = {} AND deleted = FALSE",
                rng.gen_range(1..400_000)
            )
        }),
    ));

    // Recommendation-letter status.
    templates.push(applicant(
        8.0,
        Box::new(|rng, _| {
            format!(
                "SELECT letter_id, recommender_email, received FROM letters WHERE app_id = {}",
                rng.gen_range(1..400_000)
            )
        }),
    ));

    // Account/session reads.
    templates.push(applicant(
        7.0,
        Box::new(|rng, _| {
            format!(
                "SELECT student_id, email, verified FROM students WHERE email = 'user{}@example.edu'",
                rng.gen_range(1..200_000)
            )
        }),
    ));

    // Deadline countdown widget (aggregation).
    templates.push(applicant(
        3.0,
        Box::new(|rng, _| {
            format!(
                "SELECT COUNT(*) FROM applications WHERE program_id = {} AND status = 'submitted'",
                rng.gen_range(1..300)
            )
        }),
    ));

    // Writes: material saves, submissions, document uploads. Small weights
    // keep the Table 1 mix (~0.2 % combined).
    templates.push(applicant(
        0.09,
        Box::new(|rng, t| {
            format!(
                "UPDATE applications SET essay_draft = 'draft-{}', updated_at = {} WHERE app_id = {}",
                rng.gen_range(1..1_000_000),
                t,
                rng.gen_range(1..400_000)
            )
        }),
    ));
    templates.push(applicant(
        0.05,
        Box::new(|rng, t| {
            format!(
                "INSERT INTO documents (app_id, kind, blob_ref, uploaded_at) \
                 VALUES ({}, 'transcript', 'blob-{}', {})",
                rng.gen_range(1..400_000),
                rng.gen_range(1..1_000_000),
                t
            )
        }),
    ));
    templates.push(applicant(
        0.04,
        Box::new(|rng, t| {
            format!(
                "INSERT INTO applications (student_id, program_id, status, created_at) \
                 VALUES ({}, {}, 'draft', {})",
                rng.gen_range(1..200_000),
                rng.gen_range(1..300),
                t
            )
        }),
    ));
    templates.push(applicant(
        0.02,
        Box::new(|rng, _| {
            format!("DELETE FROM documents WHERE doc_id = {}", rng.gen_range(1..1_000_000))
        }),
    ));

    // Faculty review traffic: active in the weeks *after* the Dec 15
    // deadline (day 349 → mid-February), office hours only.
    let review_rate = || -> crate::pattern::RateFn {
        let cycle = daily_cycle(0.1, 0.9, 0.4);
        Box::new(move |t| {
            let doy = day_of_year(t);
            let in_season = !(46.0..349.0).contains(&doy);
            if in_season {
                cycle(t)
            } else {
                0.02 * cycle(t)
            }
        })
    };
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT a.app_id, a.status, s.email FROM applications AS a \
                 JOIN students AS s ON a.student_id = s.student_id \
                 WHERE a.program_id = {} AND a.status = 'submitted' \
                 ORDER BY a.created_at LIMIT 25",
                rng.gen_range(1..300)
            )
        }),
        weight: 4.0,
        rate: review_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, _| {
            format!(
                "SELECT review_id, score, comments FROM reviews \
                 WHERE app_id = {} AND reviewer_id = {}",
                rng.gen_range(1..400_000),
                rng.gen_range(1..900)
            )
        }),
        weight: 2.5,
        rate: review_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "INSERT INTO reviews (app_id, reviewer_id, score, created_at) \
                 VALUES ({}, {}, {}, {})",
                rng.gen_range(1..400_000),
                rng.gen_range(1..900),
                rng.gen_range(1..6),
                t
            )
        }),
        weight: 0.03,
        rate: review_rate(),
    });
    templates.push(TemplateSpec {
        make_sql: Box::new(|rng, t| {
            format!(
                "UPDATE applications SET status = 'decided', decided_at = {} WHERE app_id = {}",
                t,
                rng.gen_range(1..400_000)
            )
        }),
        weight: 0.02,
        rate: review_rate(),
    });

    TraceGenerator::new(templates, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_timeseries::MINUTES_PER_DAY;

    #[test]
    fn all_sql_parses() {
        let cfg = TraceConfig { start: 0, days: 3, scale: 0.2, seed: 21 };
        for ev in generator(cfg).take(3000) {
            qb_sqlparse::parse_statement(&ev.sql)
                .unwrap_or_else(|e| panic!("unparseable `{}`: {e}", ev.sql));
        }
    }

    #[test]
    fn volume_grows_into_deadline() {
        let cfg = TraceConfig { start: 0, days: 1, scale: 1.0, seed: 22 };
        let g = generator(cfg);
        // Compare noon expected rates: Nov 1 (day 304) vs Nov 30 (day 333).
        let nov1 = 304 * MINUTES_PER_DAY + 12 * 60;
        let nov30 = 333 * MINUTES_PER_DAY + 12 * 60;
        let far = g.expected_rate(nov1);
        let near = g.expected_rate(nov30);
        assert!(near > far * 4.0, "deadline growth: {far} → {near}");
    }

    #[test]
    fn spike_repeats_annually() {
        let cfg = TraceConfig { start: 0, days: 1, scale: 1.0, seed: 23 };
        let g = generator(cfg);
        let dec1_2016 = 334 * MINUTES_PER_DAY + 12 * 60;
        let dec1_2017 = dec1_2016 + crate::MINUTES_PER_YEAR;
        let a = g.expected_rate(dec1_2016);
        let b = g.expected_rate(dec1_2017);
        assert!((a - b).abs() / a < 1e-9, "annual repetition: {a} vs {b}");
    }

    #[test]
    fn review_traffic_follows_deadline() {
        let cfg = TraceConfig { start: 0, days: 1, scale: 1.0, seed: 24 };
        let g = generator(cfg);
        // Review queries are zero-ish in October, active in January.
        // Use the full expected rate deltas at 09:00.
        let oct = 280 * MINUTES_PER_DAY + 9 * 60;
        let jan = (365 + 10) * MINUTES_PER_DAY + 9 * 60;
        // January has review season but no deadline surge; October has
        // neither. January morning must exceed October morning.
        assert!(g.expected_rate(jan) > g.expected_rate(oct));
    }

    #[test]
    fn select_share_matches_table1() {
        let cfg = TraceConfig { start: 300 * MINUTES_PER_DAY, days: 4, scale: 0.3, seed: 25 };
        let mut selects = 0u64;
        let mut total = 0u64;
        for ev in generator(cfg) {
            total += ev.count;
            if ev.sql.starts_with("SELECT") {
                selects += ev.count;
            }
        }
        assert!(selects as f64 / total as f64 > 0.99, "{selects}/{total}");
    }
}
