//! Property-based tests for the trace generators: every emitted statement
//! parses, events are ordered, and generation is deterministic in the seed.

use proptest::prelude::*;
use qb_workloads::{ChurnScenario, TraceConfig, Workload, CHURN_SCENARIOS};

fn workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Admissions),
        Just(Workload::BusTracker),
        Just(Workload::Mooc),
    ]
}

fn churn_scenario() -> impl Strategy<Value = ChurnScenario> {
    (0..CHURN_SCENARIOS.len()).prop_map(|i| CHURN_SCENARIOS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated statement is valid SQL with positive count, inside
    /// the trace range, in non-decreasing time order.
    #[test]
    fn generated_events_are_wellformed(
        w in workload(),
        seed in any::<u64>(),
        start_day in 0i64..400,
    ) {
        let start = start_day * qb_timeseries::MINUTES_PER_DAY;
        let cfg = TraceConfig { start, days: 1, scale: 0.05, seed };
        let mut last = start;
        let mut checked = 0;
        for ev in w.generator(cfg).take(500) {
            prop_assert!(ev.count > 0);
            prop_assert!(ev.minute >= start);
            prop_assert!(ev.minute < cfg.end());
            prop_assert!(ev.minute >= last, "events out of order");
            last = ev.minute;
            // Parse every 10th event (parsing dominates test time).
            if checked % 10 == 0 {
                qb_sqlparse::parse_statement(&ev.sql)
                    .map_err(|e| TestCaseError::fail(format!("`{}`: {e}", ev.sql)))?;
            }
            checked += 1;
        }
    }

    /// Determinism: the same config yields the same event stream.
    #[test]
    fn generation_is_deterministic(w in workload(), seed in any::<u64>()) {
        let cfg = TraceConfig { start: 0, days: 1, scale: 0.03, seed };
        let a: Vec<_> = w.generator(cfg).take(200).map(|e| (e.minute, e.sql, e.count)).collect();
        let b: Vec<_> = w.generator(cfg).take(200).map(|e| (e.minute, e.sql, e.count)).collect();
        prop_assert_eq!(a, b);
    }

    /// Churn determinism: for every scenario and intensity, the same
    /// seed yields the identical statement/timestamp/count stream.
    #[test]
    fn churn_generation_is_deterministic(
        s in churn_scenario(),
        seed in any::<u64>(),
        intensity in 0.0f64..2.5,
    ) {
        let cfg = TraceConfig { start: 0, days: 2, scale: 0.03, seed };
        let a: Vec<_> = s.generator(cfg, intensity).take(300)
            .map(|e| (e.minute, e.sql, e.count)).collect();
        let b: Vec<_> = s.generator(cfg, intensity).take(300)
            .map(|e| (e.minute, e.sql, e.count)).collect();
        prop_assert_eq!(a, b);
    }

    /// Chunk-boundary invariance: pulling a churn trace in arbitrary
    /// chunk sizes yields the same events as a single uninterrupted
    /// collect — generation state lives in the iterator, never in the
    /// pull pattern.
    #[test]
    fn churn_generation_is_chunk_invariant(
        s in churn_scenario(),
        seed in any::<u64>(),
        intensity in 0.0f64..2.0,
        chunks in proptest::collection::vec(1usize..97, 1..12),
    ) {
        let cfg = TraceConfig { start: 0, days: 2, scale: 0.03, seed };
        let whole: Vec<_> = s.generator(cfg, intensity)
            .map(|e| (e.minute, e.sql, e.count)).collect();
        let mut pulled = Vec::new();
        let mut gen = s.generator(cfg, intensity);
        // Cycle the chunk sizes until the generator runs dry.
        'outer: for &n in chunks.iter().cycle() {
            for _ in 0..n {
                match gen.next() {
                    Some(e) => pulled.push((e.minute, e.sql, e.count)),
                    None => break 'outer,
                }
            }
        }
        prop_assert_eq!(whole, pulled);
    }

    /// Churn streams are well-formed under any intensity: ordered,
    /// in-range, positive counts, and every statement parses.
    #[test]
    fn churn_events_are_wellformed(
        s in churn_scenario(),
        seed in any::<u64>(),
        intensity in 0.0f64..2.5,
    ) {
        let cfg = TraceConfig { start: 0, days: 2, scale: 0.05, seed };
        let mut last = 0;
        let mut checked = 0;
        for ev in s.generator(cfg, intensity).take(500) {
            prop_assert!(ev.count > 0);
            prop_assert!(ev.minute >= 0);
            prop_assert!(ev.minute < cfg.end());
            prop_assert!(ev.minute >= last, "events out of order");
            last = ev.minute;
            if checked % 10 == 0 {
                qb_sqlparse::parse_statement(&ev.sql)
                    .map_err(|e| TestCaseError::fail(format!("`{}`: {e}", ev.sql)))?;
            }
            checked += 1;
        }
    }

    /// Volume scales roughly linearly with `scale`.
    #[test]
    fn volume_scales(w in workload(), seed in any::<u64>()) {
        let total = |scale: f64| -> u64 {
            let cfg = TraceConfig { start: 0, days: 1, scale, seed };
            w.generator(cfg).map(|e| e.count).sum()
        };
        let v1 = total(0.05);
        let v4 = total(0.20);
        prop_assume!(v1 > 200); // enough signal for the ratio test
        let ratio = v4 as f64 / v1 as f64;
        prop_assert!((2.5..6.0).contains(&ratio), "ratio {} out of range", ratio);
    }
}
