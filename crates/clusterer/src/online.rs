//! The online modified-DBSCAN clustering algorithm (§5.2).
//!
//! Every update period the Clusterer performs three steps:
//!
//! 1. **Assign** — each new template joins the cluster whose *center* is
//!    most similar, provided the similarity exceeds ρ (kd-tree lookup);
//!    otherwise it founds a new cluster.
//! 2. **Re-check** — existing templates whose similarity to their own
//!    cluster's center dropped below ρ are removed and re-assigned via
//!    step 1. Moves are *not* applied recursively; deferred to the next
//!    period (the paper's convergence trade-off).
//! 3. **Merge** — cluster pairs whose centers are more similar than ρ merge.
//!
//! A template that stays silent longer than the eviction window is dropped.
//! Between periodic updates, the share of previously-unseen templates is
//! monitored; exceeding a threshold triggers the three steps early —
//! that is how the framework adapts to workload shifts (Appendix D).

use std::collections::{BTreeMap, BTreeSet};

use qb_obs::Recorder;
use qb_trace::{EventDraft, EventKind, Scope, Tracer};

use crate::feature::TemplateFeature;
use crate::kdtree::KdTree;

/// Opaque template identity (the Pre-Processor's `TemplateId.0`).
pub type TemplateKey = u64;

/// Cluster identifier, unique across the lifetime of one `OnlineClusterer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u64);

/// Similarity metric for clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityMetric {
    /// Cosine similarity over arrival-rate features — QB5000's choice.
    Cosine,
    /// `1 / (1 + L2)` over logical features — the §7.7 ablation. Mapped
    /// into `(0, 1]` so the same ρ threshold semantics apply.
    InverseL2,
}

impl SimilarityMetric {
    /// Similarity between a template feature and a center.
    fn similarity(self, f: &TemplateFeature, center: &[f64]) -> f64 {
        match self {
            SimilarityMetric::Cosine => f.similarity(center, 0),
            SimilarityMetric::InverseL2 => {
                1.0 / (1.0 + qb_linalg::l2_distance(&f.values, center))
            }
        }
    }

    /// Similarity between two centers (used by the merge step).
    fn center_similarity(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            SimilarityMetric::Cosine => qb_linalg::cosine_similarity(a, b),
            SimilarityMetric::InverseL2 => 1.0 / (1.0 + qb_linalg::l2_distance(a, b)),
        }
    }
}

/// Clusterer configuration.
#[derive(Debug, Clone)]
pub struct ClustererConfig {
    /// Similarity threshold ρ ∈ [0, 1]. Paper default: 0.8 (Appendix A).
    pub rho: f64,
    /// Metric (cosine for arrival-rate features, inverse-L2 for logical).
    pub metric: SimilarityMetric,
    /// Evict a template after this many minutes without an arrival.
    pub eviction_idle: i64,
    /// Trigger an early update when the fraction of previously-unseen
    /// templates since the last update exceeds this (§5.2).
    pub new_template_trigger: f64,
    /// Adapt the trigger to the workload's baseline churn instead of using
    /// the fixed threshold. §5.2 defers threshold selection as future
    /// work ("Setting this threshold properly is dependent on the
    /// performance attributes of the target DBMS"); with this enabled the
    /// clusterer tracks an exponential moving average of the steady-state
    /// unseen-template ratio and only fires when the current ratio clearly
    /// exceeds that baseline, so a naturally churny application (MOOC) does
    /// not re-cluster constantly while a phase switch still triggers.
    pub adaptive_trigger: bool,
}

impl Default for ClustererConfig {
    fn default() -> Self {
        Self {
            rho: 0.8,
            metric: SimilarityMetric::Cosine,
            eviction_idle: 7 * qb_timeseries::MINUTES_PER_DAY,
            new_template_trigger: 0.2,
            adaptive_trigger: false,
        }
    }
}

/// One cluster: members plus the arithmetic-mean center (§5.2 step 1).
#[derive(Debug, Clone)]
pub struct Cluster {
    pub id: ClusterId,
    pub members: Vec<TemplateKey>,
    /// Arithmetic average of the members' feature vectors.
    pub center: Vec<f64>,
    /// Total query volume of members (for pruning, §5.3).
    pub volume: f64,
}

#[derive(Debug, Clone)]
struct TemplateState {
    feature: TemplateFeature,
    volume: f64,
    last_seen: i64,
    cluster: ClusterId,
}

/// What changed during one update cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReport {
    pub new_templates: usize,
    pub reassigned: usize,
    pub evicted: usize,
    pub merges: usize,
    pub clusters_created: usize,
}

impl UpdateReport {
    /// True when any membership changed — the signal for the Forecaster to
    /// retrain ("Every time the cluster assignment changes for templates,
    /// QB5000 re-trains its models", §3).
    pub fn assignments_changed(&self) -> bool {
        self.new_templates > 0 || self.reassigned > 0 || self.evicted > 0 || self.merges > 0
    }
}

/// A snapshot of one template handed to [`OnlineClusterer::update`].
#[derive(Debug, Clone)]
pub struct TemplateSnapshot {
    pub key: TemplateKey,
    pub feature: TemplateFeature,
    /// Query volume in the reporting window (drives cluster pruning).
    pub volume: f64,
    /// Minute of the template's most recent arrival.
    pub last_seen: i64,
}

/// Cached metric handles; all no-ops until
/// [`OnlineClusterer::set_recorder`] installs an enabled recorder.
#[derive(Debug, Default)]
struct ClusterMetrics {
    /// Wall time per three-step update cycle.
    update_time: qb_obs::Histogram,
    /// Wall time per kd-tree construction (once per cycle).
    kdtree_build_time: qb_obs::Histogram,
    /// Wall time per step-1 assignment phase (kd queries + fresh scans).
    assign_time: qb_obs::Histogram,
    /// Wall time per step-3 merge phase.
    merge_time: qb_obs::Histogram,
    new_templates: qb_obs::Counter,
    reassigned: qb_obs::Counter,
    evicted: qb_obs::Counter,
    merges: qb_obs::Counter,
    clusters_created: qb_obs::Counter,
    num_clusters: qb_obs::Gauge,
    num_templates: qb_obs::Gauge,
    /// Unseen-template ratio of the period each update cycle closed.
    unseen_ratio: qb_obs::Gauge,
}

impl ClusterMetrics {
    fn resolve(recorder: &Recorder) -> Self {
        Self {
            update_time: recorder.histogram("clusterer.update"),
            kdtree_build_time: recorder.histogram("clusterer.kdtree_build"),
            assign_time: recorder.histogram("clusterer.assign"),
            merge_time: recorder.histogram("clusterer.merge"),
            new_templates: recorder.counter("clusterer.new_templates"),
            reassigned: recorder.counter("clusterer.reassigned"),
            evicted: recorder.counter("clusterer.evicted"),
            merges: recorder.counter("clusterer.merges"),
            clusters_created: recorder.counter("clusterer.clusters_created"),
            num_clusters: recorder.gauge("clusterer.num_clusters"),
            num_templates: recorder.gauge("clusterer.num_templates"),
            unseen_ratio: recorder.gauge("clusterer.unseen_ratio"),
        }
    }
}

/// The online clusterer.
pub struct OnlineClusterer {
    config: ClustererConfig,
    metrics: ClusterMetrics,
    templates: BTreeMap<TemplateKey, TemplateState>,
    clusters: BTreeMap<ClusterId, Cluster>,
    next_cluster: u64,
    /// Distinct template keys observed since the last update. A hot
    /// template observed a thousand times counts once, so it cannot
    /// dilute the unseen ratio and mask a workload shift.
    seen_since_update: BTreeSet<TemplateKey>,
    /// Distinct previously-unknown templates among [`Self::seen_since_update`].
    unseen_since_update: usize,
    /// EWMA of the per-period unseen ratio (the adaptive-trigger baseline).
    baseline_unseen_ratio: f64,
    tracer: Tracer,
}

/// Step-1 lookup context: the kd-tree over the cycle's frozen centers plus
/// the clusters born during the step.
///
/// The tree is built **once per update cycle** (it used to be rebuilt on
/// every single lookup, which made it slower than the linear scan it
/// replaces). It stays valid for the whole step because member additions
/// no longer move centers mid-step — centers are frozen at the start of
/// step 1 (the paper's non-recursive update) and recomputed once at the
/// end of the cycle. Only cluster *creation* adds a center, and those land
/// in `fresh`, scanned linearly on each lookup (few per cycle).
struct AssignCtx {
    /// kd-tree over unit-normalized pre-step centers (cosine metric only).
    tree: Option<KdTree<ClusterId>>,
    /// Clusters created during this step, not present in the tree.
    fresh: Vec<ClusterId>,
}

impl OnlineClusterer {
    pub fn new(config: ClustererConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.rho), "rho must be in [0, 1]");
        Self {
            config,
            metrics: ClusterMetrics::default(),
            templates: BTreeMap::new(),
            clusters: BTreeMap::new(),
            next_cluster: 0,
            seen_since_update: BTreeSet::new(),
            unseen_since_update: 0,
            baseline_unseen_ratio: 0.0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a [`Recorder`]: update cycles then record `clusterer.*`
    /// phase timings (cycle, kd-tree build, assignment, merge), membership
    /// churn counters, and population gauges. Metric names resolve once,
    /// here; lookups inside the cycle only touch cached handles.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = ClusterMetrics::resolve(recorder);
    }

    /// Installs a [`Tracer`]: update cycles then emit the cluster-churn
    /// lineage — `ClusterCreated` / `ClusterAssigned` (linked back to the
    /// member's `TemplateCreated` anchor), `ClusterMerged`,
    /// `ClusterEvicted`, and a closing `ClustersUpdated` anchored under
    /// [`Scope::ClusterState`] for the Forecaster to link model fits to.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The trigger threshold currently in force: the configured constant,
    /// or — with `adaptive_trigger` — a margin above the learned baseline
    /// churn, clamped so a total template swap always fires.
    pub fn effective_trigger(&self) -> f64 {
        if self.config.adaptive_trigger {
            (3.0 * self.baseline_unseen_ratio + 0.1)
                .max(self.config.new_template_trigger)
                .min(0.9)
        } else {
            self.config.new_template_trigger
        }
    }

    /// Records that a template was observed between updates; returns `true`
    /// when the unseen-template ratio crossed the early-update trigger.
    ///
    /// The ratio is over **distinct** templates: re-observing the same key
    /// does not grow the denominator, so one hot template repeated
    /// thousands of times cannot drown out a batch of genuinely new ones.
    pub fn observe(&mut self, key: TemplateKey) -> bool {
        if self.seen_since_update.insert(key) && !self.templates.contains_key(&key) {
            self.unseen_since_update += 1;
        }
        let observed = self.seen_since_update.len();
        let ratio = self.unseen_since_update as f64 / observed as f64;
        observed >= 10 && ratio > self.effective_trigger()
    }

    /// Records a tick's worth of observations at once (the batched-ingest
    /// feed); returns `true` when the unseen-template ratio crossed the
    /// early-update trigger.
    ///
    /// Observation state is a set, so this leaves the clusterer in exactly
    /// the state per-key [`OnlineClusterer::observe`] calls would, and the
    /// return value matches what the *last* of those calls would report:
    /// the trigger is evaluated once over the whole tick instead of per
    /// statement.
    pub fn observe_batch(&mut self, keys: &[TemplateKey]) -> bool {
        for &key in keys {
            if self.seen_since_update.insert(key) && !self.templates.contains_key(&key) {
                self.unseen_since_update += 1;
            }
        }
        let observed = self.seen_since_update.len();
        let ratio = self.unseen_since_update as f64 / observed as f64;
        observed >= 10 && ratio > self.effective_trigger()
    }

    /// Runs the three-step incremental update over fresh feature snapshots.
    ///
    /// `now` drives eviction. Every live template must appear in
    /// `snapshots`; templates absent from `snapshots` keep their previous
    /// feature (but still age toward eviction).
    pub fn update(&mut self, snapshots: Vec<TemplateSnapshot>, now: i64) -> UpdateReport {
        let _cycle = self.metrics.update_time.start();
        let _stage = self.tracer.stage("clusterer.update");
        let mut report = UpdateReport::default();
        // Fold the closing period's churn into the adaptive baseline.
        if !self.seen_since_update.is_empty() {
            self.metrics.unseen_ratio.set(
                self.unseen_since_update as f64 / self.seen_since_update.len() as f64,
            );
        }
        if self.seen_since_update.len() >= 10 {
            let ratio = self.unseen_since_update as f64 / self.seen_since_update.len() as f64;
            self.baseline_unseen_ratio = 0.7 * self.baseline_unseen_ratio + 0.3 * ratio;
        }
        self.unseen_since_update = 0;
        self.seen_since_update.clear();

        // Refresh features of known templates.
        let mut new_snaps = Vec::new();
        for snap in snapshots {
            match self.templates.get_mut(&snap.key) {
                Some(state) => {
                    state.feature = snap.feature;
                    state.volume = snap.volume;
                    state.last_seen = snap.last_seen;
                }
                None => new_snaps.push(snap),
            }
        }

        // Eviction: drop templates idle beyond the window.
        let cutoff = now - self.config.eviction_idle;
        let evicted: Vec<TemplateKey> = self
            .templates
            .iter()
            .filter(|(_, s)| s.last_seen < cutoff)
            .map(|(k, _)| *k)
            .collect();
        for k in evicted {
            let state = self.templates.remove(&k).expect("listed above");
            if let Some(c) = self.clusters.get_mut(&state.cluster) {
                c.members.retain(|m| *m != k);
                if c.members.is_empty() {
                    self.clusters.remove(&state.cluster);
                }
            }
            report.evicted += 1;
            if self.tracer.is_enabled() {
                self.tracer.record(
                    EventDraft::new(EventKind::ClusterEvicted)
                        .parent_opt(self.tracer.anchor(Scope::Template, k))
                        .uint("template", k)
                        .uint("cluster", state.cluster.0)
                        .int("last_seen", state.last_seen),
                );
            }
        }
        self.recompute_centers();

        // Step 2: re-check existing memberships against the (possibly
        // moved) centers. Removals are collected first, then re-assigned —
        // not applied recursively.
        let mut to_reassign = Vec::new();
        for (&key, state) in &self.templates {
            let cluster = &self.clusters[&state.cluster];
            // A single-member cluster is always coherent with its center.
            if cluster.members.len() == 1 {
                continue;
            }
            let sim = self.config.metric.similarity(&state.feature, &cluster.center);
            if sim <= self.config.rho {
                to_reassign.push(key);
            }
        }
        for key in &to_reassign {
            let cluster_id = self.templates[key].cluster;
            let c = self.clusters.get_mut(&cluster_id).expect("member's cluster exists");
            c.members.retain(|m| m != key);
            if c.members.is_empty() {
                self.clusters.remove(&cluster_id);
            }
        }
        self.recompute_centers();
        report.reassigned = to_reassign.len();

        // Step 1: assign new templates and re-assign the step-2 removals.
        // All lookups in this step run against the centers as they stand
        // right now (the paper applies center moves non-recursively), which
        // lets one kd-tree serve the whole step.
        let assign_span = self.metrics.assign_time.start();
        let mut ctx = self.assign_ctx();
        report.new_templates = new_snaps.len();
        for snap in new_snaps {
            let key = snap.key;
            let (cid, created) =
                self.assign(snap.key, snap.feature, snap.volume, snap.last_seen, &mut ctx);
            report.clusters_created += usize::from(created);
            self.trace_assign(key, cid, created, false);
        }
        for key in to_reassign {
            let state = self.templates.remove(&key).expect("still tracked");
            let (cid, created) =
                self.assign(key, state.feature, state.volume, state.last_seen, &mut ctx);
            report.clusters_created += usize::from(created);
            self.trace_assign(key, cid, created, true);
        }
        assign_span.finish();
        // Fold the step's additions into the centers before merging.
        self.recompute_centers();

        // Step 3: merge clusters whose centers are closer than ρ.
        let merge_span = self.metrics.merge_time.start();
        let merges = self.merge_step();
        report.merges = merges.len();
        merge_span.finish();
        self.recompute_centers();
        if self.tracer.is_enabled() {
            for (dst, src, moved) in merges {
                let merged = self.tracer.record(
                    EventDraft::new(EventKind::ClusterMerged)
                        .parent_opt(self.tracer.anchor(Scope::Cluster, dst.0))
                        .reference_opt(self.tracer.anchor(Scope::Cluster, src.0))
                        .uint("into", dst.0)
                        .uint("from", src.0)
                        .uint("moved_members", moved as u64),
                );
                if let Some(merged) = merged {
                    // Both ids now resolve to the merge event, so later
                    // links see the combined cluster's history.
                    self.tracer.set_anchor(Scope::Cluster, dst.0, merged);
                    self.tracer.set_anchor(Scope::Cluster, src.0, merged);
                }
            }
            let updated = self.tracer.record(
                EventDraft::new(EventKind::ClustersUpdated)
                    .int("now", now)
                    .uint("new_templates", report.new_templates as u64)
                    .uint("reassigned", report.reassigned as u64)
                    .uint("evicted", report.evicted as u64)
                    .uint("merges", report.merges as u64)
                    .uint("clusters", self.clusters.len() as u64)
                    .uint("templates", self.templates.len() as u64),
            );
            if let Some(updated) = updated {
                self.tracer.set_anchor(Scope::ClusterState, 0, updated);
            }
        }

        self.metrics.new_templates.add(report.new_templates as u64);
        self.metrics.reassigned.add(report.reassigned as u64);
        self.metrics.evicted.add(report.evicted as u64);
        self.metrics.merges.add(report.merges as u64);
        self.metrics.clusters_created.add(report.clusters_created as u64);
        self.metrics.num_clusters.set(self.clusters.len() as f64);
        self.metrics.num_templates.set(self.templates.len() as f64);
        report
    }

    /// Builds the step-1 lookup context from the current centers. Cosine
    /// lookups get a kd-tree over the unit-normalized centers; inverse-L2
    /// (and masked-feature) lookups fall back to scans, so no tree is built.
    fn assign_ctx(&self) -> AssignCtx {
        let tree = match self.config.metric {
            SimilarityMetric::Cosine => {
                let _build = self.metrics.kdtree_build_time.start();
                let items: Vec<(Vec<f64>, ClusterId)> = self
                    .clusters
                    .values()
                    .filter_map(|c| {
                        let n = qb_linalg::norm(&c.center);
                        (n > 0.0)
                            .then(|| (c.center.iter().map(|x| x / n).collect::<Vec<_>>(), c.id))
                    })
                    .collect();
                (!items.is_empty()).then(|| KdTree::build(items))
            }
            SimilarityMetric::InverseL2 => None,
        };
        AssignCtx { tree, fresh: Vec::new() }
    }

    /// Assigns one template to its best cluster (creating one if needed).
    /// Returns the chosen cluster and whether it was newly created.
    ///
    /// A joining member does **not** move the cluster center here — step-1
    /// lookups run against the centers frozen at the start of the step (the
    /// paper's non-recursive update), and `update` recomputes every center
    /// once the step completes. That freeze is what keeps `ctx.tree` valid
    /// across the whole step.
    fn assign(
        &mut self,
        key: TemplateKey,
        feature: TemplateFeature,
        volume: f64,
        last_seen: i64,
        ctx: &mut AssignCtx,
    ) -> (ClusterId, bool) {
        let best = self.nearest_center(&feature, ctx);
        match best {
            Some((cid, sim)) if sim > self.config.rho => {
                let cluster = self.clusters.get_mut(&cid).expect("lookup hit a live cluster");
                cluster.members.push(key);
                self.templates
                    .insert(key, TemplateState { feature, volume, last_seen, cluster: cid });
                (cid, false)
            }
            _ => {
                let cid = ClusterId(self.next_cluster);
                self.next_cluster += 1;
                self.clusters.insert(
                    cid,
                    Cluster {
                        id: cid,
                        members: vec![key],
                        center: feature.values.clone(),
                        volume,
                    },
                );
                self.templates
                    .insert(key, TemplateState { feature, volume, last_seen, cluster: cid });
                ctx.fresh.push(cid);
                (cid, true)
            }
        }
    }

    /// Emits the lineage event for one step-1 assignment, linking the
    /// member's template anchor to the cluster it landed in.
    fn trace_assign(&self, key: TemplateKey, cid: ClusterId, created: bool, reassigned: bool) {
        if !self.tracer.is_enabled() {
            return;
        }
        let template_anchor = self.tracer.anchor(Scope::Template, key);
        if created {
            let ev = self.tracer.record(
                EventDraft::new(EventKind::ClusterCreated)
                    .parent_opt(template_anchor)
                    .uint("cluster", cid.0)
                    .uint("template", key)
                    .flag("reassigned", reassigned),
            );
            if let Some(ev) = ev {
                self.tracer.set_anchor(Scope::Cluster, cid.0, ev);
            }
        } else {
            self.tracer.record(
                EventDraft::new(EventKind::ClusterAssigned)
                    .parent_opt(template_anchor)
                    .reference_opt(self.tracer.anchor(Scope::Cluster, cid.0))
                    .uint("cluster", cid.0)
                    .uint("template", key)
                    .flag("reassigned", reassigned),
            );
        }
    }

    /// Finds the most similar cluster center via the cycle's kd-tree
    /// (cosine) or a scan (inverse-L2, for which normalization does not
    /// apply). Clusters founded during the current step are not in the
    /// tree; they are scanned linearly from `ctx.fresh`.
    fn nearest_center(&self, feature: &TemplateFeature, ctx: &AssignCtx) -> Option<(ClusterId, f64)> {
        if self.clusters.is_empty() {
            return None;
        }
        match self.config.metric {
            // Masked features compare on a suffix; the kd-tree indexes
            // full vectors, so it only answers exactly for unmasked
            // features. Masked (new-template) lookups fall back to a
            // scan — they are rare relative to steady-state lookups.
            SimilarityMetric::Cosine if feature.valid_from == 0 => {
                let qn = qb_linalg::norm(&feature.values);
                if qn == 0.0 {
                    return None;
                }
                let mut best: Option<(ClusterId, f64)> = None;
                if let Some(tree) = &ctx.tree {
                    let q: Vec<f64> = feature.values.iter().map(|x| x / qn).collect();
                    if let Some((&cid, _)) = tree.nearest(&q) {
                        let sim =
                            self.config.metric.similarity(feature, &self.clusters[&cid].center);
                        best = Some((cid, sim));
                    }
                }
                for &cid in &ctx.fresh {
                    let sim = self.config.metric.similarity(feature, &self.clusters[&cid].center);
                    if best.is_none_or(|(_, b)| sim > b) {
                        best = Some((cid, sim));
                    }
                }
                best
            }
            _ => self.scan_nearest(feature),
        }
    }

    fn scan_nearest(&self, feature: &TemplateFeature) -> Option<(ClusterId, f64)> {
        // First-max: on similarity ties the lowest cluster id wins
        // (`clusters` iterates ids ascending). `Iterator::max_by` keeps the
        // *last* maximum, which made this path resolve ties to the highest
        // id while the kd-tree path kept its first candidate — the
        // divergence the testkit reference clusterer flagged.
        let mut best: Option<(ClusterId, f64)> = None;
        for c in self.clusters.values() {
            let sim = self.config.metric.similarity(feature, &c.center);
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((c.id, sim));
            }
        }
        best
    }

    /// Recomputes a single cluster's center and volume.
    fn update_center(&mut self, cid: ClusterId) {
        let Some(cluster) = self.clusters.get(&cid) else { return };
        let members = cluster.members.clone();
        if members.is_empty() {
            self.clusters.remove(&cid);
            return;
        }
        let dim = self.templates[&members[0]].feature.values.len();
        let mut center = vec![0.0; dim];
        let mut volume = 0.0;
        for m in &members {
            let s = &self.templates[m];
            for (c, v) in center.iter_mut().zip(&s.feature.values) {
                *c += v;
            }
            volume += s.volume;
        }
        for c in &mut center {
            *c /= members.len() as f64;
        }
        let cluster = self.clusters.get_mut(&cid).expect("checked");
        cluster.center = center;
        cluster.volume = volume;
    }

    fn recompute_centers(&mut self) {
        let ids: Vec<ClusterId> = self.clusters.keys().copied().collect();
        for cid in ids {
            self.update_center(cid);
        }
    }

    /// Merges cluster pairs whose centers exceed ρ similarity. Greedy,
    /// most-similar pair first, largest clusters absorb smaller ones.
    ///
    /// The pairwise similarity table is computed once up front; after each
    /// merge only the rows touching the removed source and the moved
    /// destination center are refreshed. Between merges no other center
    /// moves, so the table always matches what a full rescan would produce
    /// — m merges over k clusters cost O((k² + m·k)·d) center comparisons
    /// instead of the old O(m·k²·d).
    ///
    /// Returns `(dst, src, moved_members)` per merge, in merge order.
    fn merge_step(&mut self) -> Vec<(ClusterId, ClusterId, usize)> {
        let ids: Vec<ClusterId> = self.clusters.keys().copied().collect();
        let mut sims: BTreeMap<(ClusterId, ClusterId), f64> = BTreeMap::new();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                let sim = self.config.metric.center_similarity(
                    &self.clusters[&ids[i]].center,
                    &self.clusters[&ids[j]].center,
                );
                sims.insert((ids[i], ids[j]), sim);
            }
        }
        let mut merges = Vec::new();
        loop {
            // Ascending key order with strictly-greater replacement picks
            // the same pair as the old full scan, ties included.
            let mut best: Option<((ClusterId, ClusterId), f64)> = None;
            for (&pair, &sim) in &sims {
                if sim > self.config.rho && best.is_none_or(|(_, b)| sim > b) {
                    best = Some((pair, sim));
                }
            }
            let Some(((a, b), _)) = best else { break };
            // Absorb the smaller into the larger.
            let (dst, src) = if self.clusters[&a].members.len() >= self.clusters[&b].members.len()
            {
                (a, b)
            } else {
                (b, a)
            };
            let moved = self.clusters.remove(&src).expect("listed").members;
            for m in &moved {
                self.templates.get_mut(m).expect("member tracked").cluster = dst;
            }
            merges.push((dst, src, moved.len()));
            self.clusters.get_mut(&dst).expect("listed").members.extend(moved);
            self.update_center(dst);
            // Only `dst`'s center changed and `src` is gone: drop both
            // clusters' rows, then re-derive `dst`'s row from the moved
            // center.
            sims.retain(|&(x, y), _| x != src && y != src && x != dst && y != dst);
            let others: Vec<ClusterId> =
                self.clusters.keys().copied().filter(|&c| c != dst).collect();
            for other in others {
                let sim = self.config.metric.center_similarity(
                    &self.clusters[&dst].center,
                    &self.clusters[&other].center,
                );
                let key = if other < dst { (other, dst) } else { (dst, other) };
                sims.insert(key, sim);
            }
        }
        merges
    }

    /// All clusters, unordered.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.clusters.values()
    }

    /// The `k` highest-volume clusters, descending (§5.3 pruning).
    pub fn largest_clusters(&self, k: usize) -> Vec<&Cluster> {
        let mut all: Vec<&Cluster> = self.clusters.values().collect();
        all.sort_by(|a, b| b.volume.total_cmp(&a.volume).then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    /// Fraction of total volume covered by the `k` largest clusters
    /// (Figure 5).
    pub fn coverage_ratio(&self, k: usize) -> f64 {
        let total: f64 = self.clusters.values().map(|c| c.volume).sum();
        if total == 0.0 {
            return 0.0;
        }
        let top: f64 = self.largest_clusters(k).iter().map(|c| c.volume).sum();
        top / total
    }

    /// The cluster a template currently belongs to.
    pub fn cluster_of(&self, key: TemplateKey) -> Option<ClusterId> {
        self.templates.get(&key).map(|s| s.cluster)
    }

    /// Number of live clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of tracked templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Exports the complete mutable state as plain data (durable-snapshot
    /// support). Templates and clusters are emitted in key order; member
    /// lists keep their insertion order, which step-1 assignment depends
    /// on for tie-breaking.
    pub fn export_state(&self) -> ClustererState {
        ClustererState {
            templates: self
                .templates
                .iter()
                .map(|(&key, s)| TemplateRecord {
                    key,
                    feature_values: s.feature.values.clone(),
                    feature_valid_from: s.feature.valid_from,
                    volume: s.volume,
                    last_seen: s.last_seen,
                    cluster: s.cluster.0,
                })
                .collect(),
            clusters: self
                .clusters
                .values()
                .map(|c| ClusterRecord {
                    id: c.id.0,
                    members: c.members.clone(),
                    center: c.center.clone(),
                    volume: c.volume,
                })
                .collect(),
            next_cluster: self.next_cluster,
            seen_since_update: self.seen_since_update.iter().copied().collect(),
            unseen_since_update: self.unseen_since_update as u64,
            baseline_unseen_ratio: self.baseline_unseen_ratio,
        }
    }

    /// Rebuilds a clusterer from exported state. `config` must match the
    /// configuration of the exporting instance.
    pub fn restore(config: ClustererConfig, state: ClustererState) -> Self {
        let mut c = OnlineClusterer::new(config);
        c.templates = state
            .templates
            .into_iter()
            .map(|t| {
                (
                    t.key,
                    TemplateState {
                        feature: TemplateFeature {
                            values: t.feature_values,
                            valid_from: t.feature_valid_from,
                        },
                        volume: t.volume,
                        last_seen: t.last_seen,
                        cluster: ClusterId(t.cluster),
                    },
                )
            })
            .collect();
        c.clusters = state
            .clusters
            .into_iter()
            .map(|r| {
                (
                    ClusterId(r.id),
                    Cluster {
                        id: ClusterId(r.id),
                        members: r.members,
                        center: r.center,
                        volume: r.volume,
                    },
                )
            })
            .collect();
        c.next_cluster = state.next_cluster;
        c.seen_since_update = state.seen_since_update.into_iter().collect();
        c.unseen_since_update = state.unseen_since_update as usize;
        c.baseline_unseen_ratio = state.baseline_unseen_ratio;
        c
    }
}

/// Plain-data snapshot of one tracked template.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateRecord {
    pub key: TemplateKey,
    pub feature_values: Vec<f64>,
    pub feature_valid_from: usize,
    pub volume: f64,
    pub last_seen: i64,
    pub cluster: u64,
}

/// Plain-data snapshot of one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRecord {
    pub id: u64,
    /// Members in insertion order (assignment tie-breaking depends on it).
    pub members: Vec<TemplateKey>,
    pub center: Vec<f64>,
    pub volume: f64,
}

/// Plain-data snapshot of an [`OnlineClusterer`] (durable-state export).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClustererState {
    /// Tracked templates in key order.
    pub templates: Vec<TemplateRecord>,
    /// Live clusters in id order.
    pub clusters: Vec<ClusterRecord>,
    pub next_cluster: u64,
    /// Distinct keys observed since the last update, ascending.
    pub seen_since_update: Vec<TemplateKey>,
    pub unseen_since_update: u64,
    pub baseline_unseen_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(values: &[f64]) -> TemplateFeature {
        TemplateFeature::full(values.to_vec())
    }

    fn snap(key: TemplateKey, values: &[f64], volume: f64) -> TemplateSnapshot {
        TemplateSnapshot { key, feature: feat(values), volume, last_seen: 0 }
    }

    fn clusterer() -> OnlineClusterer {
        OnlineClusterer::new(ClustererConfig::default())
    }

    #[test]
    fn observe_batch_matches_per_key_observation() {
        let mut per_key = clusterer();
        let mut batched = clusterer();
        // Ten known templates, then a tick mixing knowns and unknowns.
        let known: Vec<TemplateSnapshot> =
            (0..10).map(|k| snap(k, &[1.0, 2.0, 3.0], 1.0)).collect();
        per_key.update(known.clone(), 0);
        batched.update(known, 0);

        let tick: Vec<TemplateKey> = (5..25).chain(5..25).collect();
        let mut last = false;
        for &k in &tick {
            last = per_key.observe(k);
        }
        let decision = batched.observe_batch(&tick);
        assert_eq!(decision, last, "batched trigger matches the last per-key decision");
        assert!(decision, "15 unseen of 20 distinct crosses the default trigger");

        // The post-tick state is identical: both fold the same churn into
        // the adaptive baseline on the next update.
        per_key.update(Vec::new(), 1);
        batched.update(Vec::new(), 1);
        assert_eq!(per_key.effective_trigger(), batched.effective_trigger());
    }

    #[test]
    fn first_template_creates_cluster() {
        let mut c = clusterer();
        let r = c.update(vec![snap(1, &[1.0, 2.0, 3.0], 10.0)], 0);
        assert_eq!(r.new_templates, 1);
        assert_eq!(r.clusters_created, 1);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn similar_patterns_share_cluster() {
        let mut c = clusterer();
        // Same shape, different scale: cosine similarity 1.0.
        c.update(
            vec![snap(1, &[1.0, 2.0, 3.0, 4.0], 1.0), snap(2, &[10.0, 20.0, 30.0, 40.0], 1.0)],
            0,
        );
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.cluster_of(1), c.cluster_of(2));
    }

    #[test]
    fn dissimilar_patterns_split() {
        let mut c = clusterer();
        c.update(vec![snap(1, &[1.0, 0.0, 0.0], 1.0), snap(2, &[0.0, 0.0, 1.0], 1.0)], 0);
        assert_eq!(c.num_clusters(), 2);
        assert_ne!(c.cluster_of(1), c.cluster_of(2));
    }

    #[test]
    fn center_is_arithmetic_mean() {
        let mut c = clusterer();
        c.update(vec![snap(1, &[2.0, 4.0], 1.0), snap(2, &[4.0, 8.0], 1.0)], 0);
        let clusters: Vec<&Cluster> = c.clusters().collect();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].center, vec![3.0, 6.0]);
    }

    #[test]
    fn membership_similarity_invariant_holds() {
        // After an update, every member of a multi-member cluster is within
        // ρ of its center (the §5.2 guarantee).
        let mut c = clusterer();
        let snaps: Vec<TemplateSnapshot> = (0..20)
            .map(|i| {
                let phase = (i % 4) as f64;
                let values: Vec<f64> =
                    (0..24).map(|h| ((h as f64 + phase) * 0.3).sin().max(0.0) + 0.1).collect();
                snap(i, &values, 1.0)
            })
            .collect();
        c.update(snaps, 0);
        // Run a second cycle so step 2 has had a chance to settle.
        let snaps2: Vec<TemplateSnapshot> = (0..20)
            .map(|i| {
                let phase = (i % 4) as f64;
                let values: Vec<f64> =
                    (0..24).map(|h| ((h as f64 + phase) * 0.3).sin().max(0.0) + 0.1).collect();
                snap(i, &values, 1.0)
            })
            .collect();
        c.update(snaps2, 0);
        for cluster in c.clusters() {
            if cluster.members.len() < 2 {
                continue;
            }
            for &m in &cluster.members {
                let f = feat(
                    &c.templates[&m].feature.values,
                );
                let sim = SimilarityMetric::Cosine.similarity(&f, &cluster.center);
                assert!(sim > 0.8, "member {m} sim {sim} below rho");
            }
        }
    }

    #[test]
    fn eviction_removes_idle_templates() {
        let cfg = ClustererConfig { eviction_idle: 100, ..ClustererConfig::default() };
        let mut c = OnlineClusterer::new(cfg);
        c.update(vec![snap(1, &[1.0, 2.0], 5.0)], 0);
        assert_eq!(c.num_templates(), 1);
        let r = c.update(vec![], 1000);
        assert_eq!(r.evicted, 1);
        assert_eq!(c.num_templates(), 0);
        assert_eq!(c.num_clusters(), 0);
    }

    #[test]
    fn merge_combines_converged_clusters() {
        let mut c = clusterer();
        // Two templates created in different updates far apart, then drift
        // to the same pattern.
        c.update(vec![snap(1, &[1.0, 0.0, 0.0, 0.1], 1.0)], 0);
        c.update(vec![snap(2, &[0.0, 0.0, 1.0, 0.1], 1.0)], 0);
        assert_eq!(c.num_clusters(), 2);
        // Both now share one pattern.
        let r = c.update(
            vec![
                TemplateSnapshot { key: 1, feature: feat(&[1.0, 1.0, 1.0, 1.0]), volume: 1.0, last_seen: 0 },
                TemplateSnapshot { key: 2, feature: feat(&[2.0, 2.0, 2.0, 2.0]), volume: 1.0, last_seen: 0 },
            ],
            0,
        );
        assert_eq!(c.num_clusters(), 1, "report: {r:?}");
    }

    #[test]
    fn volume_pruning_orders_clusters() {
        let mut c = clusterer();
        c.update(
            vec![
                snap(1, &[1.0, 0.0, 0.0], 100.0),
                snap(2, &[0.0, 1.0, 0.0], 500.0),
                snap(3, &[0.0, 0.0, 1.0], 10.0),
            ],
            0,
        );
        let top = c.largest_clusters(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].volume, 500.0);
        assert_eq!(top[1].volume, 100.0);
        let cov = c.coverage_ratio(2);
        assert!((cov - 600.0 / 610.0).abs() < 1e-12);
    }

    #[test]
    fn observe_triggers_on_unseen_ratio() {
        let mut c = clusterer();
        c.update(vec![snap(1, &[1.0, 1.0], 1.0)], 0);
        // Mostly-known observations: no trigger.
        let mut triggered = false;
        for _ in 0..20 {
            triggered |= c.observe(1);
        }
        assert!(!triggered);
        // Burst of unseen templates: trigger fires.
        let mut fired = false;
        for k in 100..120 {
            fired |= c.observe(k);
        }
        assert!(fired);
    }

    #[test]
    fn reassignment_when_pattern_drifts() {
        let mut c = clusterer();
        c.update(
            vec![snap(1, &[1.0, 1.0, 0.0, 0.0], 1.0), snap(2, &[1.0, 1.0, 0.1, 0.0], 1.0)],
            0,
        );
        assert_eq!(c.num_clusters(), 1);
        // Template 2's pattern flips to the opposite shape.
        let r = c.update(
            vec![snap(1, &[1.0, 1.0, 0.0, 0.0], 1.0), snap(2, &[0.0, 0.0, 1.0, 1.0], 1.0)],
            0,
        );
        assert_eq!(c.num_clusters(), 2, "{r:?}");
        assert_ne!(c.cluster_of(1), c.cluster_of(2));
    }

    #[test]
    fn inverse_l2_metric_clusters_logical_features() {
        let cfg = ClustererConfig {
            metric: SimilarityMetric::InverseL2,
            rho: 0.5, // similarity 1/(1+d) > 0.5 ⇔ distance < 1
            ..ClustererConfig::default()
        };
        let mut c = OnlineClusterer::new(cfg);
        c.update(
            vec![
                snap(1, &[1.0, 0.0, 3.0], 1.0),
                snap(2, &[1.0, 0.5, 3.0], 1.0),  // distance 0.5 from #1
                snap(3, &[9.0, 9.0, 9.0], 1.0), // far away
            ],
            0,
        );
        assert_eq!(c.cluster_of(1), c.cluster_of(2));
        assert_ne!(c.cluster_of(1), c.cluster_of(3));
    }

    #[test]
    #[should_panic(expected = "rho must be in [0, 1]")]
    fn invalid_rho_panics() {
        OnlineClusterer::new(ClustererConfig { rho: 1.5, ..ClustererConfig::default() });
    }

    /// Regression: the unseen ratio is over *distinct* templates. A hot
    /// template observed hundreds of times used to inflate the denominator
    /// and mask a burst of genuinely new templates.
    #[test]
    fn hot_template_cannot_mask_unseen_burst() {
        let mut c = clusterer();
        c.update(vec![snap(1, &[1.0, 1.0], 1.0)], 0);
        for _ in 0..500 {
            assert!(!c.observe(1), "a known hot template alone must not fire");
        }
        // Nine genuinely new templates arrive: 9 of 10 distinct keys are
        // unseen, far above the 0.2 trigger. The 500 repeats must not
        // drown them out.
        let mut fired = false;
        for k in 100..109 {
            fired |= c.observe(k);
        }
        assert!(fired, "unseen burst was masked by repeat observations");
    }

    /// Regression: clusters founded *during* a step must be visible to
    /// later lookups in the same step even though they are not in the
    /// cycle's kd-tree (the fresh-cluster scan).
    #[test]
    fn template_joins_cluster_founded_same_step() {
        let mut c = clusterer();
        // a ⊥ b; c is parallel to b. All arrive in one update, so b's
        // cluster exists only in `ctx.fresh` when c is assigned.
        let r = c.update(
            vec![
                snap(1, &[1.0, 0.0, 0.0], 1.0),
                snap(2, &[0.0, 1.0, 0.0], 1.0),
                snap(3, &[0.0, 2.0, 0.0], 1.0),
            ],
            0,
        );
        assert_eq!(r.clusters_created, 2, "{r:?}");
        assert_eq!(c.cluster_of(2), c.cluster_of(3));
        assert_ne!(c.cluster_of(1), c.cluster_of(2));
    }

    /// Regression: `scan_nearest` must resolve similarity ties to the
    /// lowest cluster id, matching the kd-tree path. `Iterator::max_by`
    /// keeps the *last* maximum, so a template equidistant from two
    /// centers used to join the higher-id cluster.
    #[test]
    fn scan_nearest_tie_breaks_to_lowest_id() {
        let cfg = ClustererConfig {
            metric: SimilarityMetric::InverseL2,
            rho: 0.4, // 1/(1+d) > 0.4 ⇔ d < 1.5
            ..ClustererConfig::default()
        };
        let mut c = OnlineClusterer::new(cfg);
        // Two singleton clusters 2.0 apart (sim 1/3: no merge).
        c.update(vec![snap(1, &[0.0, 0.0], 1.0)], 0);
        c.update(vec![snap(2, &[2.0, 0.0], 1.0)], 0);
        assert_eq!(c.num_clusters(), 2);
        // A template exactly midway is within ρ of both centers (sim 0.5
        // each): the tie must go to the older (lower-id) cluster.
        c.update(
            vec![
                snap(1, &[0.0, 0.0], 1.0),
                snap(2, &[2.0, 0.0], 1.0),
                snap(3, &[1.0, 0.0], 1.0),
            ],
            0,
        );
        assert_eq!(c.cluster_of(3), c.cluster_of(1), "tie must favor the lowest cluster id");
    }

    #[test]
    fn state_round_trip_continues_identically() {
        let mut live = OnlineClusterer::new(ClustererConfig {
            adaptive_trigger: true,
            ..ClustererConfig::default()
        });
        // Build up clusters, churn baseline, and mid-period observations.
        live.update(
            vec![
                snap(1, &[1.0, 0.0, 0.0], 5.0),
                snap(2, &[0.0, 1.0, 0.0], 3.0),
                snap(3, &[2.0, 0.1, 0.0], 2.0),
            ],
            0,
        );
        for k in [1, 2, 3, 40, 41] {
            live.observe(k);
        }
        let exported = live.export_state();
        let mut restored =
            OnlineClusterer::restore(ClustererConfig { adaptive_trigger: true, ..ClustererConfig::default() }, exported.clone());
        assert_eq!(restored.export_state(), exported, "restore must be lossless");
        assert_eq!(restored.num_clusters(), live.num_clusters());
        assert_eq!(restored.num_templates(), live.num_templates());
        assert_eq!(restored.effective_trigger(), live.effective_trigger());

        // Identical behavior from here on: same trigger decisions, same
        // update reports, same resulting state.
        for k in 50..80 {
            assert_eq!(live.observe(k), restored.observe(k));
        }
        let snaps = |off: u64| {
            vec![
                snap(1, &[1.0, 0.0, 0.1], 5.0),
                snap(2, &[0.0, 1.0, 0.0], 3.0),
                snap(3, &[2.0, 0.0, 0.0], 2.0),
                snap(60 + off, &[0.5, 0.5, 0.5], 1.0),
            ]
        };
        let ra = live.update(snaps(0), 10);
        let rb = restored.update(snaps(0), 10);
        assert_eq!(ra, rb);
        assert_eq!(live.export_state(), restored.export_state());
    }

    #[test]
    fn recorder_captures_cycle_metrics() {
        let rec = Recorder::new();
        let mut c = clusterer();
        c.set_recorder(&rec);
        c.update(vec![snap(1, &[1.0, 0.0], 1.0), snap(2, &[0.0, 1.0], 1.0)], 0);
        let s = rec.snapshot();
        assert_eq!(s.counters["clusterer.new_templates"], 2);
        assert_eq!(s.counters["clusterer.clusters_created"], 2);
        assert_eq!(s.counters["clusterer.merges"], 0);
        assert_eq!(s.gauges["clusterer.num_clusters"], 2.0);
        assert_eq!(s.gauges["clusterer.num_templates"], 2.0);
        assert_eq!(s.histograms["clusterer.update"].count, 1);
        assert_eq!(s.histograms["clusterer.kdtree_build"].count, 1);
        assert_eq!(s.histograms["clusterer.assign"].count, 1);
        assert_eq!(s.histograms["clusterer.merge"].count, 1);
    }

    #[test]
    fn tracer_captures_cluster_churn_lineage() {
        let tracer = Tracer::enabled();
        let mut c = clusterer();
        c.set_tracer(&tracer);
        // Two orthogonal singletons, then one joins an existing cluster.
        c.update(vec![snap(1, &[1.0, 0.0, 0.0], 1.0), snap(2, &[0.0, 1.0, 0.0], 1.0)], 0);
        c.update(
            vec![
                snap(1, &[1.0, 0.0, 0.0], 1.0),
                snap(2, &[0.0, 1.0, 0.0], 1.0),
                snap(3, &[2.0, 0.0, 0.0], 1.0),
            ],
            0,
        );
        let view = tracer.view();
        assert_eq!(view.of_kind(EventKind::ClusterCreated).count(), 2);
        assert_eq!(view.of_kind(EventKind::ClusterAssigned).count(), 1);
        assert_eq!(view.of_kind(EventKind::ClustersUpdated).count(), 2);
        assert_eq!(view.of_kind(EventKind::StageSpan).count(), 2);
        // The assignment links back to the founding cluster event.
        let assigned = view.latest(EventKind::ClusterAssigned).unwrap();
        let founding = tracer.anchor(Scope::Cluster, 0).unwrap();
        assert!(assigned.refs.contains(&founding));
        assert!(tracer.anchor(Scope::ClusterState, 0).is_some());
    }

    #[test]
    fn tracer_captures_merges_and_evictions() {
        let tracer = Tracer::enabled();
        let cfg = ClustererConfig { eviction_idle: 100, ..ClustererConfig::default() };
        let mut c = OnlineClusterer::new(cfg);
        c.set_tracer(&tracer);
        c.update(vec![snap(1, &[1.0, 0.0, 0.0, 0.1], 1.0)], 0);
        c.update(vec![snap(2, &[0.0, 0.0, 1.0, 0.1], 1.0)], 0);
        // Drift to one pattern: the clusters merge.
        c.update(
            vec![
                TemplateSnapshot { key: 1, feature: feat(&[1.0, 1.0, 1.0, 1.0]), volume: 1.0, last_seen: 0 },
                TemplateSnapshot { key: 2, feature: feat(&[2.0, 2.0, 2.0, 2.0]), volume: 1.0, last_seen: 0 },
            ],
            0,
        );
        // Then both go idle long enough to evict.
        c.update(vec![], 1_000);
        let view = tracer.view();
        assert_eq!(view.of_kind(EventKind::ClusterMerged).count(), 1);
        assert_eq!(view.of_kind(EventKind::ClusterEvicted).count(), 2);
        let merged = view.latest(EventKind::ClusterMerged).unwrap().id;
        // Both merged ids now anchor to the merge event.
        assert_eq!(tracer.anchor(Scope::Cluster, 0), Some(merged));
        assert_eq!(tracer.anchor(Scope::Cluster, 1), Some(merged));
    }

    /// Regression for the incremental merge table: after a merge, rows
    /// involving the merged pair must be refreshed from the *moved*
    /// destination center. A stale (b, c) entry here would chain a second
    /// merge that a full rescan would not perform.
    #[test]
    fn merge_table_refreshes_moved_center() {
        let mut c = clusterer();
        // Three singleton clusters created in separate updates (mutually
        // orthogonal at creation, so no step-1 co-assignment).
        c.update(vec![snap(1, &[1.0, 0.0, 0.0, 0.0], 1.0)], 0);
        c.update(vec![snap(2, &[0.0, 1.0, 0.0, 0.0], 1.0)], 0);
        c.update(vec![snap(3, &[0.0, 0.0, 1.0, 0.0], 1.0)], 0);
        assert_eq!(c.num_clusters(), 3);
        // Drift to unit vectors at 0°, 35° and 70°: cos 35° ≈ 0.8192
        // exceeds ρ for (a, b) and (b, c), but once a and b merge, the
        // combined center sits at 17.5° — cos 52.5° ≈ 0.61 from c, so the
        // old (b, c) similarity must NOT trigger a second merge.
        let r = c.update(
            vec![
                snap(1, &[1.0, 0.0, 0.0, 0.0], 1.0),
                snap(2, &[0.8192, 0.5736, 0.0, 0.0], 1.0),
                snap(3, &[0.3420, 0.9397, 0.0, 0.0], 1.0),
            ],
            0,
        );
        assert_eq!(r.merges, 1, "{r:?}");
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(1), c.cluster_of(2));
        assert_ne!(c.cluster_of(1), c.cluster_of(3));
    }
}

#[cfg(test)]
mod adaptive_trigger_tests {
    use super::*;

    fn feat(values: &[f64]) -> TemplateFeature {
        TemplateFeature::full(values.to_vec())
    }

    fn snap(key: TemplateKey) -> TemplateSnapshot {
        TemplateSnapshot { key, feature: feat(&[1.0, 2.0]), volume: 1.0, last_seen: 0 }
    }

    /// Simulates periods of observations with a given churn ratio and
    /// returns how many triggers fired.
    fn run_periods(
        cl: &mut OnlineClusterer,
        periods: usize,
        per_period: usize,
        churn: f64,
        key_base: &mut u64,
    ) -> usize {
        let mut fires = 0;
        for _ in 0..periods {
            let mut fresh = 0;
            // Register the period's population with new templates evenly
            // interleaved among known ones (as in a real stream).
            for i in 0..per_period {
                let is_new = (((i + 1) as f64) * churn).floor() > ((i as f64) * churn).floor();
                let key = if is_new {
                    *key_base += 1;
                    fresh += 1;
                    1_000_000 + *key_base
                } else {
                    i as u64
                };
                if cl.observe(key) {
                    fires += 1;
                }
            }
            // Periodic update absorbs the new keys and learns the baseline.
            let mut snaps: Vec<TemplateSnapshot> =
                (0..per_period - fresh).map(|i| snap(i as u64)).collect();
            for j in 0..fresh {
                snaps.push(snap(1_000_000 + *key_base - j as u64));
            }
            cl.update(snaps, 0);
        }
        fires
    }

    #[test]
    fn fixed_trigger_fires_constantly_on_churny_workload() {
        let mut cl = OnlineClusterer::new(ClustererConfig {
            new_template_trigger: 0.2,
            adaptive_trigger: false,
            ..ClustererConfig::default()
        });
        let mut kb = 0;
        // 40% steady churn: the fixed 0.2 threshold fires every period.
        let fires = run_periods(&mut cl, 6, 40, 0.4, &mut kb);
        assert!(fires >= 6, "expected constant firing, got {fires}");
    }

    #[test]
    fn adaptive_trigger_learns_baseline_churn_but_fires_on_phase_switch() {
        let mut cl = OnlineClusterer::new(ClustererConfig {
            new_template_trigger: 0.2,
            adaptive_trigger: true,
            ..ClustererConfig::default()
        });
        let mut kb = 0;
        // Warm-up periods teach the baseline (40% churn is normal here).
        run_periods(&mut cl, 6, 40, 0.4, &mut kb);
        assert!(
            cl.effective_trigger() > 0.8,
            "baseline should have risen: {}",
            cl.effective_trigger()
        );
        // Steady churn no longer fires...
        let steady_fires = run_periods(&mut cl, 3, 40, 0.4, &mut kb);
        assert_eq!(steady_fires, 0, "steady churn must not fire adaptively");
        // ...but a full template swap (phase switch) still does.
        let mut fired = false;
        for i in 0..40 {
            fired |= cl.observe(2_000_000 + i);
        }
        assert!(fired, "a 100% unseen burst must fire even adaptively");
    }

    #[test]
    fn adaptive_floor_is_configured_trigger() {
        let cl = OnlineClusterer::new(ClustererConfig {
            new_template_trigger: 0.3,
            adaptive_trigger: true,
            ..ClustererConfig::default()
        });
        // With no learned baseline the effective trigger is at least the
        // configured constant.
        assert!(cl.effective_trigger() >= 0.3);
    }
}
