//! kd-tree for nearest-center lookup (§5.2: "We use a kd-tree to allow
//! QB5000 to quickly find the closest center of existing clusters to the
//! template in a high-dimensional space").
//!
//! The tree stores points with an associated payload and answers
//! nearest-neighbor queries under squared Euclidean distance. The Clusterer
//! inserts *unit-normalized* cluster centers, for which
//! `‖a − b‖² = 2 − 2·cos(a, b)`: the Euclidean nearest neighbor is exactly
//! the most cosine-similar center.
//!
//! Centers move every update cycle, so the tree is rebuilt per cycle
//! (`O(k log k)` for `k` clusters) rather than updated in place — rebuild
//! cost is trivial next to feature extraction and keeps the tree balanced.

/// A static kd-tree over `f64` points with payloads of type `T`.
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    nodes: Vec<Node<T>>,
    dim: usize,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node<T> {
    point: Vec<f64>,
    payload: T,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl<T> KdTree<T> {
    /// Builds a balanced tree from `(point, payload)` pairs.
    ///
    /// # Panics
    /// Panics if points have inconsistent dimensions.
    pub fn build(items: Vec<(Vec<f64>, T)>) -> Self {
        let dim = items.first().map_or(0, |(p, _)| p.len());
        for (p, _) in &items {
            assert_eq!(p.len(), dim, "KdTree::build: inconsistent dimensions");
        }
        let mut tree = Self { nodes: Vec::with_capacity(items.len()), dim, root: None };
        let mut items: Vec<Option<(Vec<f64>, T)>> = items.into_iter().map(Some).collect();
        let n = items.len();
        if n > 0 {
            let mut order: Vec<usize> = (0..n).collect();
            tree.root = tree.build_rec(&mut items, &mut order, 0);
        }
        tree
    }

    fn build_rec(
        &mut self,
        items: &mut [Option<(Vec<f64>, T)>],
        order: &mut [usize],
        depth: usize,
    ) -> Option<usize> {
        if order.is_empty() {
            return None;
        }
        let axis = if self.dim == 0 { 0 } else { depth % self.dim };
        // Median split along the axis.
        order.sort_by(|&a, &b| {
            let pa = items[a].as_ref().expect("unconsumed").0[axis];
            let pb = items[b].as_ref().expect("unconsumed").0[axis];
            pa.total_cmp(&pb)
        });
        let mid = order.len() / 2;
        let idx = order[mid];
        let (point, payload) = items[idx].take().expect("median item consumed once");
        let node_idx = self.nodes.len();
        self.nodes.push(Node { point, payload, axis, left: None, right: None });

        // Split the order slice around the median (excluding it).
        let (left_order, rest) = order.split_at_mut(mid);
        let right_order = &mut rest[1..];
        let left = self.build_rec(items, left_order, depth + 1);
        let right = self.build_rec(items, right_order, depth + 1);
        self.nodes[node_idx].left = left;
        self.nodes[node_idx].right = right;
        Some(node_idx)
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the payload and squared Euclidean distance of the nearest
    /// point to `query`, or `None` for an empty tree.
    ///
    /// Equidistant points tie-break on the smallest payload, so the answer
    /// is independent of tree layout (and therefore of insertion order) —
    /// a linear scan with the same rule is an exact oracle for this method.
    ///
    /// # Panics
    /// Panics if `query` has the wrong dimension.
    pub fn nearest(&self, query: &[f64]) -> Option<(&T, f64)>
    where
        T: Ord,
    {
        let root = self.root?;
        assert_eq!(query.len(), self.dim, "KdTree::nearest: dimension mismatch");
        let mut best: Option<(usize, f64)> = None;
        self.nearest_rec(root, query, &mut best);
        best.map(|(idx, d)| (&self.nodes[idx].payload, d))
    }

    fn nearest_rec(&self, node_idx: usize, query: &[f64], best: &mut Option<(usize, f64)>)
    where
        T: Ord,
    {
        let node = &self.nodes[node_idx];
        let d = qb_linalg::sq_l2_distance(&node.point, query);
        let improves = match *best {
            None => true,
            // Strictly closer, or exactly as close with a smaller payload.
            // Tie-breaking by traversal order instead made the winner
            // depend on where the duplicate landed in the tree.
            Some((bi, bd)) => d < bd || (d == bd && node.payload < self.nodes[bi].payload),
        };
        if improves {
            *best = Some((node_idx, d));
        }
        let delta = query[node.axis] - node.point[node.axis];
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if let Some(n) = near {
            self.nearest_rec(n, query, best);
        }
        // Descend the far side if the splitting plane is no farther than
        // the current best; `<=` (not `<`) so an equidistant point across
        // the plane still gets a chance to win its payload tie-break.
        if let Some(f) = far {
            if delta * delta <= best.expect("set above").1 {
                self.nearest_rec(f, query, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_tree_returns_none() {
        let t: KdTree<u32> = KdTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(&[]), None);
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![(vec![1.0, 2.0], "a")]);
        let (p, d) = t.nearest(&[1.0, 2.0]).unwrap();
        assert_eq!(*p, "a");
        assert_eq!(d, 0.0);
    }

    #[test]
    fn nearest_among_grid() {
        let mut items = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                items.push((vec![x as f64, y as f64], (x, y)));
            }
        }
        let t = KdTree::build(items);
        let (p, _) = t.nearest(&[2.2, 3.9]).unwrap();
        assert_eq!(*p, (2, 4));
    }

    #[test]
    fn matches_linear_scan_randomized() {
        let mut rng = SmallRng::seed_from_u64(99);
        for dim in [2usize, 3, 8, 16] {
            let points: Vec<(Vec<f64>, usize)> = (0..200)
                .map(|i| ((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect(), i))
                .collect();
            let tree = KdTree::build(points.clone());
            for _ in 0..50 {
                let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let (got, got_d) = tree.nearest(&q).unwrap();
                let (want, want_d) = points
                    .iter()
                    .map(|(p, i)| (i, qb_linalg::sq_l2_distance(p, &q)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap();
                assert_eq!(got, want, "dim={dim}");
                assert!((got_d - want_d).abs() < 1e-12);
            }
        }
    }

    /// Regression: equidistant points must tie-break on the smallest
    /// payload regardless of tree layout. Before the fix the winner was
    /// whichever duplicate the traversal reached first.
    #[test]
    fn duplicate_points_tie_break_on_payload() {
        let t = KdTree::build(vec![(vec![1.0], 2), (vec![1.0], 1), (vec![2.0], 3)]);
        let (p, d) = t.nearest(&[1.0]).unwrap();
        assert_eq!(*p, 1);
        assert_eq!(d, 0.0);
        // Same duplicates in the opposite insertion order: same winner.
        let t = KdTree::build(vec![(vec![1.0], 1), (vec![1.0], 2), (vec![2.0], 3)]);
        assert_eq!(*t.nearest(&[1.0]).unwrap().0, 1);
    }

    /// An equidistant point on the far side of a splitting plane still wins
    /// its payload tie-break (the pruning test must use `<=`, not `<`).
    #[test]
    fn tie_across_splitting_plane_is_found() {
        // Query 1.0 sits exactly between 0.0 and 2.0; the smaller payload
        // lives across the plane from wherever the search descends first.
        for pts in [vec![(vec![0.0], 1), (vec![2.0], 0)], vec![(vec![0.0], 0), (vec![2.0], 1)]] {
            let t = KdTree::build(pts);
            assert_eq!(*t.nearest(&[1.0]).unwrap().0, 0);
        }
    }

    #[test]
    fn unit_vectors_nearest_is_most_cosine_similar() {
        // The Clusterer's invariant: for unit vectors, argmin ‖a−b‖ is
        // argmax cos(a, b).
        let mut rng = SmallRng::seed_from_u64(5);
        let normalize = |v: Vec<f64>| {
            let n = qb_linalg::norm(&v);
            v.into_iter().map(|x| x / n).collect::<Vec<_>>()
        };
        let points: Vec<(Vec<f64>, usize)> = (0..100)
            .map(|i| (normalize((0..6).map(|_| rng.gen_range(0.0..1.0)).collect()), i))
            .collect();
        let tree = KdTree::build(points.clone());
        for _ in 0..30 {
            let q = normalize((0..6).map(|_| rng.gen_range(0.0..1.0)).collect());
            let (got, _) = tree.nearest(&q).unwrap();
            let want = points
                .iter()
                .map(|(p, i)| (i, qb_linalg::cosine_similarity(p, &q)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0;
            assert_eq!(got, want);
        }
    }
}
