//! Arrival-rate feature extraction (§5.1).
//!
//! "QB5000 first randomly samples timestamps before the current time point.
//! Then for each series of arrival rate history, QB5000 takes the subset of
//! values at those timestamps to form a vector. ... Our current
//! implementation uses 10k time points in the last month of a template's
//! arrival rate history as its feature vector."
//!
//! All templates share the same sampled-timestamp set so their vectors are
//! coordinate-aligned. For a *new* template that did not exist at the older
//! sample points, similarity is computed only over the timestamps since its
//! first arrival (the paper's "available timestamps" rule) — see
//! [`TemplateFeature::similarity`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qb_timeseries::{ArrivalHistory, Interval, Minute};

/// A shared set of sampled timestamps that defines the feature space for one
/// clustering round.
#[derive(Debug, Clone)]
pub struct FeatureSampler {
    /// Sorted sample timestamps (minutes).
    timestamps: Vec<Minute>,
    /// Aggregation interval around each sample point.
    interval: Interval,
}

impl FeatureSampler {
    /// Draws `n` timestamps uniformly from the window `[now - window, now)`.
    ///
    /// The paper draws 10 000 points from the trailing month; the synthetic
    /// experiments use smaller `n` (the traces are shorter and the patterns
    /// coarser), which preserves the geometry while keeping runtime small.
    ///
    /// # Panics
    /// Panics if `n == 0` or `window <= 0`.
    pub fn random(now: Minute, window: i64, n: usize, interval: Interval, seed: u64) -> Self {
        assert!(n > 0, "FeatureSampler: need at least one sample point");
        assert!(window > 0, "FeatureSampler: window must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut timestamps: Vec<Minute> =
            (0..n).map(|_| now - 1 - rng.gen_range(0..window)).collect();
        timestamps.sort_unstable();
        timestamps.dedup();
        Self { timestamps, interval }
    }

    /// A sampler over evenly spaced timestamps (deterministic; used by tests
    /// and the interval-sensitivity experiments).
    pub fn even(start: Minute, end: Minute, interval: Interval) -> Self {
        let step = interval.as_minutes();
        let mut timestamps = Vec::new();
        let mut t = interval.bucket_start(start);
        while t < end {
            timestamps.push(t);
            t += step;
        }
        Self { timestamps, interval }
    }

    /// The sample timestamps (sorted ascending).
    pub fn timestamps(&self) -> &[Minute] {
        &self.timestamps
    }

    /// Feature-space dimensionality.
    pub fn dim(&self) -> usize {
        self.timestamps.len()
    }

    /// Extracts the feature vector of one template.
    pub fn extract(&self, history: &ArrivalHistory, first_seen: Minute) -> TemplateFeature {
        let values = history.sample_at(&self.timestamps, self.interval);
        // Index of the first sample point at or after the template's first
        // arrival; earlier coordinates are masked out when comparing a new
        // template against long-lived centers.
        let valid_from = self.timestamps.partition_point(|&t| t < first_seen);
        TemplateFeature { values, valid_from }
    }
}

/// A template's feature vector plus its validity mask.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateFeature {
    /// Arrival counts at the sampler's timestamps.
    pub values: Vec<f64>,
    /// Coordinates before this index predate the template's first arrival.
    pub valid_from: usize,
}

impl TemplateFeature {
    /// Creates a feature with every coordinate valid.
    pub fn full(values: Vec<f64>) -> Self {
        Self { values, valid_from: 0 }
    }

    /// Cosine similarity against another vector, restricted to the
    /// coordinates where *both* features are valid.
    pub fn similarity(&self, other_values: &[f64], other_valid_from: usize) -> f64 {
        let from = self.valid_from.max(other_valid_from);
        if from >= self.values.len() {
            return 0.0;
        }
        qb_linalg::cosine_similarity(&self.values[from..], &other_values[from..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with(points: &[(Minute, u64)]) -> ArrivalHistory {
        let mut h = ArrivalHistory::new();
        for &(t, c) in points {
            h.record(t, c);
        }
        h
    }

    #[test]
    fn random_sampler_in_window_and_sorted() {
        let s = FeatureSampler::random(10_000, 1_000, 200, Interval::MINUTE, 7);
        assert!(!s.timestamps().is_empty());
        for w in s.timestamps().windows(2) {
            assert!(w[0] < w[1]);
        }
        for &t in s.timestamps() {
            assert!((9_000..10_000).contains(&t), "{t} outside window");
        }
    }

    #[test]
    fn random_sampler_deterministic() {
        let a = FeatureSampler::random(500, 100, 50, Interval::MINUTE, 3);
        let b = FeatureSampler::random(500, 100, 50, Interval::MINUTE, 3);
        assert_eq!(a.timestamps(), b.timestamps());
    }

    #[test]
    fn even_sampler_spacing() {
        let s = FeatureSampler::even(0, 180, Interval::HOUR);
        assert_eq!(s.timestamps(), &[0, 60, 120]);
    }

    #[test]
    fn extract_reads_bucket_counts() {
        let h = history_with(&[(0, 5), (60, 7)]);
        let s = FeatureSampler::even(0, 120, Interval::HOUR);
        let f = s.extract(&h, 0);
        assert_eq!(f.values, vec![5.0, 7.0]);
        assert_eq!(f.valid_from, 0);
    }

    #[test]
    fn valid_from_masks_prehistory() {
        let h = history_with(&[(120, 3)]);
        let s = FeatureSampler::even(0, 240, Interval::HOUR);
        let f = s.extract(&h, 120);
        assert_eq!(f.valid_from, 2, "first two sample points predate the template");
    }

    #[test]
    fn similarity_identical_patterns_is_one() {
        let a = TemplateFeature::full(vec![1.0, 2.0, 3.0]);
        // Scaled copy: same pattern, different volume.
        let sim = a.similarity(&[10.0, 20.0, 30.0], 0);
        assert!((sim - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_uses_joint_mask() {
        // Old coordinates disagree wildly but are masked out for the newer
        // template.
        let newer = TemplateFeature { values: vec![0.0, 0.0, 1.0, 2.0], valid_from: 2 };
        let center = vec![99.0, 0.0, 1.0, 2.0];
        assert!((newer.similarity(&center, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_empty_mask_is_zero() {
        let f = TemplateFeature { values: vec![1.0, 2.0], valid_from: 2 };
        assert_eq!(f.similarity(&[1.0, 2.0], 0), 0.0);
    }
}
