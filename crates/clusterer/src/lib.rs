//! # qb-clusterer
//!
//! The QB5000 **Clusterer** (§5): groups query templates whose arrival-rate
//! histories follow the same temporal pattern, so the Forecaster trains one
//! model per *cluster* instead of one per template.
//!
//! Components:
//!
//! * [`FeatureSampler`] — turns a template's arrival history into a feature
//!   vector by sampling its counts at randomly chosen timestamps in a
//!   trailing window (§5.1);
//! * [`KdTree`] — nearest-center search in the (unit-normalized) feature
//!   space. Cosine similarity over unit vectors is a monotone transform of
//!   Euclidean distance, so a standard kd-tree finds the most-similar
//!   center (§5.2, step 1);
//! * [`OnlineClusterer`] — the modified-DBSCAN online algorithm: assign new
//!   templates to the closest center above the similarity threshold ρ,
//!   re-check existing memberships, merge near-identical clusters, evict
//!   silent templates, and trigger early re-clustering when the share of
//!   unseen templates spikes (§5.2);
//! * cluster pruning — only the top-k highest-volume clusters are handed to
//!   the Forecaster (§5.3).
//!
//! Template identity is an opaque `u64` key so the crate stays independent
//! of the Pre-Processor; `qb5000` wires the two together.

pub mod feature;
pub mod kdtree;
pub mod online;

pub use feature::{FeatureSampler, TemplateFeature};
pub use kdtree::KdTree;
pub use online::{
    Cluster, ClusterId, ClusterRecord, ClustererConfig, ClustererState, OnlineClusterer,
    SimilarityMetric, TemplateKey, TemplateRecord, TemplateSnapshot, UpdateReport,
};
