//! Property-based tests for the kd-tree and the online clusterer.

use proptest::prelude::*;
use qb_clusterer::{
    ClustererConfig, KdTree, OnlineClusterer, SimilarityMetric, TemplateFeature,
    TemplateSnapshot,
};

fn points(dim: usize) -> impl Strategy<Value = Vec<(Vec<f64>, usize)>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, dim), 1..80)
        .prop_map(|ps| ps.into_iter().enumerate().map(|(i, p)| (p, i)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// kd-tree nearest always matches a linear scan.
    #[test]
    fn kdtree_matches_linear_scan(
        ps in points(4),
        q in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let tree = KdTree::build(ps.clone());
        let (got, got_d) = tree.nearest(&q).expect("non-empty");
        let want_d = ps
            .iter()
            .map(|(p, _)| qb_linalg::sq_l2_distance(p, &q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got_d - want_d).abs() < 1e-9, "distance mismatch");
        // The returned payload is a genuine argmin.
        let actual = qb_linalg::sq_l2_distance(&ps[*got].0, &q);
        prop_assert!((actual - want_d).abs() < 1e-9);
    }

    /// Every template ends up in exactly one cluster, and cluster volumes
    /// sum to the total template volume.
    #[test]
    fn clusterer_partitions_templates(
        features in proptest::collection::vec(
            proptest::collection::vec(0.0f64..100.0, 6), 1..40),
        rho in 0.5f64..0.95,
    ) {
        let mut cl = OnlineClusterer::new(ClustererConfig {
            rho,
            metric: SimilarityMetric::Cosine,
            ..ClustererConfig::default()
        });
        let snaps: Vec<TemplateSnapshot> = features
            .iter()
            .enumerate()
            .map(|(i, f)| TemplateSnapshot {
                key: i as u64,
                feature: TemplateFeature::full(f.clone()),
                volume: 1.0 + i as f64,
                last_seen: 0,
            })
            .collect();
        let n = snaps.len();
        cl.update(snaps, 0);

        prop_assert_eq!(cl.num_templates(), n);
        let mut seen = std::collections::HashSet::new();
        let mut volume = 0.0;
        for c in cl.clusters() {
            prop_assert!(!c.members.is_empty(), "empty cluster survived");
            for &m in &c.members {
                prop_assert!(seen.insert(m), "template {} in two clusters", m);
            }
            volume += c.volume;
        }
        prop_assert_eq!(seen.len(), n, "every template clustered");
        let expected: f64 = (0..n).map(|i| 1.0 + i as f64).sum();
        prop_assert!((volume - expected).abs() < 1e-6);

        // Coverage ratio is monotone and reaches 1.
        let mut prev = 0.0;
        for k in 1..=cl.num_clusters() {
            let c = cl.coverage_ratio(k);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
        prop_assert!((cl.coverage_ratio(cl.num_clusters()) - 1.0).abs() < 1e-9);
    }

    /// Identical feature vectors always co-cluster (similarity 1 > any
    /// valid rho).
    #[test]
    fn identical_features_co_cluster(
        f in proptest::collection::vec(0.1f64..100.0, 4),
        copies in 2usize..10,
    ) {
        let mut cl = OnlineClusterer::new(ClustererConfig::default());
        let snaps: Vec<TemplateSnapshot> = (0..copies)
            .map(|i| TemplateSnapshot {
                key: i as u64,
                feature: TemplateFeature::full(f.clone()),
                volume: 1.0,
                last_seen: 0,
            })
            .collect();
        cl.update(snaps, 0);
        prop_assert_eq!(cl.num_clusters(), 1);
    }

    /// Once updates settle, every member of a multi-member cluster is
    /// within ρ of its cluster's *final* center (the §5.2 guarantee), and
    /// replaying the same stream on a fresh clusterer reproduces the same
    /// partition. Guards the frozen-center kd-tree reuse and the
    /// incremental merge table: a stale or un-recomputed center would
    /// break one of the two.
    #[test]
    fn rho_invariant_and_determinism_at_fixpoint(
        features in proptest::collection::vec(
            proptest::collection::vec(0.0f64..100.0, 6), 2..40),
        rho in 0.5f64..0.95,
    ) {
        let make = || -> Vec<TemplateSnapshot> {
            features
                .iter()
                .enumerate()
                .map(|(i, f)| TemplateSnapshot {
                    key: i as u64,
                    feature: TemplateFeature::full(f.clone()),
                    volume: 1.0,
                    last_seen: 0,
                })
                .collect()
        };
        let run = || {
            let mut cl = OnlineClusterer::new(ClustererConfig {
                rho,
                metric: SimilarityMetric::Cosine,
                ..ClustererConfig::default()
            });
            cl.update(make(), 0);
            let mut settled = false;
            for _ in 0..40 {
                if !cl.update(make(), 0).assignments_changed() {
                    settled = true;
                    break;
                }
            }
            (cl, settled)
        };
        let (cl, settled) = run();
        prop_assert!(settled, "clusterer failed to settle within 40 rounds");
        for c in cl.clusters() {
            if c.members.len() < 2 {
                continue;
            }
            for &m in &c.members {
                let sim = qb_linalg::cosine_similarity(&features[m as usize], &c.center);
                prop_assert!(sim > rho, "member {} sim {} <= rho {}", m, sim, rho);
            }
        }
        // Same stream, fresh clusterer: identical partition.
        let (cl2, _) = run();
        prop_assert_eq!(cl.num_clusters(), cl2.num_clusters());
        for i in 0..features.len() as u64 {
            prop_assert_eq!(cl.cluster_of(i), cl2.cluster_of(i));
        }
    }

    /// Updates are idempotent: re-submitting identical snapshots changes
    /// nothing.
    #[test]
    fn update_idempotent(
        features in proptest::collection::vec(
            proptest::collection::vec(0.0f64..50.0, 5), 1..20),
    ) {
        let make = || -> Vec<TemplateSnapshot> {
            features
                .iter()
                .enumerate()
                .map(|(i, f)| TemplateSnapshot {
                    key: i as u64,
                    feature: TemplateFeature::full(f.clone()),
                    volume: 1.0,
                    last_seen: 0,
                })
                .collect()
        };
        let mut cl = OnlineClusterer::new(ClustererConfig::default());
        cl.update(make(), 0);
        // Let step-2 reassignments settle (bounded by template count).
        for _ in 0..features.len() {
            cl.update(make(), 0);
        }
        let before: Vec<usize> =
            (0..features.len()).map(|i| cl.cluster_of(i as u64).expect("tracked").0 as usize).collect();
        let report = cl.update(make(), 0);
        let after: Vec<usize> =
            (0..features.len()).map(|i| cl.cluster_of(i as u64).expect("tracked").0 as usize).collect();
        prop_assert_eq!(report.new_templates, 0);
        prop_assert_eq!(before, after, "assignments changed on settled re-update");
    }
}
