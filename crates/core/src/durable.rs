//! Durable pipeline state: versioned snapshots + a sighting WAL (the
//! robustness layer over `qb-durable`).
//!
//! The in-memory pipeline is deterministic: the same ingest stream through
//! the same configuration produces bit-identical templates, clusters,
//! forecasts, and trace streams. Durability exploits that instead of
//! fighting it — the WAL records *inputs* (template sightings,
//! cluster-update instants, compactions), not effects, and recovery simply
//! replays the tail through the ordinary ingest path on top of the last
//! valid snapshot. Anything derivable (shift-triggered re-clusterings,
//! quarantine admissions, fitted models) is *not* logged; it re-derives
//! identically.
//!
//! ## Formats
//!
//! The snapshot payload is `[u16 STATE_VERSION]` followed by the
//! [`FullState`] encoding; every record type is hand-encoded in this
//! module against [`qb_durable::Enc`]/[`qb_durable::Dec`] so the on-disk
//! layout is auditable line by line. Version bumps are append-only: a
//! build refuses payload versions it does not know rather than guessing.
//!
//! WAL frame payloads carry one [`WalRecord`]; the frame `kind` byte is
//! the dispatch tag ([`KIND_INGEST`], [`KIND_CLUSTER_UPDATE`],
//! [`KIND_COMPACT`], [`KIND_INGEST_BATCH`]).
//!
//! ## Recovery invariants
//!
//! 1. **Append-then-apply.** Every mutating [`DurablePipeline`] call
//!    appends its WAL frame *before* touching the in-memory pipeline, so a
//!    crash at any I/O boundary loses at most operations the caller never
//!    saw complete.
//! 2. **Sequence numbers dedup replay.** Frames at or below the loaded
//!    snapshot's sequence are skipped by `qb-durable`, so a crash between
//!    snapshot rename and WAL rotation cannot double-apply a sighting —
//!    which is exactly the "no quarantine double-count" guarantee:
//!    rejected statements live inside the snapshot's quarantine ring and
//!    their WAL frames are sequence-skipped, never replayed on top.
//! 3. **Replay is the ingest path.** Recovery calls the same
//!    `ingest_weighted` / `update_clusters` the live pipeline uses, so a
//!    recovered process continues the exact event stream — forecasts,
//!    [`crate::PipelineHealth`], and `qb-trace` output are bit-identical
//!    to an uninterrupted run.

use std::path::PathBuf;

use qb_clusterer::{ClusterRecord, ClustererState, TemplateRecord, UpdateReport};
use qb_durable::{CodecError, Dec, DurabilityError, DurableStore, Enc, FaultHook, StoreStats};
use qb_forecast::DegradationLevel;
use qb_preprocessor::{
    BatchItem, BatchReport, IngestStats, PreProcessorState, QuarantineState,
    QuarantinedStatement, TemplateEntryState, TemplateId,
};
use qb_sqlparse::ast::Literal;
use qb_timeseries::{ArrivalHistoryState, Minute};
use qb_trace::{EventRecord, Scope, TraceDump, Tracer, TracerState, Value};

use crate::accuracy::{AccuracyTrackerState, PendingClaimState, RollingMeanState};
use crate::error::Error;
use crate::manager::{ForecastManager, ManagerState, RetrainOutcome};
use crate::pipeline::{
    ClusterInfoState, PipelineHealth, PipelineState, Qb5000Config, QueryBot5000,
};

/// Version of the snapshot payload this build reads and writes. Bump when
/// the [`FullState`] encoding changes shape; old versions are refused, not
/// guessed at.
pub const STATE_VERSION: u16 = 3;

/// WAL frame kind: one weighted template sighting.
pub const KIND_INGEST: u8 = 1;
/// WAL frame kind: an explicit cluster-update instant.
pub const KIND_CLUSTER_UPDATE: u8 = 2;
/// WAL frame kind: an arrival-history compaction point.
pub const KIND_COMPACT: u8 = 3;
/// WAL frame kind: a tick's worth of sightings ingested through the
/// sharded batch engine. Replay routes the batch back through the same
/// engine, so shard-cache state re-derives identically.
pub const KIND_INGEST_BATCH: u8 = 4;

/// Durable-state policy for a pipeline: where state lives, how often a
/// full snapshot replaces WAL replay, and (for tests) where to crash.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the snapshot lineage and WAL segments.
    pub dir: PathBuf,
    /// A snapshot is cut after this many [`DurablePipeline::update_clusters`]
    /// rounds (1 = every round). Ingest frames between snapshots replay on
    /// recovery.
    pub snapshot_every_rounds: u64,
    /// Crash-injection hook consulted at every I/O boundary
    /// ([`qb_durable::IoPoint`]); [`FaultHook::none`] in production.
    pub fault_hook: FaultHook,
}

impl DurabilityConfig {
    /// A policy rooted at `dir`, snapshotting every cluster-update round,
    /// with no fault injection.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), snapshot_every_rounds: 1, fault_hook: FaultHook::none() }
    }

    /// Snapshot after every `n` cluster-update rounds (clamped to ≥ 1).
    pub fn snapshot_every_rounds(mut self, n: u64) -> Self {
        self.snapshot_every_rounds = n.max(1);
        self
    }

    /// Installs a crash-injection hook (tests).
    pub fn fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = hook;
        self
    }
}

/// Everything a snapshot persists: the pipeline proper, the forecast
/// manager's serving state (if one is attached), and the tracer's ring
/// (if tracing is enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct FullState {
    pub pipeline: PipelineState,
    pub manager: Option<ManagerState>,
    pub tracer: Option<TracerState>,
}

/// One decoded WAL frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A weighted template sighting (the `ingest_weighted` arguments).
    Ingest { minute: Minute, count: u64, sql: String },
    /// An explicit cluster rebuild at `now`.
    ClusterUpdate { now: Minute },
    /// An arrival-history compaction point.
    Compact,
    /// A batch of weighted sightings ingested through the sharded engine
    /// (`(minute, count, sql)` per statement, in arrival order).
    IngestBatch { items: Vec<(Minute, u64, String)> },
}

/// What [`DurablePipeline::open`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Sequence of the loaded snapshot (`None` = fresh directory or no
    /// valid snapshot yet).
    pub snapshot_seq: Option<u64>,
    /// WAL frames replayed on top of the snapshot.
    pub frames_replayed: u64,
    /// Ingest sightings among the replayed frames.
    pub statements_replayed: u64,
    /// Newer snapshots skipped because they failed validation.
    pub corrupt_snapshots_skipped: u64,
    /// Frames already covered by the snapshot and skipped by sequence.
    pub stale_frames_skipped: u64,
    /// The forecast manager's serving state from the snapshot. The model
    /// factory is a closure and cannot be serialized, so the caller
    /// rebuilds the manager with [`ForecastManager::restore`] and hands it
    /// back via [`DurablePipeline::attach_manager`].
    pub manager: Option<ManagerState>,
}

impl RecoveryReport {
    /// True when the directory held prior state (snapshot or frames).
    pub fn recovered(&self) -> bool {
        self.snapshot_seq.is_some() || self.frames_replayed > 0
    }
}

// ---------------------------------------------------------------------------
// Codec: every versioned record type, hand-encoded.
// ---------------------------------------------------------------------------

fn bad_tag(what: &'static str, tag: u8) -> CodecError {
    CodecError::BadTag { what, tag }
}

/// Encodes one [`Literal`] (tagged: 0=Integer 1=Float 2=String 3=Boolean
/// 4=Null — append-only).
pub fn encode_literal(e: &mut Enc, lit: &Literal) {
    match lit {
        Literal::Integer(v) => {
            e.u8(0);
            e.i64(*v);
        }
        Literal::Float(v) => {
            e.u8(1);
            e.f64(*v);
        }
        Literal::String(s) => {
            e.u8(2);
            e.str(s);
        }
        Literal::Boolean(b) => {
            e.u8(3);
            e.bool(*b);
        }
        Literal::Null => e.u8(4),
    }
}

/// Inverse of [`encode_literal`].
pub fn decode_literal(d: &mut Dec) -> Result<Literal, CodecError> {
    Ok(match d.u8()? {
        0 => Literal::Integer(d.i64()?),
        1 => Literal::Float(d.f64()?),
        2 => Literal::String(d.str()?),
        3 => Literal::Boolean(d.bool()?),
        4 => Literal::Null,
        tag => return Err(bad_tag("Literal", tag)),
    })
}

/// Encodes one [`ArrivalHistoryState`].
pub fn encode_history(e: &mut Enc, h: &ArrivalHistoryState) {
    e.seq(&h.raw, |e, (m, c)| {
        e.i64(*m);
        e.u64(*c);
    });
    e.seq(&h.compacted, |e, (m, c)| {
        e.i64(*m);
        e.u64(*c);
    });
    e.option(h.compacted_width_minutes.as_ref(), |e, w| e.i64(*w));
    e.u64(h.total);
}

/// Inverse of [`encode_history`].
pub fn decode_history(d: &mut Dec) -> Result<ArrivalHistoryState, CodecError> {
    Ok(ArrivalHistoryState {
        raw: d.seq(|d| Ok((d.i64()?, d.u64()?)))?,
        compacted: d.seq(|d| Ok((d.i64()?, d.u64()?)))?,
        compacted_width_minutes: d.option(Dec::i64)?,
        total: d.u64()?,
    })
}

fn encode_quarantine(e: &mut Enc, q: &QuarantineState) {
    e.u64(q.rejected_statements);
    e.u64(q.rejected_arrivals);
    e.seq(&q.samples, |e, s| {
        e.i64(s.minute);
        e.str(&s.sql);
        e.str(&s.error);
    });
    e.option(q.last_error.as_ref(), |e, s| e.str(s));
}

fn decode_quarantine(d: &mut Dec) -> Result<QuarantineState, CodecError> {
    Ok(QuarantineState {
        rejected_statements: d.u64()?,
        rejected_arrivals: d.u64()?,
        samples: d.seq(|d| {
            Ok(QuarantinedStatement { minute: d.i64()?, sql: d.str()?, error: d.str()? })
        })?,
        last_error: d.option(Dec::str)?,
    })
}

fn encode_entry(e: &mut Enc, t: &TemplateEntryState) {
    e.str(&t.text);
    encode_history(e, &t.history);
    e.u64(t.params_seen);
    e.seq(&t.params_items, |e, params| e.seq(params, encode_literal));
    for w in t.params_rng {
        e.u64(w);
    }
}

fn decode_entry(d: &mut Dec) -> Result<TemplateEntryState, CodecError> {
    Ok(TemplateEntryState {
        text: d.str()?,
        history: decode_history(d)?,
        params_seen: d.u64()?,
        params_items: d.seq(|d| d.seq(decode_literal))?,
        params_rng: [d.u64()?, d.u64()?, d.u64()?, d.u64()?],
    })
}

/// Encodes one [`PreProcessorState`].
pub fn encode_preprocessor_state(e: &mut Enc, s: &PreProcessorState) {
    e.seq(&s.entries, encode_entry);
    e.seq(&s.distinct_texts, |e, (text, id)| {
        e.str(text);
        e.u32(*id);
    });
    e.seq(&s.raw_cache, |e, (text, id)| {
        e.str(text);
        e.u32(*id);
    });
    e.seq(&s.shard_slots, |e, (text, id, hits)| {
        e.str(text);
        e.u32(*id);
        e.u64(*hits);
    });
    e.u64(s.cache_hits);
    e.u64(s.next_seed);
    e.u64(s.stats.total_queries);
    e.u64(s.stats.selects);
    e.u64(s.stats.inserts);
    e.u64(s.stats.updates);
    e.u64(s.stats.deletes);
    encode_quarantine(e, &s.quarantine);
}

/// Inverse of [`encode_preprocessor_state`].
pub fn decode_preprocessor_state(d: &mut Dec) -> Result<PreProcessorState, CodecError> {
    Ok(PreProcessorState {
        entries: d.seq(decode_entry)?,
        distinct_texts: d.seq(|d| Ok((d.str()?, d.u32()?)))?,
        raw_cache: d.seq(|d| Ok((d.str()?, d.u32()?)))?,
        shard_slots: d.seq(|d| Ok((d.str()?, d.u32()?, d.u64()?)))?,
        cache_hits: d.u64()?,
        next_seed: d.u64()?,
        stats: IngestStats {
            total_queries: d.u64()?,
            selects: d.u64()?,
            inserts: d.u64()?,
            updates: d.u64()?,
            deletes: d.u64()?,
        },
        quarantine: decode_quarantine(d)?,
    })
}

/// Encodes one [`ClustererState`].
pub fn encode_clusterer_state(e: &mut Enc, s: &ClustererState) {
    e.seq(&s.templates, |e, t| {
        e.u64(t.key);
        e.seq(&t.feature_values, |e, v| e.f64(*v));
        e.usize(t.feature_valid_from);
        e.f64(t.volume);
        e.i64(t.last_seen);
        e.u64(t.cluster);
    });
    e.seq(&s.clusters, |e, c| {
        e.u64(c.id);
        e.seq(&c.members, |e, m| e.u64(*m));
        e.seq(&c.center, |e, v| e.f64(*v));
        e.f64(c.volume);
    });
    e.u64(s.next_cluster);
    e.seq(&s.seen_since_update, |e, k| e.u64(*k));
    e.u64(s.unseen_since_update);
    e.f64(s.baseline_unseen_ratio);
}

/// Inverse of [`encode_clusterer_state`].
pub fn decode_clusterer_state(d: &mut Dec) -> Result<ClustererState, CodecError> {
    Ok(ClustererState {
        templates: d.seq(|d| {
            Ok(TemplateRecord {
                key: d.u64()?,
                feature_values: d.seq(Dec::f64)?,
                feature_valid_from: d.usize()?,
                volume: d.f64()?,
                last_seen: d.i64()?,
                cluster: d.u64()?,
            })
        })?,
        clusters: d.seq(|d| {
            Ok(ClusterRecord {
                id: d.u64()?,
                members: d.seq(Dec::u64)?,
                center: d.seq(Dec::f64)?,
                volume: d.f64()?,
            })
        })?,
        next_cluster: d.u64()?,
        seen_since_update: d.seq(Dec::u64)?,
        unseen_since_update: d.u64()?,
        baseline_unseen_ratio: d.f64()?,
    })
}

fn encode_cluster_info(e: &mut Enc, c: &ClusterInfoState) {
    e.u64(c.id);
    e.f64(c.volume);
    e.seq(&c.members, |e, m| e.u32(*m));
}

fn decode_cluster_info(d: &mut Dec) -> Result<ClusterInfoState, CodecError> {
    Ok(ClusterInfoState { id: d.u64()?, volume: d.f64()?, members: d.seq(Dec::u32)? })
}

/// Encodes one [`PipelineState`].
pub fn encode_pipeline_state(e: &mut Enc, s: &PipelineState) {
    encode_preprocessor_state(e, &s.pre);
    encode_clusterer_state(e, &s.clusterer);
    e.seq(&s.tracked, encode_cluster_info);
    e.option(s.last_update.as_ref(), |e, m| e.i64(*m));
    e.u64(s.shift_triggers);
    e.u64(s.ingested_statements);
    e.u64(s.ingested_arrivals);
    e.u64(s.deduplicated);
    e.u64(s.reordered);
    e.option(s.last_ingest_minute.as_ref(), |e, m| e.i64(*m));
    e.option(s.last_ingest_event.as_ref(), |e, (m, fp)| {
        e.i64(*m);
        e.u64(*fp);
    });
}

/// Inverse of [`encode_pipeline_state`].
pub fn decode_pipeline_state(d: &mut Dec) -> Result<PipelineState, CodecError> {
    Ok(PipelineState {
        pre: decode_preprocessor_state(d)?,
        clusterer: decode_clusterer_state(d)?,
        tracked: d.seq(decode_cluster_info)?,
        last_update: d.option(Dec::i64)?,
        shift_triggers: d.u64()?,
        ingested_statements: d.u64()?,
        ingested_arrivals: d.u64()?,
        deduplicated: d.u64()?,
        reordered: d.u64()?,
        last_ingest_minute: d.option(Dec::i64)?,
        last_ingest_event: d.option(|d| Ok((d.i64()?, d.u64()?)))?,
    })
}

fn encode_rolling_mean(e: &mut Enc, m: &RollingMeanState) {
    e.usize(m.capacity);
    e.seq(&m.values, |e, v| e.f64(*v));
    e.f64(m.sum);
    e.usize(m.since_refresh);
}

fn decode_rolling_mean(d: &mut Dec) -> Result<RollingMeanState, CodecError> {
    Ok(RollingMeanState {
        capacity: d.usize()?,
        values: d.seq(Dec::f64)?,
        sum: d.f64()?,
        since_refresh: d.usize()?,
    })
}

/// Encodes one [`AccuracyTrackerState`].
pub fn encode_accuracy_state(e: &mut Enc, s: &AccuracyTrackerState) {
    e.usize(s.horizons);
    e.usize(s.window);
    e.seq(&s.pending, |e, p| {
        e.usize(p.horizon_idx);
        e.i64(p.due);
        e.i64(p.interval_minutes);
        encode_cluster_info(e, &p.cluster);
        e.f64(p.predicted);
    });
    e.seq(&s.overall, encode_rolling_mean);
    e.seq(&s.per_cluster, |e, (h, c, m)| {
        e.usize(*h);
        e.u64(*c);
        encode_rolling_mean(e, m);
    });
    e.u64(s.settled_total);
}

/// Inverse of [`encode_accuracy_state`].
pub fn decode_accuracy_state(d: &mut Dec) -> Result<AccuracyTrackerState, CodecError> {
    Ok(AccuracyTrackerState {
        horizons: d.usize()?,
        window: d.usize()?,
        pending: d.seq(|d| {
            Ok(PendingClaimState {
                horizon_idx: d.usize()?,
                due: d.i64()?,
                interval_minutes: d.i64()?,
                cluster: decode_cluster_info(d)?,
                predicted: d.f64()?,
            })
        })?,
        overall: d.seq(decode_rolling_mean)?,
        per_cluster: d.seq(|d| Ok((d.usize()?, d.u64()?, decode_rolling_mean(d)?)))?,
        settled_total: d.u64()?,
    })
}

fn encode_degradation(e: &mut Enc, level: &Option<DegradationLevel>) {
    e.option(level.as_ref(), |e, l| e.u8(l.to_code()));
}

fn decode_degradation(d: &mut Dec) -> Result<Option<DegradationLevel>, CodecError> {
    d.option(|d| {
        let tag = d.u8()?;
        DegradationLevel::from_code(tag).ok_or(bad_tag("DegradationLevel", tag))
    })
}

/// Encodes one [`ManagerState`].
pub fn encode_manager_state(e: &mut Enc, s: &ManagerState) {
    e.u64(s.retrain_count);
    e.u32(s.consecutive_failures);
    e.u64(s.backoff_remaining);
    e.u64(s.rollbacks);
    e.option(s.last_error.as_ref(), |e, msg| e.str(msg));
    e.option(s.trained_clusters.as_ref(), |e, tc| {
        e.seq(tc, |e, (id, members)| {
            e.u64(*id);
            e.seq(members, |e, m| e.u32(*m));
        });
    });
    e.option(s.trained_on.as_ref(), |e, on| e.seq(on, encode_cluster_info));
    e.seq(&s.last_degradation, encode_degradation);
    e.option(s.last_train_now.as_ref(), |e, m| e.i64(*m));
    encode_accuracy_state(e, &s.accuracy);
}

/// Inverse of [`encode_manager_state`].
pub fn decode_manager_state(d: &mut Dec) -> Result<ManagerState, CodecError> {
    Ok(ManagerState {
        retrain_count: d.u64()?,
        consecutive_failures: d.u32()?,
        backoff_remaining: d.u64()?,
        rollbacks: d.u64()?,
        last_error: d.option(Dec::str)?,
        trained_clusters: d
            .option(|d| d.seq(|d| Ok((d.u64()?, d.seq(Dec::u32)?))))?,
        trained_on: d.option(|d| d.seq(decode_cluster_info))?,
        last_degradation: d.seq(decode_degradation)?,
        last_train_now: d.option(Dec::i64)?,
        accuracy: decode_accuracy_state(d)?,
    })
}

fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Int(x) => {
            e.u8(0);
            e.i64(*x);
        }
        Value::Uint(x) => {
            e.u8(1);
            e.u64(*x);
        }
        Value::Float(x) => {
            e.u8(2);
            e.f64(*x);
        }
        Value::Text(s) => {
            e.u8(3);
            e.str(s);
        }
        Value::Flag(b) => {
            e.u8(4);
            e.bool(*b);
        }
    }
}

fn decode_value(d: &mut Dec) -> Result<Value, CodecError> {
    Ok(match d.u8()? {
        0 => Value::Int(d.i64()?),
        1 => Value::Uint(d.u64()?),
        2 => Value::Float(d.f64()?),
        3 => Value::Text(d.str()?),
        4 => Value::Flag(d.bool()?),
        tag => return Err(bad_tag("trace Value", tag)),
    })
}

fn encode_event(e: &mut Enc, r: &EventRecord) {
    e.u64(r.id);
    e.u64(r.round);
    e.u64(r.seq);
    e.u32(r.lane);
    e.u8(r.kind.to_code());
    e.option(r.parent.as_ref(), |e, p| e.u64(*p));
    e.seq(&r.refs, |e, v| e.u64(*v));
    e.seq(&r.payload, |e, (k, v)| {
        e.str(k);
        encode_value(e, v);
    });
}

fn decode_event(d: &mut Dec) -> Result<EventRecord, CodecError> {
    Ok(EventRecord {
        id: d.u64()?,
        round: d.u64()?,
        seq: d.u64()?,
        lane: d.u32()?,
        kind: {
            let tag = d.u8()?;
            qb_trace::EventKind::from_code(tag).ok_or(bad_tag("EventKind", tag))?
        },
        parent: d.option(Dec::u64)?,
        refs: d.seq(Dec::u64)?,
        payload: d.seq(|d| Ok((d.str()?, decode_value(d)?)))?,
    })
}

fn encode_dump(e: &mut Enc, dump: &TraceDump) {
    e.str(&dump.reason);
    e.u64(dump.round);
    e.str(&dump.recent);
    e.str(&dump.lineage);
}

fn decode_dump(d: &mut Dec) -> Result<TraceDump, CodecError> {
    Ok(TraceDump { reason: d.str()?, round: d.u64()?, recent: d.str()?, lineage: d.str()? })
}

/// Encodes one [`TracerState`].
pub fn encode_tracer_state(e: &mut Enc, s: &TracerState) {
    e.u64(s.next_id);
    e.u64(s.round);
    e.u64(s.seq);
    e.u64(s.front_id);
    e.seq(&s.ring, encode_event);
    e.seq(&s.pinned, encode_event);
    e.seq(&s.pin_order, |e, v| e.u64(*v));
    e.seq(&s.anchors, |e, (scope, key, id)| {
        e.u8(scope.to_code());
        e.u64(*key);
        e.u64(*id);
    });
    e.seq(&s.dumps, encode_dump);
    e.u64(s.evictions);
    e.u64(s.round_rejects);
}

/// Inverse of [`encode_tracer_state`].
pub fn decode_tracer_state(d: &mut Dec) -> Result<TracerState, CodecError> {
    Ok(TracerState {
        next_id: d.u64()?,
        round: d.u64()?,
        seq: d.u64()?,
        front_id: d.u64()?,
        ring: d.seq(decode_event)?,
        pinned: d.seq(decode_event)?,
        pin_order: d.seq(Dec::u64)?,
        anchors: d.seq(|d| {
            let tag = d.u8()?;
            let scope = Scope::from_code(tag).ok_or(bad_tag("Scope", tag))?;
            Ok((scope, d.u64()?, d.u64()?))
        })?,
        dumps: d.seq(decode_dump)?,
        evictions: d.u64()?,
        round_rejects: d.u64()?,
    })
}

/// Encodes a [`FullState`] as a snapshot payload (version-prefixed).
pub fn encode_full_state(s: &FullState) -> Vec<u8> {
    let mut e = Enc::new();
    e.u16(STATE_VERSION);
    encode_pipeline_state(&mut e, &s.pipeline);
    e.option(s.manager.as_ref(), encode_manager_state);
    e.option(s.tracer.as_ref(), encode_tracer_state);
    e.finish()
}

/// Inverse of [`encode_full_state`]: verifies the version prefix and that
/// every byte is consumed.
pub fn decode_full_state(bytes: &[u8]) -> Result<FullState, DurabilityError> {
    let mut d = Dec::new(bytes);
    let version = d.u16().map_err(DurabilityError::Codec)?;
    if version != STATE_VERSION {
        return Err(DurabilityError::Corrupt(format!(
            "snapshot payload version {version}; this build reads version {STATE_VERSION}"
        )));
    }
    let pipeline = decode_pipeline_state(&mut d)?;
    let manager = d.option(decode_manager_state)?;
    let tracer = d.option(decode_tracer_state)?;
    d.finish()?;
    Ok(FullState { pipeline, manager, tracer })
}

/// Encodes one [`WalRecord`] as a `(frame kind, payload)` pair.
pub fn encode_wal_record(rec: &WalRecord) -> (u8, Vec<u8>) {
    let mut e = Enc::new();
    match rec {
        WalRecord::Ingest { minute, count, sql } => {
            e.i64(*minute);
            e.u64(*count);
            e.str(sql);
            (KIND_INGEST, e.finish())
        }
        WalRecord::ClusterUpdate { now } => {
            e.i64(*now);
            (KIND_CLUSTER_UPDATE, e.finish())
        }
        WalRecord::Compact => (KIND_COMPACT, e.finish()),
        WalRecord::IngestBatch { items } => {
            e.seq(items, |e, (minute, count, sql)| {
                e.i64(*minute);
                e.u64(*count);
                e.str(sql);
            });
            (KIND_INGEST_BATCH, e.finish())
        }
    }
}

/// Inverse of [`encode_wal_record`].
pub fn decode_wal_record(kind: u8, payload: &[u8]) -> Result<WalRecord, DurabilityError> {
    let mut d = Dec::new(payload);
    let rec = match kind {
        KIND_INGEST => {
            WalRecord::Ingest { minute: d.i64()?, count: d.u64()?, sql: d.str()? }
        }
        KIND_CLUSTER_UPDATE => WalRecord::ClusterUpdate { now: d.i64()? },
        KIND_COMPACT => WalRecord::Compact,
        KIND_INGEST_BATCH => WalRecord::IngestBatch {
            items: d.seq(|d| Ok((d.i64()?, d.u64()?, d.str()?)))?,
        },
        other => {
            return Err(DurabilityError::Corrupt(format!("unknown WAL record kind {other}")))
        }
    };
    d.finish()?;
    Ok(rec)
}

// ---------------------------------------------------------------------------
// DurablePipeline
// ---------------------------------------------------------------------------

/// A [`QueryBot5000`] whose mutating operations are write-ahead logged and
/// periodically snapshotted, so a crashed process resumes bit-identically.
///
/// Every mutating call follows invariant 1 (append-then-apply): the WAL
/// frame is durable before the in-memory pipeline changes. An `Err` from
/// any call therefore means the operation is *not* reflected in memory; an
/// injected-crash error ([`Error::is_injected_crash`]) additionally means
/// "the process died at this I/O boundary" to test harnesses, which drop
/// the instance and re-[`open`](DurablePipeline::open).
pub struct DurablePipeline {
    bot: QueryBot5000,
    store: DurableStore,
    /// Sequence of the last appended (or recovered) durable operation.
    seq: u64,
    snapshot_every_rounds: u64,
    rounds_since_snapshot: u64,
    manager: Option<ForecastManager>,
    snapshot_time: qb_obs::Histogram,
    snapshot_bytes: qb_obs::Gauge,
    wal_appends: qb_obs::Counter,
    snapshots_metric: qb_obs::Counter,
}

impl DurablePipeline {
    /// Opens (creating or recovering) the durable pipeline for a config
    /// whose `durability` policy is set.
    ///
    /// A fresh directory yields an empty pipeline; an existing one loads
    /// the newest valid snapshot (falling back past corrupt ones) and
    /// replays the WAL tail through the ordinary ingest path. If the
    /// snapshot carried forecast-manager state it is returned in the
    /// [`RecoveryReport`] for the caller to rebuild (the model factory is
    /// not serializable) and re-attach.
    pub fn open(config: Qb5000Config) -> Result<(Self, RecoveryReport), Error> {
        let mut config = config;
        let Some(policy) = config.durability.clone() else {
            return Err(Error::Durability {
                detail: "DurablePipeline::open requires config.durability \
                         (set it via Qb5000Config::builder().durability(..))"
                    .into(),
                injected_crash: false,
            });
        };
        let (mut store, recovered) =
            DurableStore::open(&policy.dir, policy.fault_hook.clone())?;
        store.set_hook(policy.fault_hook.clone());
        let seq = recovered.durable_seq();

        let mut manager_state = None;
        let snapshot_seq = recovered.snapshot.as_ref().map(|s| s.seq);
        let mut bot = match recovered.snapshot {
            Some(snap) => {
                let full = decode_full_state(&snap.payload)?;
                // Restore the tracer's ring first so replayed operations
                // append to the recovered event stream, not a fresh one.
                if let (Some(tstate), Some(settings)) =
                    (full.tracer, config.tracer.settings())
                {
                    config.tracer = Tracer::restore(settings, tstate);
                }
                manager_state = full.manager;
                QueryBot5000::restore(config, full.pipeline)?
            }
            None => QueryBot5000::new(config),
        };

        // Invariant 3: replay is the ordinary ingest path. Quarantine
        // rejections re-derive (the Err is the same one the original
        // caller saw), shift triggers re-fire, trace events re-append.
        let mut statements_replayed = 0u64;
        let mut rounds_since_snapshot = 0u64;
        for frame in &recovered.frames {
            match decode_wal_record(frame.kind, &frame.payload)? {
                WalRecord::Ingest { minute, count, sql } => {
                    statements_replayed += 1;
                    let _ = bot.ingest_weighted(minute, &sql, count);
                }
                WalRecord::ClusterUpdate { now } => {
                    bot.update_clusters(now);
                    rounds_since_snapshot += 1;
                }
                WalRecord::Compact => bot.compact_histories(),
                WalRecord::IngestBatch { items } => {
                    statements_replayed += items.len() as u64;
                    let batch: Vec<BatchItem<'_>> = items
                        .iter()
                        .map(|(minute, count, sql)| BatchItem {
                            minute: *minute,
                            sql,
                            count: *count,
                        })
                        .collect();
                    let _ = bot.ingest_batch(&batch);
                }
            }
        }

        let report = RecoveryReport {
            snapshot_seq,
            frames_replayed: recovered.frames.len() as u64,
            statements_replayed,
            corrupt_snapshots_skipped: recovered.corrupt_snapshots_skipped,
            stale_frames_skipped: recovered.stale_frames_skipped,
            manager: manager_state,
        };

        let rec = bot.recorder().clone();
        if report.recovered() {
            rec.counter("durability.recoveries").inc();
        } else {
            rec.counter("durability.fresh_starts").inc();
        }
        rec.counter("durability.frames_replayed").add(report.frames_replayed);
        rec.counter("durability.corrupt_snapshots_skipped")
            .add(report.corrupt_snapshots_skipped);
        rec.counter("durability.stale_frames_skipped").add(report.stale_frames_skipped);

        let pipeline = Self {
            bot,
            store,
            seq,
            snapshot_every_rounds: policy.snapshot_every_rounds,
            rounds_since_snapshot,
            manager: None,
            snapshot_time: rec.histogram("durability.snapshot"),
            snapshot_bytes: rec.gauge("durability.snapshot_bytes"),
            wal_appends: rec.counter("durability.wal_appends"),
            snapshots_metric: rec.counter("durability.snapshots"),
        };
        Ok((pipeline, report))
    }

    fn append(&mut self, rec: &WalRecord) -> Result<(), Error> {
        let (kind, payload) = encode_wal_record(rec);
        let seq = self.seq + 1;
        self.store.append(seq, kind, &payload)?;
        self.seq = seq;
        self.wal_appends.inc();
        Ok(())
    }

    /// Durably forwards one query ([`QueryBot5000::ingest`]): the sighting
    /// is WAL-framed, then applied.
    pub fn ingest(&mut self, t: Minute, sql: &str) -> Result<TemplateId, Error> {
        self.ingest_weighted(t, sql, 1)
    }

    /// Durable [`QueryBot5000::ingest_weighted`] (append-then-apply).
    ///
    /// A quarantine rejection returns the Pre-Processor's `Err` exactly as
    /// the in-memory pipeline would — the frame stays in the WAL and the
    /// rejection re-derives identically on replay, so quarantined
    /// statements are never double-counted (they either live in a snapshot
    /// *or* replay once, per invariant 2).
    pub fn ingest_weighted(
        &mut self,
        t: Minute,
        sql: &str,
        count: u64,
    ) -> Result<TemplateId, Error> {
        self.append(&WalRecord::Ingest { minute: t, count, sql: sql.to_string() })?;
        self.bot.ingest_weighted(t, sql, count)
    }

    /// Durable [`QueryBot5000::ingest_batch`] (append-then-apply).
    ///
    /// The whole batch travels in one WAL frame, so a crash either loses
    /// the entire tick or none of it — replay routes the frame back
    /// through the sharded engine and re-derives identical state,
    /// including the shard caches.
    pub fn ingest_batch(&mut self, batch: &[BatchItem<'_>]) -> Result<BatchReport, Error> {
        let items: Vec<(Minute, u64, String)> =
            batch.iter().map(|it| (it.minute, it.count, it.sql.to_string())).collect();
        self.append(&WalRecord::IngestBatch { items })?;
        Ok(self.bot.ingest_batch(batch))
    }

    /// Durable [`QueryBot5000::update_clusters`]: the instant is WAL-framed
    /// and, after the rebuild, a snapshot is cut when the configured
    /// `snapshot_every_rounds` policy comes due.
    pub fn update_clusters(&mut self, now: Minute) -> Result<UpdateReport, Error> {
        self.append(&WalRecord::ClusterUpdate { now })?;
        let report = self.bot.update_clusters(now);
        self.rounds_since_snapshot += 1;
        if self.rounds_since_snapshot >= self.snapshot_every_rounds {
            self.snapshot()?;
        }
        Ok(report)
    }

    /// Durable [`QueryBot5000::compact_histories`].
    pub fn compact_histories(&mut self) -> Result<(), Error> {
        self.append(&WalRecord::Compact)?;
        self.bot.compact_histories();
        Ok(())
    }

    /// Cuts a snapshot of the full pipeline state now (also called
    /// automatically by the `snapshot_every_rounds` policy). Rotates the
    /// WAL and prunes state older than the fallback snapshot.
    pub fn snapshot(&mut self) -> Result<(), Error> {
        let _span = self.snapshot_time.start();
        let full = FullState {
            pipeline: self.bot.export_state(),
            manager: self.manager.as_ref().map(ForecastManager::export_state),
            tracer: self.bot.tracer().export_state(),
        };
        let payload = encode_full_state(&full);
        self.store.snapshot(self.seq, &payload)?;
        self.snapshot_bytes.set(payload.len() as f64);
        self.snapshots_metric.inc();
        self.rounds_since_snapshot = 0;
        Ok(())
    }

    /// Attaches a [`ForecastManager`] (fresh, or rebuilt from
    /// [`RecoveryReport::manager`] via [`ForecastManager::restore`]); its
    /// serving state joins subsequent snapshots. The pipeline's recorder
    /// and tracer are installed into it, matching the non-durable wiring.
    pub fn attach_manager(&mut self, mut manager: ForecastManager) {
        manager.set_recorder(self.bot.recorder());
        manager.set_tracer(self.bot.tracer());
        self.manager = Some(manager);
    }

    /// The attached manager, if any.
    pub fn manager(&self) -> Option<&ForecastManager> {
        self.manager.as_ref()
    }

    /// [`ForecastManager::ensure_trained`] against this pipeline.
    ///
    /// # Panics
    /// Panics if no manager is attached.
    pub fn ensure_trained(&mut self, now: Minute) -> Result<RetrainOutcome, Error> {
        let mgr = self
            .manager
            .as_mut()
            .expect("DurablePipeline::ensure_trained: attach_manager first");
        mgr.ensure_trained(&self.bot, now)
    }

    /// [`ForecastManager::predict_tracked`] against this pipeline.
    ///
    /// # Panics
    /// Panics if no manager is attached (see
    /// [`DurablePipeline::attach_manager`]) or the manager was never
    /// trained.
    pub fn predict_tracked(&mut self, now: Minute, horizon_idx: usize) -> Vec<f64> {
        let mgr = self
            .manager
            .as_mut()
            .expect("DurablePipeline::predict_tracked: attach_manager first");
        mgr.predict_tracked(&self.bot, now, horizon_idx)
    }

    /// The wrapped pipeline, read-only. Mutations must go through the
    /// durable methods so they hit the WAL.
    pub fn bot(&self) -> &QueryBot5000 {
        &self.bot
    }

    /// Health of the wrapped pipeline, with the manager's rolling
    /// forecast-accuracy rows attached when one is present.
    pub fn health(&self) -> PipelineHealth {
        let h = self.bot.health();
        match &self.manager {
            Some(mgr) => h.with_accuracy(mgr.accuracy()),
            None => h,
        }
    }

    /// Sequence of the last durable operation.
    pub fn durable_seq(&self) -> u64 {
        self.seq
    }

    /// Store activity counters (snapshot bytes/frames written).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Replaces the crash-injection hook (test harnesses re-arm between
    /// phases).
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.store.set_hook(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::HorizonSpec;
    use qb_durable::IoPoint;
    use qb_timeseries::MINUTES_PER_DAY;
    use std::path::Path;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qb-core-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &Path) -> Qb5000Config {
        Qb5000Config {
            durability: Some(DurabilityConfig::new(dir)),
            ..Qb5000Config::default()
        }
    }

    fn feed(p: &mut DurablePipeline, days: i64) {
        for minute in 0..days * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (8..20).contains(&hour) { 30 } else { 3 };
            p.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", v).unwrap();
            let nv = if (8..20).contains(&hour) { 2 } else { 25 };
            p.ingest_weighted(minute, "SELECT b FROM u WHERE id = 2", nv).unwrap();
        }
    }

    #[test]
    fn open_requires_durability_policy() {
        let Err(err) = DurablePipeline::open(Qb5000Config::default()) else {
            panic!("open without a durability policy must fail");
        };
        assert_eq!(err.stage(), "durability");
        assert!(!err.is_injected_crash());
    }

    #[test]
    fn fresh_open_reports_no_recovery() {
        let dir = tmp_dir("fresh");
        let (p, report) = DurablePipeline::open(durable_config(&dir)).unwrap();
        assert!(!report.recovered());
        assert_eq!(report.snapshot_seq, None);
        assert_eq!(p.durable_seq(), 0);
    }

    #[test]
    fn full_state_round_trips_through_bytes() {
        let dir = tmp_dir("roundtrip");
        let (mut p, _) = DurablePipeline::open(durable_config(&dir)).unwrap();
        feed(&mut p, 2);
        let _ = p.ingest_weighted(5, "SELEC broken", 3); // quarantine content
        p.update_clusters(2 * MINUTES_PER_DAY).unwrap();
        let full = FullState {
            pipeline: p.bot().export_state(),
            manager: None,
            tracer: None,
        };
        let bytes = encode_full_state(&full);
        let back = decode_full_state(&bytes).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn version_mismatch_is_refused() {
        let full = FullState {
            pipeline: QueryBot5000::new(Qb5000Config::default()).export_state(),
            manager: None,
            tracer: None,
        };
        let mut bytes = encode_full_state(&full);
        bytes[0] = 0xFF; // clobber the version prefix
        let err = decode_full_state(&bytes).unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn wal_records_round_trip() {
        for rec in [
            WalRecord::Ingest { minute: -5, count: 42, sql: "SELECT 1".into() },
            WalRecord::ClusterUpdate { now: 1440 },
            WalRecord::Compact,
            WalRecord::IngestBatch { items: vec![] },
            WalRecord::IngestBatch {
                items: vec![
                    (0, 3, "SELECT 1".into()),
                    (-7, 1, String::new()),
                    (1440, u64::MAX, "SELEC broken".into()),
                ],
            },
        ] {
            let (kind, payload) = encode_wal_record(&rec);
            assert_eq!(decode_wal_record(kind, &payload).unwrap(), rec);
        }
        assert!(decode_wal_record(99, &[]).is_err());
    }

    #[test]
    fn recovery_after_clean_run_is_bit_identical() {
        let dir = tmp_dir("recover");
        let now = 3 * MINUTES_PER_DAY;
        let reference = {
            let (mut p, _) = DurablePipeline::open(durable_config(&dir)).unwrap();
            feed(&mut p, 3);
            p.update_clusters(now).unwrap();
            // More sightings after the snapshot: these live only in the WAL.
            for minute in now..now + 120 {
                p.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", 7).unwrap();
            }
            (p.bot().export_state(), p.health(), p.durable_seq())
        };
        let (p2, report) = DurablePipeline::open(durable_config(&dir)).unwrap();
        assert!(report.recovered());
        assert_eq!(report.snapshot_seq, Some(reference.2 - 120));
        assert_eq!(report.statements_replayed, 120);
        assert_eq!(p2.bot().export_state(), reference.0, "state replays bit-identically");
        assert_eq!(p2.health(), reference.1);
        assert_eq!(p2.durable_seq(), reference.2);
    }

    #[test]
    fn batched_ingest_recovers_bit_identically_including_shard_caches() {
        let dir = tmp_dir("recover-batch");
        let batch_at = |m: Minute| {
            vec![
                (m, "SELECT a FROM t WHERE id = 1".to_string(), 4u64),
                (m, "SELECT b FROM u WHERE id = 2".to_string(), 2),
                (m, "SELEC broken".to_string(), 1),
            ]
        };
        fn as_items(owned: &[(Minute, String, u64)]) -> Vec<BatchItem<'_>> {
            owned
                .iter()
                .map(|(minute, sql, count)| BatchItem { minute: *minute, sql, count: *count })
                .collect()
        }
        let reference = {
            let (mut p, _) = DurablePipeline::open(durable_config(&dir)).unwrap();
            for m in 0..60 {
                let owned = batch_at(m);
                p.ingest_batch(&as_items(&owned)).unwrap();
            }
            p.update_clusters(60).unwrap();
            // Batches after the snapshot live only in the WAL.
            for m in 60..75 {
                let owned = batch_at(m);
                p.ingest_batch(&as_items(&owned)).unwrap();
            }
            (p.bot().export_state(), p.health(), p.durable_seq())
        };
        assert!(
            !reference.0.pre.shard_slots.is_empty(),
            "batched ingest must populate the shard caches"
        );
        let (p2, report) = DurablePipeline::open(durable_config(&dir)).unwrap();
        assert!(report.recovered());
        assert_eq!(report.statements_replayed, 15 * 3);
        assert_eq!(
            p2.bot().export_state(),
            reference.0,
            "batched replay re-derives identical state, shard caches included"
        );
        assert_eq!(p2.health(), reference.1);
        assert_eq!(p2.durable_seq(), reference.2);
    }

    #[test]
    fn quarantined_statements_never_double_count() {
        let dir = tmp_dir("quarantine");
        let (mut p, _) = DurablePipeline::open(durable_config(&dir)).unwrap();
        feed(&mut p, 1);
        for k in 0..5 {
            assert!(p.ingest_weighted(100 + k, "SELEC nope", 2).is_err());
        }
        p.update_clusters(MINUTES_PER_DAY).unwrap(); // snapshot includes the ring
        assert!(p.ingest_weighted(2000, "SELEC nope again", 1).is_err()); // WAL-only
        let before = p.health();
        drop(p);
        let (p2, _) = DurablePipeline::open(durable_config(&dir)).unwrap();
        let after = p2.health();
        assert_eq!(after.rejected_statements, 6);
        assert_eq!(after.rejected_arrivals, 11);
        assert_eq!(after, before, "ingest accounting identity across crash-restart");
    }

    #[test]
    fn injected_crash_mid_append_loses_only_that_operation() {
        let dir = tmp_dir("crash-append");
        let now = MINUTES_PER_DAY;
        {
            let (mut p, _) = DurablePipeline::open(durable_config(&dir)).unwrap();
            feed(&mut p, 1);
            p.update_clusters(now).unwrap();
            p.set_fault_hook(FaultHook::crash_at_point(IoPoint::WalFrameHalf));
            let err = p.ingest_weighted(now + 1, "SELECT a FROM t WHERE id = 1", 9).unwrap_err();
            assert!(err.is_injected_crash());
        }
        let (p2, report) = DurablePipeline::open(durable_config(&dir)).unwrap();
        // The torn frame was truncated; state matches the pre-crash prefix.
        assert_eq!(report.statements_replayed, 0);
        assert_eq!(p2.health().ingested_statements, 2 * MINUTES_PER_DAY as u64);
        // The pipeline keeps accepting (sequence continues past the tear).
        let (mut p2, _) = DurablePipeline::open(durable_config(&dir)).unwrap();
        p2.ingest_weighted(now + 1, "SELECT a FROM t WHERE id = 1", 9).unwrap();
    }

    #[test]
    fn manager_state_travels_through_snapshot() {
        let dir = tmp_dir("manager");
        let now = 6 * MINUTES_PER_DAY;
        let factory = || {
            Box::new(qb_forecast::LinearRegression::default()) as Box<dyn qb_forecast::Forecaster>
        };
        let prediction = {
            let (mut p, report) = DurablePipeline::open(durable_config(&dir)).unwrap();
            assert!(report.manager.is_none());
            feed(&mut p, 6);
            p.update_clusters(now).unwrap();
            p.attach_manager(ForecastManager::new(vec![HorizonSpec::hourly(1)], factory));
            p.ensure_trained(now).unwrap();
            let pred = p.predict_tracked(now, 0);
            p.snapshot().unwrap(); // manager state now in the snapshot
            pred
        };
        let (mut p2, report) = DurablePipeline::open(durable_config(&dir)).unwrap();
        let mstate = report.manager.expect("manager state recovered");
        let mgr = ForecastManager::restore(
            vec![HorizonSpec::hourly(1)],
            factory,
            mstate,
            p2.bot(),
        )
        .unwrap();
        p2.attach_manager(mgr);
        assert_eq!(p2.ensure_trained(now).unwrap(), RetrainOutcome::UpToDate);
        assert_eq!(p2.predict_tracked(now, 0), prediction, "warm-start predictions identical");
    }

    #[test]
    fn tracer_stream_survives_recovery() {
        use qb_trace::TraceSettings;
        let dir = tmp_dir("tracer");
        let now = MINUTES_PER_DAY;
        let make_cfg = |dir: &Path| Qb5000Config {
            tracer: qb_trace::Tracer::new(TraceSettings::default()),
            durability: Some(DurabilityConfig::new(dir)),
            ..Qb5000Config::default()
        };
        let reference = {
            let (mut p, _) = DurablePipeline::open(make_cfg(&dir)).unwrap();
            feed(&mut p, 1);
            p.update_clusters(now).unwrap();
            for minute in now..now + 30 {
                p.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", 4).unwrap();
            }
            p.bot().tracer().export_state().unwrap()
        };
        let (p2, _) = DurablePipeline::open(make_cfg(&dir)).unwrap();
        let recovered = p2.bot().tracer().export_state().unwrap();
        assert_eq!(recovered, reference, "trace ring replays bit-identically");
    }

    #[test]
    fn snapshot_metrics_flow_to_recorder() {
        let dir = tmp_dir("metrics");
        let rec = qb_obs::Recorder::new();
        let cfg = Qb5000Config {
            recorder: rec.clone(),
            durability: Some(DurabilityConfig::new(&dir)),
            ..Qb5000Config::default()
        };
        let (mut p, _) = DurablePipeline::open(cfg).unwrap();
        feed(&mut p, 1);
        p.update_clusters(MINUTES_PER_DAY).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["durability.fresh_starts"], 1);
        assert_eq!(snap.counters["durability.snapshots"], 1);
        assert!(snap.counters["durability.wal_appends"] > 0);
        assert!(snap.gauges["durability.snapshot_bytes"] > 0.0);
        assert_eq!(snap.histograms["durability.snapshot"].count, 1);
        assert!(p.store_stats().last_snapshot_bytes > 0);
    }

    #[test]
    fn snapshot_every_n_rounds_policy_holds() {
        let dir = tmp_dir("policy");
        let cfg = Qb5000Config {
            durability: Some(DurabilityConfig::new(&dir).snapshot_every_rounds(3)),
            ..Qb5000Config::default()
        };
        let (mut p, _) = DurablePipeline::open(cfg).unwrap();
        feed(&mut p, 1);
        for round in 1..=6 {
            p.update_clusters(MINUTES_PER_DAY + round * 60).unwrap();
        }
        assert_eq!(p.store_stats().snapshots_written, 2, "6 rounds / every 3");
    }
}
