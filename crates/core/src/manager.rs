//! Multi-horizon model management (§6.2 / §3).
//!
//! "The planning module of a self-driving DBMS also decides how far ahead
//! of time its models need to make predictions. QB5000 builds a forecasting
//! model for each required prediction horizon." And from §3: "Every time
//! the cluster assignment changes for templates, QB5000 re-trains its
//! models."
//!
//! [`ForecastManager`] owns one model per configured horizon, tracks which
//! cluster set each was trained on, and retrains lazily when the Clusterer's
//! assignments change (or on first use). Prediction always feeds the most
//! recent data into the models, per §3.
//!
//! Resilience: a failed retrain (divergence, solver breakdown) never takes
//! prediction dark. The previous models — the *last-known-good snapshot*,
//! kept together with the [`ClusterInfo`] set they were trained on — keep
//! serving, and retries are spaced by capped exponential backoff counted in
//! retrain *rounds* (calls that would retrain), not wall-clock time, so
//! replayed traces behave deterministically.

use qb_clusterer::ClusterId;
use qb_forecast::{DegradationLevel, ForecastError, Forecaster};
use qb_obs::Recorder;
use qb_parallel::ThreadPool;
use qb_timeseries::{Interval, Minute};
use qb_serve::{ColdStartOrigin, ServeHealth};
use qb_trace::{EventDraft, EventId, EventKind, LaneBuffer, Scope, Tracer};

use crate::accuracy::{AccuracyTracker, AccuracyTrackerState, DEFAULT_ACCURACY_WINDOW};
use crate::error::Error;
use crate::pipeline::{ClusterInfo, ClusterInfoState, JobSpan, QueryBot5000};
use crate::serve::ColdSeed;

/// One prediction horizon the planning module requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HorizonSpec {
    /// Aggregation interval for this model's series.
    pub interval: Interval,
    /// Input window, in steps of `interval` (one day at the interval is the
    /// paper's choice for LR/RNN).
    pub window: usize,
    /// Steps ahead to predict.
    pub horizon: usize,
    /// Training span, in steps (the paper trains on up to three weeks).
    pub train_steps: usize,
}

impl HorizonSpec {
    /// The paper's standard hourly-interval spec for a horizon in hours.
    pub fn hourly(horizon_hours: usize) -> Self {
        Self {
            interval: Interval::HOUR,
            window: 24,
            horizon: horizon_hours,
            train_steps: 21 * 24,
        }
    }
}

/// Why (or whether) the last `ensure_trained` call retrained.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainOutcome {
    /// Models were current; nothing retrained.
    UpToDate,
    /// Models retrained (first train, or cluster assignments changed).
    Retrained { horizons: usize },
    /// Training skipped: no clusters tracked yet.
    NoClusters,
    /// Retrain failed; the last-known-good snapshot keeps serving and the
    /// next retry is `retry_after_rounds` retrain rounds away.
    RolledBack { error: ForecastError, retry_after_rounds: u64 },
    /// Inside a backoff window: the retrain was skipped, `rounds_remaining`
    /// more rounds pass before the next attempt.
    BackedOff { rounds_remaining: u64 },
}

/// Backoff cap, in skipped retrain rounds.
const MAX_BACKOFF_ROUNDS: u64 = 32;

/// Observability snapshot of the manager's failure handling.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastHealth {
    /// Successful retrain rounds.
    pub retrain_count: u64,
    /// Failed retrain attempts since the last success.
    pub consecutive_failures: u32,
    /// Retrain rounds left in the current backoff window.
    pub backoff_remaining: u64,
    /// Total failed retrains that rolled back to a snapshot.
    pub rollbacks: u64,
    /// Message of the most recent training failure.
    pub last_error: Option<String>,
    /// True when predictions come from a last-known-good snapshot rather
    /// than models trained on the current cluster assignments.
    pub serving_snapshot: bool,
}

impl crate::pipeline::PipelineHealth {
    /// Appends the forecaster stage's last error, completing the per-stage
    /// picture for a pipeline driven through a [`ForecastManager`].
    pub fn with_forecast(mut self, fh: &ForecastHealth) -> Self {
        if let Some(e) = &fh.last_error {
            self.last_errors.push(("forecaster", e.clone()));
        }
        self
    }
}

/// Plain-data snapshot of a [`ForecastManager`]'s serving state —
/// everything except the fitted models themselves (and the model factory,
/// which is a closure and cannot be serialized).
///
/// Recovery rebuilds the models deterministically:
/// [`ForecastManager::restore`] re-runs each horizon's fit on the training
/// data reconstructed at [`ManagerState::last_train_now`], which the
/// restored arrival histories reproduce exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerState {
    /// Successful retrain rounds.
    pub retrain_count: u64,
    /// Failed retrain attempts since the last success.
    pub consecutive_failures: u32,
    /// Retrain rounds left in the current backoff window.
    pub backoff_remaining: u64,
    /// Total failed retrains that rolled back to a snapshot.
    pub rollbacks: u64,
    /// Message of the most recent training failure.
    pub last_error: Option<String>,
    /// Cluster identity (id + sorted members) the live models were keyed
    /// on, for the staleness check.
    pub trained_clusters: Option<Vec<(u64, Vec<u32>)>>,
    /// The full cluster set the live models were trained on.
    pub trained_on: Option<Vec<ClusterInfoState>>,
    /// Last observed degradation level per horizon.
    pub last_degradation: Vec<Option<DegradationLevel>>,
    /// `now` of the last successful retrain (`None` = never trained).
    pub last_train_now: Option<Minute>,
    /// The embedded accuracy tracker, pending claims included.
    pub accuracy: AccuracyTrackerState,
}

/// Per-horizon forecasting models with §3's retrain rule.
pub struct ForecastManager {
    specs: Vec<HorizonSpec>,
    make_model: Box<dyn Fn() -> Box<dyn Forecaster> + Send + Sync>,
    models: Vec<Option<Box<dyn Forecaster>>>,
    /// The cluster state (ids + member sets) each live model was trained on.
    trained_clusters: Option<Vec<(ClusterId, Vec<u32>)>>,
    /// The full cluster set the live models were trained on; prediction
    /// rebuilds its input series from these (not the bot's current
    /// clusters), so a stale snapshot still knows what to predict.
    trained_on: Option<Vec<ClusterInfo>>,
    /// Number of retrain rounds performed (observability).
    pub retrain_count: u64,
    consecutive_failures: u32,
    backoff_remaining: u64,
    rollbacks: u64,
    last_error: Option<String>,
    /// Worker threads for the per-horizon fit fan-out (1 = sequential).
    threads: usize,
    /// Recorder handed to every freshly built model (composites count
    /// divergences through it); disabled until
    /// [`ForecastManager::set_recorder`].
    recorder: Recorder,
    /// `forecast.fit.h<i>` fit-time histograms, aligned with `specs`.
    fit_times: Vec<qb_obs::Histogram>,
    predict_time: qb_obs::Histogram,
    retrains_metric: qb_obs::Counter,
    rollbacks_metric: qb_obs::Counter,
    /// Cold-start seeds published across all retrains
    /// (`forecast.cold_starts`).
    cold_starts_metric: qb_obs::Counter,
    backoffs_metric: qb_obs::Counter,
    degradation_transitions: qb_obs::Counter,
    /// `forecast.degradation.h<i>` gauges (0 = full … 3 = last-value).
    degradation_gauges: Vec<qb_obs::Gauge>,
    /// Last observed degradation level per horizon (transition detector;
    /// survives across retrain rounds even though models are rebuilt).
    last_degradation: Vec<Option<DegradationLevel>>,
    /// `now` of the last successful retrain. Durable recovery re-fits the
    /// serving models at exactly this instant (models themselves are not
    /// serialized — training is deterministic, so re-fitting on the same
    /// data reproduces them bit-identically).
    last_train_now: Option<Minute>,
    /// Rolling prediction-accuracy scorer fed by
    /// [`ForecastManager::predict_tracked`].
    accuracy: AccuracyTracker,
    /// Decision-lineage tracer; disabled until
    /// [`ForecastManager::set_tracer`].
    tracer: Tracer,
}

/// Deterministic name of a [`DegradationLevel`] for trace payloads.
fn degradation_name(level: DegradationLevel) -> &'static str {
    match level {
        DegradationLevel::Full => "full",
        DegradationLevel::Ensemble => "ensemble",
        DegradationLevel::Single => "single",
        DegradationLevel::LastValue => "last_value",
    }
}

/// Gauge encoding of a [`DegradationLevel`] (ordered, 0 = healthy).
fn degradation_index(level: DegradationLevel) -> f64 {
    match level {
        DegradationLevel::Full => 0.0,
        DegradationLevel::Ensemble => 1.0,
        DegradationLevel::Single => 2.0,
        DegradationLevel::LastValue => 3.0,
    }
}

impl ForecastManager {
    /// Creates a manager with a model factory (one fresh model per horizon
    /// per retrain round).
    pub fn new(
        specs: Vec<HorizonSpec>,
        make_model: impl Fn() -> Box<dyn Forecaster> + Send + Sync + 'static,
    ) -> Self {
        assert!(!specs.is_empty(), "ForecastManager: need at least one horizon");
        let models = specs.iter().map(|_| None).collect();
        let horizons = specs.len();
        Self {
            specs,
            make_model: Box::new(make_model),
            models,
            trained_clusters: None,
            trained_on: None,
            retrain_count: 0,
            consecutive_failures: 0,
            backoff_remaining: 0,
            rollbacks: 0,
            last_error: None,
            threads: qb_parallel::configured_threads(),
            recorder: Recorder::disabled(),
            fit_times: vec![qb_obs::Histogram::default(); horizons],
            predict_time: qb_obs::Histogram::default(),
            retrains_metric: qb_obs::Counter::default(),
            rollbacks_metric: qb_obs::Counter::default(),
            cold_starts_metric: qb_obs::Counter::default(),
            backoffs_metric: qb_obs::Counter::default(),
            degradation_transitions: qb_obs::Counter::default(),
            degradation_gauges: vec![qb_obs::Gauge::default(); horizons],
            last_degradation: vec![None; horizons],
            last_train_now: None,
            accuracy: AccuracyTracker::new(horizons, DEFAULT_ACCURACY_WINDOW),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the pipeline's [`Tracer`] so retrain rounds leave a
    /// decision lineage: per-horizon `ModelFit`/`ModelFitFailed` events
    /// parented on the clusterer state they trained against, divergence
    /// guards and rollbacks chained off the failing fit, and degradation
    /// transitions off the serving model. Divergence and degradation
    /// downgrades also snapshot an automatic flight-recorder dump.
    /// Usually called with [`crate::QueryBot5000::tracer`].
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Installs a [`Recorder`]: retrain rounds then record per-horizon fit
    /// times (`forecast.fit.h<i>`), prediction latency, retrain/rollback/
    /// backoff counters, degradation gauges and transitions, and — via the
    /// embedded [`AccuracyTracker`] — rolling MSE gauges. Freshly built
    /// models are instrumented with the same recorder, so composite-member
    /// divergences (`forecast.divergences`) land in the same registry.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
        self.fit_times = (0..self.specs.len())
            .map(|i| recorder.histogram(&format!("forecast.fit.h{i}")))
            .collect();
        self.predict_time = recorder.histogram("forecast.predict");
        self.retrains_metric = recorder.counter("forecast.retrains");
        self.rollbacks_metric = recorder.counter("forecast.rollbacks");
        self.cold_starts_metric = recorder.counter("forecast.cold_starts");
        self.backoffs_metric = recorder.counter("forecast.backoffs");
        self.degradation_transitions = recorder.counter("forecast.degradation_transitions");
        self.degradation_gauges = (0..self.specs.len())
            .map(|i| recorder.gauge(&format!("forecast.degradation.h{i}")))
            .collect();
        self.accuracy.set_recorder(recorder);
    }

    /// The configured horizons.
    pub fn specs(&self) -> &[HorizonSpec] {
        &self.specs
    }

    /// Overrides the environment-derived worker count for per-horizon
    /// training (1 = strictly sequential).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Worker threads the next retrain round will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when every horizon has a live model for the current clusters
    /// (same cluster ids AND the same member assignments — §3 retrains on
    /// any assignment change, not just on id churn).
    pub fn is_current(&self, bot: &QueryBot5000) -> bool {
        self.trained_clusters.as_deref() == Some(&Self::cluster_state(bot)[..])
            && self.models.iter().all(Option::is_some)
    }

    /// The tracked-cluster identity the models are keyed on: cluster id
    /// plus its (sorted) member template ids.
    fn cluster_state(bot: &QueryBot5000) -> Vec<(ClusterId, Vec<u32>)> {
        bot.tracked_clusters()
            .iter()
            .map(|c| {
                let mut members: Vec<u32> = c.members.iter().map(|m| m.0).collect();
                members.sort_unstable();
                (c.id, members)
            })
            .collect()
    }

    /// True when a full set of previously trained models exists and can
    /// keep serving predictions even though a retrain failed.
    fn has_snapshot(&self) -> bool {
        self.trained_on.is_some() && self.models.iter().all(Option::is_some)
    }

    /// Health report: retrain/rollback counters, backoff state, and the
    /// last training error (per-stage "forecaster" view of the pipeline).
    pub fn health(&self) -> ForecastHealth {
        ForecastHealth {
            retrain_count: self.retrain_count,
            consecutive_failures: self.consecutive_failures,
            backoff_remaining: self.backoff_remaining,
            rollbacks: self.rollbacks,
            last_error: self.last_error.clone(),
            serving_snapshot: self.consecutive_failures > 0 && self.has_snapshot(),
        }
    }

    /// Retrains if the tracked cluster set changed since the last round
    /// (§3's rule) or no models exist yet.
    ///
    /// A failed training round does NOT discard the previous models: they
    /// stay installed as the last-known-good snapshot (predictions keep
    /// flowing from them), the failure is recorded, and subsequent rounds
    /// back off exponentially (1, 2, 4, … skipped rounds, capped at
    /// 32) before retrying. `Err` (an
    /// [`Error::Forecast`]) is only returned when training fails with *no*
    /// snapshot to fall back on.
    pub fn ensure_trained(
        &mut self,
        bot: &QueryBot5000,
        now: Minute,
    ) -> Result<RetrainOutcome, Error> {
        if bot.tracked_clusters().is_empty() {
            return Ok(RetrainOutcome::NoClusters);
        }
        if self.is_current(bot) {
            return Ok(RetrainOutcome::UpToDate);
        }
        if self.backoff_remaining > 0 {
            self.backoff_remaining -= 1;
            self.backoffs_metric.inc();
            if self.tracer.is_enabled() {
                self.tracer.record(
                    EventDraft::new(EventKind::RetrainBackedOff)
                        .parent_opt(self.tracer.anchor(Scope::ClusterState, 0))
                        .uint("rounds_remaining", self.backoff_remaining),
                );
            }
            return Ok(RetrainOutcome::BackedOff { rounds_remaining: self.backoff_remaining });
        }
        // Gather every horizon's training job up front (cheap series
        // extraction), so the fit fan-out below owns all its inputs.
        let mut jobs = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let Some(job) = bot.forecast_job_with(
                now,
                spec.interval,
                spec.window,
                spec.horizon,
                JobSpan::Steps(spec.train_steps),
            ) else {
                // Not enough recorded history for this horizon yet.
                return Ok(RetrainOutcome::NoClusters);
            };
            jobs.push(job);
        }
        // Train a complete replacement set before touching the live models,
        // so a mid-round failure can't leave horizons half-updated. Each
        // horizon fits on its own worker; results join in horizon order,
        // so the first error reported (and the failure accounting) is
        // bit-identical to a sequential run. Timings and divergence counts
        // land on thread-safe recorder handles.
        let _train_stage = self.tracer.stage("forecast.train");
        let make_model = &self.make_model;
        let recorder = &self.recorder;
        let fit_times = &self.fit_times;
        let specs = &self.specs;
        let tracer_on = self.tracer.is_enabled();
        let cluster_anchor = self.tracer.anchor(Scope::ClusterState, 0);
        let fitted: Vec<(Result<Box<dyn Forecaster>, ForecastError>, LaneBuffer)> =
            ThreadPool::new(self.threads).map(jobs, |i, job| {
                // Workers buffer their trace events in a per-horizon lane;
                // the control thread merges lanes in input order below, so
                // the event stream is identical at any thread count.
                let mut lane = LaneBuffer::new(1 + i as u32);
                let _fit_span = fit_times[i].start();
                let mut model = make_model();
                model.instrument(recorder);
                let res = model.fit(&job.series, job.spec).map(|()| model);
                if tracer_on {
                    let spec = specs[i];
                    match &res {
                        Ok(m) => {
                            lane.push(
                                EventDraft::new(EventKind::ModelFit)
                                    .parent_opt(cluster_anchor)
                                    .uint("horizon_idx", i as u64)
                                    .uint("horizon_steps", spec.horizon as u64)
                                    .uint("window", spec.window as u64)
                                    .uint("clusters", job.series.len() as u64)
                                    .text("model", m.name()),
                            );
                        }
                        Err(e) => {
                            let msg: String = e.to_string().chars().take(120).collect();
                            lane.push(
                                EventDraft::new(EventKind::ModelFitFailed)
                                    .parent_opt(cluster_anchor)
                                    .uint("horizon_idx", i as u64)
                                    .text("error", &msg),
                            );
                        }
                    }
                }
                (res, lane)
            });
        let (results, lanes): (Vec<_>, Vec<_>) = fitted.into_iter().unzip();
        let fit_ids = self.tracer.merge_lanes(lanes);
        let lane_event = |i: usize| fit_ids.get(i).and_then(|ids| ids.first()).copied();
        let mut fresh: Vec<Box<dyn Forecaster>> = Vec::with_capacity(results.len());
        for (i, res) in results.into_iter().enumerate() {
            match res {
                Ok(model) => fresh.push(model),
                Err(e) => {
                    self.consecutive_failures += 1;
                    let shift = (self.consecutive_failures - 1).min(63);
                    self.backoff_remaining = (1u64 << shift).min(MAX_BACKOFF_ROUNDS);
                    self.last_error = Some(e.to_string());
                    if tracer_on && matches!(e, ForecastError::Diverged { .. }) {
                        let guard = self.tracer.record(
                            EventDraft::new(EventKind::DivergenceGuard)
                                .parent_opt(lane_event(i))
                                .uint("horizon_idx", i as u64)
                                .uint("consecutive_failures", self.consecutive_failures as u64),
                        );
                        self.tracer.trigger_dump("diverged", guard);
                    }
                    if self.has_snapshot() {
                        self.rollbacks += 1;
                        self.rollbacks_metric.inc();
                        if tracer_on {
                            self.tracer.record(
                                EventDraft::new(EventKind::RetrainRolledBack)
                                    .parent_opt(lane_event(i))
                                    .uint("retry_after_rounds", self.backoff_remaining),
                            );
                        }
                        return Ok(RetrainOutcome::RolledBack {
                            error: e,
                            retry_after_rounds: self.backoff_remaining,
                        });
                    }
                    return Err(e.into());
                }
            }
        }
        let trained = fresh.len();
        self.models = fresh.into_iter().map(Some).collect();
        self.trained_clusters = Some(Self::cluster_state(bot));
        self.trained_on = Some(bot.tracked_clusters().to_vec());
        self.last_train_now = Some(now);
        self.retrain_count += 1;
        self.retrains_metric.inc();
        // Anchor each horizon to its freshly serving fit before the
        // degradation pass, so transitions chain off the new model.
        for i in 0..self.specs.len() {
            if let Some(fit) = lane_event(i) {
                self.tracer.set_anchor(Scope::Horizon, i as u64, fit);
            }
        }
        self.observe_degradation();
        // With serving on, push this round's fresh predictions into the
        // lock-free snapshot: one curve per (cluster, horizon slot),
        // parented on the fits that produced them, plus the accuracy/
        // degradation summary. Horizons the service doesn't carry a
        // matching slot for are skipped — the snapshot only ever serves
        // curves whose shape its metadata describes.
        if let Some(serve) = bot.serve() {
            let slots = serve.horizons().len();
            let mut rolling_mse = vec![None; slots];
            let mut model_names = vec![None; slots];
            let mut predictions = Vec::new();
            let mut parents: Vec<EventId> = Vec::new();
            for (i, spec) in self.specs.iter().enumerate() {
                let Some(slot) = serve.slot_for(spec) else { continue };
                predictions.push((slot, self.predict(bot, now, i)));
                rolling_mse[slot] = self.accuracy.rolling_mse(i);
                model_names[slot] =
                    self.models[i].as_deref().map(|m| m.name().to_string());
                if let Some(fit) = lane_event(i) {
                    parents.push(fit);
                }
            }
            let degraded = self
                .models
                .iter()
                .flatten()
                .any(|m| m.degradation() != DegradationLevel::Full);
            let clusters =
                self.trained_on.as_deref().expect("trained_on installed just above");
            // With cold start on, seed forecasts for templates the fresh
            // routing doesn't cover (new since training, or never part of
            // a tracked cluster) so readers get a typed estimate instead
            // of Missing while the template accrues history.
            let cold = if bot.cold_start_enabled() {
                Self::cold_start_seeds(&self.specs, bot, now, clusters, &predictions)
            } else {
                Vec::new()
            };
            self.cold_starts_metric.add(cold.len() as u64);
            serve.publish_forecasts_with_cold(
                now,
                clusters,
                &predictions,
                &cold,
                Some(ServeHealth { degraded, rolling_mse, models: model_names }),
                &parents,
            );
        }
        self.consecutive_failures = 0;
        self.backoff_remaining = 0;
        self.last_error = None;
        Ok(RetrainOutcome::Retrained { horizons: trained })
    }

    /// Cold-start seeds for templates the freshly trained routing does
    /// not cover. A template already assigned to a trained cluster is
    /// seeded from that cluster's predicted rate scaled by the template's
    /// recent share of the cluster's volume (over the first spec's window
    /// ending at the training cut); templates with no trained-cluster
    /// assignment — or no observable volume yet — get the population
    /// prior: the mean predicted per-member rate across all tracked
    /// clusters. Candidates are walked in template-id order on the
    /// control thread, so the seed list is bit-identical at any
    /// `QB_THREADS`.
    fn cold_start_seeds(
        specs: &[HorizonSpec],
        bot: &QueryBot5000,
        now: Minute,
        clusters: &[ClusterInfo],
        predictions: &[(usize, Vec<f64>)],
    ) -> Vec<ColdSeed> {
        let Some(spec) = specs.first() else { return Vec::new() };
        let pre = bot.preprocessor();
        let covered: std::collections::HashSet<u32> =
            clusters.iter().flat_map(|c| c.members.iter().map(|m| m.0)).collect();
        let member_count: usize = clusters.iter().map(|c| c.members.len()).sum();
        let prior = |predictions: &[(usize, Vec<f64>)]| -> Vec<(usize, f64)> {
            let denom = member_count.max(1) as f64;
            predictions
                .iter()
                .map(|&(slot, ref vals)| (slot, vals.iter().sum::<f64>() / denom))
                .collect()
        };
        let end = spec.interval.bucket_start(now);
        let start = end - spec.window as i64 * spec.interval.as_minutes();
        let mut seeds = Vec::new();
        for entry in pre.templates() {
            let t = entry.id;
            if covered.contains(&t.0) {
                continue;
            }
            let assigned = bot
                .clusterer()
                .cluster_of(t.0 as u64)
                .and_then(|cid| clusters.iter().position(|c| c.id == cid));
            let (origin, values) = match assigned {
                Some(j) => {
                    let tv: f64 = pre.template_series(t, start, end, spec.interval).iter().sum();
                    let cv: f64 =
                        bot.cluster_series(&clusters[j], start, end, spec.interval).iter().sum();
                    let share = if cv > 0.0 { tv / cv } else { 0.0 };
                    if share > 0.0 && share.is_finite() {
                        (
                            ColdStartOrigin::ClusterShare { cluster: clusters[j].id.0, share },
                            predictions
                                .iter()
                                .map(|&(slot, ref vals)| {
                                    (slot, vals.get(j).copied().unwrap_or(0.0) * share)
                                })
                                .collect(),
                        )
                    } else {
                        (ColdStartOrigin::PopulationPrior, prior(predictions))
                    }
                }
                None => (ColdStartOrigin::PopulationPrior, prior(predictions)),
            };
            seeds.push(ColdSeed { template: t.0, origin, values });
        }
        seeds
    }

    /// Updates the per-horizon degradation gauges after a retrain and
    /// counts level *transitions*. Models are rebuilt every round, so the
    /// previous level lives here, not in the (discarded) model.
    fn observe_degradation(&mut self) {
        for (i, model) in self.models.iter().enumerate() {
            let Some(model) = model.as_deref() else { continue };
            let level = model.degradation();
            self.degradation_gauges[i].set(degradation_index(level));
            let prev = self.last_degradation[i];
            let changed = match prev {
                Some(prev) => prev != level,
                // First observation only counts when it starts degraded.
                None => level != DegradationLevel::Full,
            };
            if changed {
                self.degradation_transitions.inc();
                if self.tracer.is_enabled() {
                    let ev = self.tracer.record(
                        EventDraft::new(EventKind::DegradationTransition)
                            .parent_opt(self.tracer.anchor(Scope::Horizon, i as u64))
                            .uint("horizon_idx", i as u64)
                            .text("from", prev.map_or("none", degradation_name))
                            .text("to", degradation_name(level)),
                    );
                    // Downgrades snapshot a flight-recorder dump; upgrades
                    // (recovery) are traced but don't warrant one.
                    let downgraded = prev
                        .is_none_or(|p| degradation_index(p) < degradation_index(level));
                    if downgraded {
                        self.tracer.trigger_dump("degraded", ev);
                    }
                }
            }
            self.last_degradation[i] = Some(level);
        }
    }

    /// Current degradation level of the serving model at one horizon
    /// (`None` before the first successful retrain).
    pub fn degradation(&self, horizon_idx: usize) -> Option<DegradationLevel> {
        self.models[horizon_idx].as_deref().map(Forecaster::degradation)
    }

    /// The cluster set predictions are currently produced for — the one the
    /// live models (or the last-known-good snapshot) were trained on.
    pub fn serving_clusters(&self) -> &[ClusterInfo] {
        self.trained_on
            .as_deref()
            .expect("ForecastManager::serving_clusters before ensure_trained")
    }

    /// Predicts every serving cluster's rate at the given horizon index,
    /// using the latest data ending at `now`.
    ///
    /// Predictions come from the models' own training-time cluster set
    /// ([`ForecastManager::serving_clusters`]) — after a failed retrain
    /// this is the last-known-good snapshot, so prediction never goes dark
    /// while retries back off.
    ///
    /// # Panics
    /// Panics if `horizon_idx` is out of range or the manager has never
    /// been trained (call [`ForecastManager::ensure_trained`] first).
    pub fn predict(&self, bot: &QueryBot5000, now: Minute, horizon_idx: usize) -> Vec<f64> {
        let _span = self.predict_time.start();
        let spec = self.specs[horizon_idx];
        let model = self.models[horizon_idx]
            .as_deref()
            .expect("ForecastManager::predict before ensure_trained");
        let clusters = self
            .trained_on
            .as_deref()
            .expect("ForecastManager::predict before ensure_trained");
        let end = spec.interval.bucket_start(now);
        let start = end - spec.window as i64 * spec.interval.as_minutes();
        let recent: Vec<Vec<f64>> = clusters
            .iter()
            .map(|c| bot.cluster_series(c, start, end, spec.interval))
            .collect();
        model.predict(&recent)
    }

    /// [`ForecastManager::predict`] plus accuracy bookkeeping: settles
    /// previously recorded claims that have matured by `now`, then records
    /// this round's predictions with the embedded [`AccuracyTracker`] so a
    /// later call can score them. The rolling MSE appears in
    /// [`ForecastManager::accuracy`] and — with a recorder installed — in
    /// the `forecast.mse.h<i>` gauges.
    ///
    /// # Panics
    /// Same contract as [`ForecastManager::predict`].
    pub fn predict_tracked(
        &mut self,
        bot: &QueryBot5000,
        now: Minute,
        horizon_idx: usize,
    ) -> Vec<f64> {
        self.accuracy.settle(bot, now);
        let predictions = self.predict(bot, now, horizon_idx);
        let spec = self.specs[horizon_idx];
        let clusters = self
            .trained_on
            .as_deref()
            .expect("ForecastManager::predict_tracked before ensure_trained");
        self.accuracy.record(
            horizon_idx,
            now,
            spec.interval,
            spec.horizon,
            clusters,
            &predictions,
        );
        predictions
    }

    /// The rolling prediction-accuracy scorer fed by
    /// [`ForecastManager::predict_tracked`].
    pub fn accuracy(&self) -> &AccuracyTracker {
        &self.accuracy
    }

    /// Plain-data snapshot of the manager's serving state (models and the
    /// factory excluded — see [`ManagerState`]).
    pub fn export_state(&self) -> ManagerState {
        ManagerState {
            retrain_count: self.retrain_count,
            consecutive_failures: self.consecutive_failures,
            backoff_remaining: self.backoff_remaining,
            rollbacks: self.rollbacks,
            last_error: self.last_error.clone(),
            trained_clusters: self
                .trained_clusters
                .as_ref()
                .map(|tc| tc.iter().map(|(id, m)| (id.0, m.clone())).collect()),
            trained_on: self
                .trained_on
                .as_ref()
                .map(|on| on.iter().map(ClusterInfo::export_state).collect()),
            last_degradation: self.last_degradation.clone(),
            last_train_now: self.last_train_now,
            accuracy: self.accuracy.export_state(),
        }
    }

    /// Rebuilds a manager from [`ForecastManager::export_state`], re-fitting
    /// the serving models against `bot`'s (restored) histories at the
    /// recorded training instant.
    ///
    /// `specs` and `make_model` must match the original manager's — the
    /// factory is a closure and travels outside the serialized state. The
    /// re-fit is silent (no recorder, no tracer, sequential): install those
    /// afterwards with [`ForecastManager::set_recorder`] /
    /// [`ForecastManager::set_tracer`]. Returns [`Error::Forecast`] when a
    /// model that trained before fails to train on the restored data — that
    /// means the histories don't match the state, i.e. corruption upstream.
    pub fn restore(
        specs: Vec<HorizonSpec>,
        make_model: impl Fn() -> Box<dyn Forecaster> + Send + Sync + 'static,
        state: ManagerState,
        bot: &QueryBot5000,
    ) -> Result<Self, Error> {
        let mut mgr = Self::new(specs, make_model);
        mgr.retrain_count = state.retrain_count;
        mgr.consecutive_failures = state.consecutive_failures;
        mgr.backoff_remaining = state.backoff_remaining;
        mgr.rollbacks = state.rollbacks;
        mgr.last_error = state.last_error;
        mgr.trained_clusters = state
            .trained_clusters
            .map(|tc| tc.into_iter().map(|(id, m)| (ClusterId(id), m)).collect());
        mgr.trained_on =
            state.trained_on.map(|on| on.into_iter().map(ClusterInfo::from_state).collect());
        let mut last_degradation = state.last_degradation;
        last_degradation.resize(mgr.specs.len(), None);
        mgr.last_degradation = last_degradation;
        mgr.last_train_now = state.last_train_now;
        mgr.accuracy = AccuracyTracker::restore(state.accuracy);
        if let (Some(train_now), Some(clusters)) = (mgr.last_train_now, mgr.trained_on.clone()) {
            for (i, spec) in mgr.specs.clone().iter().enumerate() {
                let job = bot
                    .forecast_job_for(
                        &clusters,
                        train_now,
                        spec.interval,
                        spec.window,
                        spec.horizon,
                        JobSpan::Steps(spec.train_steps),
                    )
                    .ok_or_else(|| {
                        Error::Durability {
                            detail: format!(
                                "manager restore: horizon {i} has no training data at \
                                 minute {train_now}; state and histories disagree"
                            ),
                            injected_crash: false,
                        }
                    })?;
                let mut model = (mgr.make_model)();
                model.fit(&job.series, job.spec)?;
                mgr.models[i] = Some(model);
            }
        }
        Ok(mgr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Qb5000Config;
    use qb_timeseries::MINUTES_PER_DAY;

    fn fed_bot(days: i64) -> QueryBot5000 {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        for minute in 0..days * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (8..20).contains(&hour) { 30 } else { 3 };
            bot.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", v).unwrap();
        }
        bot.update_clusters(days * MINUTES_PER_DAY);
        bot
    }

    fn manager() -> ForecastManager {
        ForecastManager::new(
            vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)],
            || Box::new(qb_forecast::LinearRegression::default()),
        )
    }

    #[test]
    fn trains_once_then_up_to_date() {
        let bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let mut mgr = manager();
        assert!(!mgr.is_current(&bot));
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert_eq!(r, RetrainOutcome::Retrained { horizons: 2 });
        assert!(mgr.is_current(&bot));
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert_eq!(r, RetrainOutcome::UpToDate);
        assert_eq!(mgr.retrain_count, 1);
    }

    #[test]
    fn retrains_when_clusters_change() {
        let mut bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let mut mgr = manager();
        mgr.ensure_trained(&bot, now).unwrap();
        // A new template with a brand-new pattern forces a new cluster.
        for minute in 0..6 * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (0..6).contains(&hour) { 40 } else { 1 };
            bot.ingest_weighted(minute, "SELECT b FROM u WHERE id = 2", v).unwrap();
        }
        bot.update_clusters(now);
        assert!(!mgr.is_current(&bot), "cluster set changed");
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(matches!(r, RetrainOutcome::Retrained { .. }));
        assert_eq!(mgr.retrain_count, 2);
    }

    #[test]
    fn predictions_reflect_each_horizon() {
        let bot = fed_bot(8);
        let now = 8 * MINUTES_PER_DAY; // midnight
        let mut mgr = manager();
        mgr.ensure_trained(&bot, now).unwrap();
        // Horizon 1 h from midnight: night volume (~3/min ≈ 180/h).
        let short = mgr.predict(&bot, now, 0);
        // Horizon 12 h from midnight: daytime volume (~30/min ≈ 1800/h).
        let long = mgr.predict(&bot, now, 1);
        assert_eq!(short.len(), long.len());
        assert!(
            long[0] > short[0] * 2.0,
            "noon prediction {} should exceed 1am prediction {}",
            long[0],
            short[0]
        );
    }

    #[test]
    fn no_clusters_reports_gracefully() {
        let bot = QueryBot5000::new(Qb5000Config::default());
        let mut mgr = manager();
        assert_eq!(mgr.ensure_trained(&bot, 0).unwrap(), RetrainOutcome::NoClusters);
    }

    #[test]
    #[should_panic(expected = "before ensure_trained")]
    fn predict_before_training_panics() {
        let bot = fed_bot(6);
        manager().predict(&bot, 6 * MINUTES_PER_DAY, 0);
    }

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A forecaster that trains as LR, except when the shared flag forces
    /// every `fit` to report divergence — simulates a model blowing up
    /// mid-retrain without touching the data path.
    struct FlakyModel {
        inner: qb_forecast::LinearRegression,
        fail: Arc<AtomicBool>,
    }

    impl Forecaster for FlakyModel {
        fn name(&self) -> &'static str {
            "FLAKY"
        }
        fn fit(
            &mut self,
            series: &[Vec<f64>],
            spec: qb_forecast::WindowSpec,
        ) -> Result<(), ForecastError> {
            if self.fail.load(Ordering::SeqCst) {
                return Err(ForecastError::Diverged {
                    model: "FLAKY",
                    detail: "forced by test".into(),
                });
            }
            self.inner.fit(series, spec)
        }
        fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
            self.inner.predict(recent)
        }
    }

    fn flaky_manager(fail: Arc<AtomicBool>) -> ForecastManager {
        ForecastManager::new(vec![HorizonSpec::hourly(1)], move || {
            Box::new(FlakyModel { inner: qb_forecast::LinearRegression::default(), fail: Arc::clone(&fail) })
        })
    }

    /// Mutates the bot so the cluster assignments change and the manager
    /// considers its models stale.
    fn grow_second_cluster(bot: &mut QueryBot5000, days: i64) {
        for minute in 0..days * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (0..6).contains(&hour) { 40 } else { 1 };
            bot.ingest_weighted(minute, "SELECT b FROM u WHERE id = 2", v).unwrap();
        }
        bot.update_clusters(days * MINUTES_PER_DAY);
    }

    #[test]
    fn failed_retrain_rolls_back_to_snapshot() {
        let mut bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let fail = Arc::new(AtomicBool::new(false));
        let mut mgr = flaky_manager(Arc::clone(&fail));
        mgr.ensure_trained(&bot, now).unwrap();
        let before = mgr.predict(&bot, now, 0);
        assert!(before.iter().all(|v| v.is_finite()));

        // Cluster change + a now-diverging model: retrain must fail but
        // the old snapshot keeps serving identical cluster coverage.
        grow_second_cluster(&mut bot, 6);
        fail.store(true, Ordering::SeqCst);
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(
            matches!(r, RetrainOutcome::RolledBack { retry_after_rounds: 1, .. }),
            "expected rollback, got {r:?}"
        );
        let after = mgr.predict(&bot, now, 0);
        assert_eq!(after.len(), before.len(), "snapshot serves its own cluster set");
        assert!(after.iter().all(|v| v.is_finite()));

        let h = mgr.health();
        assert!(h.serving_snapshot);
        assert_eq!(h.rollbacks, 1);
        assert_eq!(h.consecutive_failures, 1);
        assert!(h.last_error.unwrap().contains("FLAKY diverged"));
    }

    #[test]
    fn backoff_grows_exponentially_then_recovers() {
        let mut bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let fail = Arc::new(AtomicBool::new(false));
        let mut mgr = flaky_manager(Arc::clone(&fail));
        mgr.ensure_trained(&bot, now).unwrap();
        grow_second_cluster(&mut bot, 6);
        fail.store(true, Ordering::SeqCst);

        // Failure #1: retry after 1 skipped round.
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(matches!(r, RetrainOutcome::RolledBack { retry_after_rounds: 1, .. }));
        assert!(matches!(
            mgr.ensure_trained(&bot, now).unwrap(),
            RetrainOutcome::BackedOff { rounds_remaining: 0 }
        ));
        // Failure #2: window doubles to 2 skipped rounds.
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(matches!(r, RetrainOutcome::RolledBack { retry_after_rounds: 2, .. }));
        assert!(matches!(
            mgr.ensure_trained(&bot, now).unwrap(),
            RetrainOutcome::BackedOff { rounds_remaining: 1 }
        ));
        assert!(matches!(
            mgr.ensure_trained(&bot, now).unwrap(),
            RetrainOutcome::BackedOff { rounds_remaining: 0 }
        ));

        // Model "recovers": the next eligible round retrains and resets
        // the failure accounting.
        fail.store(false, Ordering::SeqCst);
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(matches!(r, RetrainOutcome::Retrained { .. }));
        let h = mgr.health();
        assert_eq!(h.consecutive_failures, 0);
        assert_eq!(h.backoff_remaining, 0);
        assert!(!h.serving_snapshot);
        assert_eq!(h.last_error, None);
        assert_eq!(h.rollbacks, 2);
        // And the new models serve the new (two-cluster) assignment.
        assert!(mgr.is_current(&bot));
        assert_eq!(mgr.predict(&bot, now, 0).len(), bot.tracked_clusters().len());
    }

    #[test]
    fn first_train_failure_surfaces_error() {
        let bot = fed_bot(6);
        let fail = Arc::new(AtomicBool::new(true));
        let mut mgr = flaky_manager(Arc::clone(&fail));
        let err = mgr.ensure_trained(&bot, 6 * MINUTES_PER_DAY).unwrap_err();
        assert!(err.is_model_failure(), "no snapshot exists, error must surface: {err}");
        // Backoff still applies before the next attempt...
        assert!(matches!(
            mgr.ensure_trained(&bot, 6 * MINUTES_PER_DAY).unwrap(),
            RetrainOutcome::BackedOff { .. }
        ));
        // ...and recovery is possible once the model behaves.
        fail.store(false, Ordering::SeqCst);
        let r = mgr.ensure_trained(&bot, 6 * MINUTES_PER_DAY).unwrap();
        assert!(matches!(r, RetrainOutcome::Retrained { .. }));
    }

    #[test]
    fn backoff_cap_holds() {
        let mut bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let fail = Arc::new(AtomicBool::new(false));
        let mut mgr = flaky_manager(Arc::clone(&fail));
        mgr.ensure_trained(&bot, now).unwrap();
        grow_second_cluster(&mut bot, 6);
        fail.store(true, Ordering::SeqCst);
        let mut last_window = 0;
        for _ in 0..10 {
            // Drain any backoff, then observe the next failure's window.
            loop {
                match mgr.ensure_trained(&bot, now).unwrap() {
                    RetrainOutcome::BackedOff { .. } => continue,
                    RetrainOutcome::RolledBack { retry_after_rounds, .. } => {
                        last_window = retry_after_rounds;
                        break;
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        assert_eq!(last_window, MAX_BACKOFF_ROUNDS, "window saturates at the cap");
    }

    #[test]
    fn recorder_tracks_retrains_fit_times_and_degradation() {
        let bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let rec = qb_obs::Recorder::new();
        let mut mgr = manager();
        mgr.set_recorder(&rec);
        mgr.ensure_trained(&bot, now).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["forecast.retrains"], 1);
        assert_eq!(snap.histograms["forecast.fit.h0"].count, 1);
        assert_eq!(snap.histograms["forecast.fit.h1"].count, 1);
        // LR has no fallback chain: both horizons serve at full health and
        // no transition fires.
        assert_eq!(snap.gauges["forecast.degradation.h0"], 0.0);
        assert_eq!(snap.counters["forecast.degradation_transitions"], 0);
        assert_eq!(mgr.degradation(0), Some(qb_forecast::DegradationLevel::Full));
        // A prediction records its latency.
        mgr.predict(&bot, now, 0);
        assert_eq!(rec.snapshot().histograms["forecast.predict"].count, 1);
    }

    #[test]
    fn rollback_and_backoff_rounds_hit_their_counters() {
        let mut bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let fail = Arc::new(AtomicBool::new(false));
        let rec = qb_obs::Recorder::new();
        let mut mgr = flaky_manager(Arc::clone(&fail));
        mgr.set_recorder(&rec);
        mgr.ensure_trained(&bot, now).unwrap();
        grow_second_cluster(&mut bot, 6);
        fail.store(true, Ordering::SeqCst);
        mgr.ensure_trained(&bot, now).unwrap(); // rolled back
        mgr.ensure_trained(&bot, now).unwrap(); // backed off
        let snap = rec.snapshot();
        assert_eq!(snap.counters["forecast.retrains"], 1);
        assert_eq!(snap.counters["forecast.rollbacks"], 1);
        assert_eq!(snap.counters["forecast.backoffs"], 1);
    }

    use qb_trace::{EventKind, Tracer};

    fn traced_fed_bot(days: i64, tracer: &Tracer) -> QueryBot5000 {
        let cfg = Qb5000Config::builder().trace(tracer.clone()).build().unwrap();
        let mut bot = QueryBot5000::new(cfg);
        for minute in 0..days * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (8..20).contains(&hour) { 30 } else { 3 };
            bot.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", v).unwrap();
        }
        bot.update_clusters(days * MINUTES_PER_DAY);
        bot
    }

    #[test]
    fn tracer_chains_model_fits_to_cluster_state() {
        let tracer = Tracer::enabled();
        let bot = traced_fed_bot(6, &tracer);
        let now = 6 * MINUTES_PER_DAY;
        let mut mgr = manager();
        mgr.set_tracer(bot.tracer());
        mgr.ensure_trained(&bot, now).unwrap();
        let view = tracer.view();
        assert_eq!(view.of_kind(EventKind::ModelFit).count(), 2, "one fit per horizon");
        let fit = view.latest(EventKind::ModelFit).unwrap();
        let lineage = view.explain(fit.id);
        assert!(lineage.contains("ClustersUpdated"), "fit chains to cluster state:\n{lineage}");
        // Both horizons anchored for later stages to link against.
        assert!(tracer.anchor(qb_trace::Scope::Horizon, 0).is_some());
        assert!(tracer.anchor(qb_trace::Scope::Horizon, 1).is_some());
    }

    #[test]
    fn divergence_trips_guard_rollback_and_dump() {
        let tracer = Tracer::enabled();
        let mut bot = traced_fed_bot(6, &tracer);
        let now = 6 * MINUTES_PER_DAY;
        let fail = Arc::new(AtomicBool::new(false));
        let mut mgr = flaky_manager(Arc::clone(&fail));
        mgr.set_tracer(bot.tracer());
        mgr.ensure_trained(&bot, now).unwrap();
        grow_second_cluster(&mut bot, 6);
        fail.store(true, Ordering::SeqCst);
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(matches!(r, RetrainOutcome::RolledBack { .. }));
        let view = tracer.view();
        let guard = view.latest(EventKind::DivergenceGuard).expect("guard event");
        let lineage = view.explain(guard.id);
        assert!(lineage.contains("ModelFitFailed"), "{lineage}");
        assert!(lineage.contains("ClustersUpdated"), "{lineage}");
        assert!(view.latest(EventKind::RetrainRolledBack).is_some());
        // The automatic dump reaches both the tracer and the pipeline's
        // health report.
        assert!(tracer.dumps().iter().any(|d| d.reason == "diverged"));
        assert!(bot.health().trace_dumps.iter().any(|d| d.reason == "diverged"));
        // The subsequent backoff round is traced too.
        mgr.ensure_trained(&bot, now).unwrap();
        assert!(tracer.view().latest(EventKind::RetrainBackedOff).is_some());
    }

    use std::sync::atomic::AtomicUsize;

    /// Trains as LR but reports whatever degradation level the shared cell
    /// dictates — simulates a composite model falling down its chain.
    struct DegradedModel {
        inner: qb_forecast::LinearRegression,
        level: Arc<AtomicUsize>,
    }

    impl Forecaster for DegradedModel {
        fn name(&self) -> &'static str {
            "DEGRADE"
        }
        fn degradation(&self) -> DegradationLevel {
            match self.level.load(Ordering::SeqCst) {
                0 => DegradationLevel::Full,
                1 => DegradationLevel::Ensemble,
                2 => DegradationLevel::Single,
                _ => DegradationLevel::LastValue,
            }
        }
        fn fit(
            &mut self,
            series: &[Vec<f64>],
            spec: qb_forecast::WindowSpec,
        ) -> Result<(), ForecastError> {
            self.inner.fit(series, spec)
        }
        fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
            self.inner.predict(recent)
        }
    }

    #[test]
    fn degradation_downgrade_emits_transition_and_dump() {
        let tracer = Tracer::enabled();
        let mut bot = traced_fed_bot(6, &tracer);
        let now = 6 * MINUTES_PER_DAY;
        let level = Arc::new(AtomicUsize::new(0));
        let factory_level = Arc::clone(&level);
        let mut mgr = ForecastManager::new(vec![HorizonSpec::hourly(1)], move || {
            Box::new(DegradedModel {
                inner: qb_forecast::LinearRegression::default(),
                level: Arc::clone(&factory_level),
            })
        });
        mgr.set_tracer(bot.tracer());
        mgr.ensure_trained(&bot, now).unwrap();
        assert!(tracer.view().latest(EventKind::DegradationTransition).is_none());
        // The cluster change forces a retrain; the fresh model now serves
        // two levels down the chain.
        grow_second_cluster(&mut bot, 6);
        level.store(2, Ordering::SeqCst);
        mgr.ensure_trained(&bot, now).unwrap();
        let view = tracer.view();
        let t = view.latest(EventKind::DegradationTransition).expect("transition event");
        assert!(
            t.render().contains("from=\"full\" to=\"single\""),
            "unexpected transition: {}",
            t.render()
        );
        let lineage = view.explain(t.id);
        assert!(lineage.contains("ModelFit"), "{lineage}");
        assert!(tracer.dumps().iter().any(|d| d.reason == "degraded"));
        // Recovery is traced but doesn't dump again. A third arrival
        // pattern changes the assignments so the round really retrains.
        for minute in 0..6 * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (12..18).contains(&hour) { 50 } else { 2 };
            bot.ingest_weighted(minute, "SELECT c FROM w WHERE id = 3", v).unwrap();
        }
        bot.update_clusters(now);
        level.store(0, Ordering::SeqCst);
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(matches!(r, RetrainOutcome::Retrained { .. }), "{r:?}");
        let view = tracer.view();
        let back = view.latest(EventKind::DegradationTransition).unwrap();
        assert!(back.render().contains("to=\"full\""));
        assert_eq!(tracer.dumps().iter().filter(|d| d.reason == "degraded").count(), 1);
    }

    #[test]
    fn export_restore_reproduces_predictions_exactly() {
        let bot = fed_bot(8);
        let now = 8 * MINUTES_PER_DAY;
        let mut mgr = manager();
        mgr.ensure_trained(&bot, now).unwrap();
        mgr.predict_tracked(&bot, now, 0);
        let state = mgr.export_state();
        assert_eq!(state.retrain_count, 1);
        assert!(state.last_train_now.is_some());

        let mut restored = ForecastManager::restore(
            vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)],
            || Box::new(qb_forecast::LinearRegression::default()),
            state.clone(),
            &bot,
        )
        .unwrap();
        assert_eq!(restored.export_state(), state, "state survives the round trip");
        // Deterministic re-fit: bit-identical predictions at both horizons,
        // and the staleness check still says "current".
        let later = now + 121;
        assert_eq!(restored.predict(&bot, later, 0), mgr.predict(&bot, later, 0));
        assert_eq!(restored.predict(&bot, later, 1), mgr.predict(&bot, later, 1));
        assert!(restored.is_current(&bot));
        assert_eq!(restored.ensure_trained(&bot, later).unwrap(), RetrainOutcome::UpToDate);
        // Pending accuracy claims settle identically after the restart.
        assert_eq!(
            restored.predict_tracked(&bot, later, 0),
            mgr.predict_tracked(&bot, later, 0)
        );
        assert_eq!(restored.accuracy().settled_total(), mgr.accuracy().settled_total());
        assert_eq!(restored.accuracy().rolling_mse(0), mgr.accuracy().rolling_mse(0));
    }

    #[test]
    fn untrained_manager_round_trips_without_models() {
        let mgr = manager();
        let state = mgr.export_state();
        assert_eq!(state.last_train_now, None);
        let bot = QueryBot5000::new(Qb5000Config::default());
        let restored = ForecastManager::restore(
            vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)],
            || Box::new(qb_forecast::LinearRegression::default()),
            state.clone(),
            &bot,
        )
        .unwrap();
        assert_eq!(restored.export_state(), state);
        assert!(!restored.is_current(&bot));
    }

    #[test]
    fn predict_tracked_settles_matured_claims() {
        let bot = fed_bot(8);
        let now = 8 * MINUTES_PER_DAY;
        let mut mgr = manager();
        mgr.ensure_trained(&bot, now).unwrap();
        let p = mgr.predict_tracked(&bot, now, 0);
        assert_eq!(mgr.accuracy().pending_len(), p.len());
        assert_eq!(mgr.accuracy().settled_total(), 0);
        // Two hours later the 1 h claim has matured; the next call settles
        // it before recording fresh ones.
        mgr.predict_tracked(&bot, now + 121, 0);
        assert_eq!(mgr.accuracy().settled_total(), p.len() as u64);
        assert!(mgr.accuracy().rolling_mse(0).is_some());
    }
}
