//! Multi-horizon model management (§6.2 / §3).
//!
//! "The planning module of a self-driving DBMS also decides how far ahead
//! of time its models need to make predictions. QB5000 builds a forecasting
//! model for each required prediction horizon." And from §3: "Every time
//! the cluster assignment changes for templates, QB5000 re-trains its
//! models."
//!
//! [`ForecastManager`] owns one model per configured horizon, tracks which
//! cluster set each was trained on, and retrains lazily when the Clusterer's
//! assignments change (or on first use). Prediction always feeds the most
//! recent data into the models, per §3.

use qb_clusterer::ClusterId;
use qb_forecast::{ForecastError, Forecaster};
use qb_timeseries::{Interval, Minute};

use crate::pipeline::QueryBot5000;

/// One prediction horizon the planning module requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HorizonSpec {
    /// Aggregation interval for this model's series.
    pub interval: Interval,
    /// Input window, in steps of `interval` (one day at the interval is the
    /// paper's choice for LR/RNN).
    pub window: usize,
    /// Steps ahead to predict.
    pub horizon: usize,
    /// Training span, in steps (the paper trains on up to three weeks).
    pub train_steps: usize,
}

impl HorizonSpec {
    /// The paper's standard hourly-interval spec for a horizon in hours.
    pub fn hourly(horizon_hours: usize) -> Self {
        Self {
            interval: Interval::HOUR,
            window: 24,
            horizon: horizon_hours,
            train_steps: 21 * 24,
        }
    }
}

/// Why (or whether) the last `ensure_trained` call retrained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrainOutcome {
    /// Models were current; nothing retrained.
    UpToDate,
    /// Models retrained (first train, or cluster assignments changed).
    Retrained { horizons: usize },
    /// Training skipped: no clusters tracked yet.
    NoClusters,
}

/// Per-horizon forecasting models with §3's retrain rule.
pub struct ForecastManager {
    specs: Vec<HorizonSpec>,
    make_model: Box<dyn Fn() -> Box<dyn Forecaster> + Send + Sync>,
    models: Vec<Option<Box<dyn Forecaster>>>,
    /// The cluster state (ids + member sets) each live model was trained on.
    trained_clusters: Option<Vec<(ClusterId, Vec<u32>)>>,
    /// Number of retrain rounds performed (observability).
    pub retrain_count: u64,
}

impl ForecastManager {
    /// Creates a manager with a model factory (one fresh model per horizon
    /// per retrain round).
    pub fn new(
        specs: Vec<HorizonSpec>,
        make_model: impl Fn() -> Box<dyn Forecaster> + Send + Sync + 'static,
    ) -> Self {
        assert!(!specs.is_empty(), "ForecastManager: need at least one horizon");
        let models = specs.iter().map(|_| None).collect();
        Self {
            specs,
            make_model: Box::new(make_model),
            models,
            trained_clusters: None,
            retrain_count: 0,
        }
    }

    /// The configured horizons.
    pub fn specs(&self) -> &[HorizonSpec] {
        &self.specs
    }

    /// True when every horizon has a live model for the current clusters
    /// (same cluster ids AND the same member assignments — §3 retrains on
    /// any assignment change, not just on id churn).
    pub fn is_current(&self, bot: &QueryBot5000) -> bool {
        self.trained_clusters.as_deref() == Some(&Self::cluster_state(bot)[..])
            && self.models.iter().all(Option::is_some)
    }

    /// The tracked-cluster identity the models are keyed on: cluster id
    /// plus its (sorted) member template ids.
    fn cluster_state(bot: &QueryBot5000) -> Vec<(ClusterId, Vec<u32>)> {
        bot.tracked_clusters()
            .iter()
            .map(|c| {
                let mut members: Vec<u32> = c.members.iter().map(|m| m.0).collect();
                members.sort_unstable();
                (c.id, members)
            })
            .collect()
    }

    /// Retrains if the tracked cluster set changed since the last round
    /// (§3's rule) or no models exist yet.
    pub fn ensure_trained(
        &mut self,
        bot: &QueryBot5000,
        now: Minute,
    ) -> Result<RetrainOutcome, ForecastError> {
        if bot.tracked_clusters().is_empty() {
            return Ok(RetrainOutcome::NoClusters);
        }
        if self.is_current(bot) {
            return Ok(RetrainOutcome::UpToDate);
        }
        let mut trained = 0;
        for (i, spec) in self.specs.iter().enumerate() {
            let Some(job) = bot.forecast_job_spanning(
                now,
                spec.interval,
                spec.window,
                spec.horizon,
                spec.train_steps,
            ) else {
                // Not enough recorded history for this horizon yet.
                return Ok(RetrainOutcome::NoClusters);
            };
            let mut model = (self.make_model)();
            model.fit(&job.series, job.spec)?;
            self.models[i] = Some(model);
            trained += 1;
        }
        self.trained_clusters = Some(Self::cluster_state(bot));
        self.retrain_count += 1;
        Ok(RetrainOutcome::Retrained { horizons: trained })
    }

    /// Predicts every tracked cluster's rate at the given horizon index,
    /// using the latest data ending at `now`.
    ///
    /// # Panics
    /// Panics if `horizon_idx` is out of range or the manager has never
    /// been trained (call [`ForecastManager::ensure_trained`] first).
    pub fn predict(&self, bot: &QueryBot5000, now: Minute, horizon_idx: usize) -> Vec<f64> {
        let spec = self.specs[horizon_idx];
        let model = self.models[horizon_idx]
            .as_deref()
            .expect("ForecastManager::predict before ensure_trained");
        assert!(
            self.is_current(bot),
            "ForecastManager::predict with stale models: cluster assignments              changed since training — call ensure_trained first"
        );
        let end = spec.interval.bucket_start(now);
        let start = end - spec.window as i64 * spec.interval.as_minutes();
        let recent: Vec<Vec<f64>> = bot
            .tracked_clusters()
            .iter()
            .map(|c| bot.cluster_series(c, start, end, spec.interval))
            .collect();
        model.predict(&recent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Qb5000Config;
    use qb_timeseries::MINUTES_PER_DAY;

    fn fed_bot(days: i64) -> QueryBot5000 {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        for minute in 0..days * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (8..20).contains(&hour) { 30 } else { 3 };
            bot.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", v).unwrap();
        }
        bot.update_clusters(days * MINUTES_PER_DAY);
        bot
    }

    fn manager() -> ForecastManager {
        ForecastManager::new(
            vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)],
            || Box::new(qb_forecast::LinearRegression::default()),
        )
    }

    #[test]
    fn trains_once_then_up_to_date() {
        let bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let mut mgr = manager();
        assert!(!mgr.is_current(&bot));
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert_eq!(r, RetrainOutcome::Retrained { horizons: 2 });
        assert!(mgr.is_current(&bot));
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert_eq!(r, RetrainOutcome::UpToDate);
        assert_eq!(mgr.retrain_count, 1);
    }

    #[test]
    fn retrains_when_clusters_change() {
        let mut bot = fed_bot(6);
        let now = 6 * MINUTES_PER_DAY;
        let mut mgr = manager();
        mgr.ensure_trained(&bot, now).unwrap();
        // A new template with a brand-new pattern forces a new cluster.
        for minute in 0..6 * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let v = if (0..6).contains(&hour) { 40 } else { 1 };
            bot.ingest_weighted(minute, "SELECT b FROM u WHERE id = 2", v).unwrap();
        }
        bot.update_clusters(now);
        assert!(!mgr.is_current(&bot), "cluster set changed");
        let r = mgr.ensure_trained(&bot, now).unwrap();
        assert!(matches!(r, RetrainOutcome::Retrained { .. }));
        assert_eq!(mgr.retrain_count, 2);
    }

    #[test]
    fn predictions_reflect_each_horizon() {
        let bot = fed_bot(8);
        let now = 8 * MINUTES_PER_DAY; // midnight
        let mut mgr = manager();
        mgr.ensure_trained(&bot, now).unwrap();
        // Horizon 1 h from midnight: night volume (~3/min ≈ 180/h).
        let short = mgr.predict(&bot, now, 0);
        // Horizon 12 h from midnight: daytime volume (~30/min ≈ 1800/h).
        let long = mgr.predict(&bot, now, 1);
        assert_eq!(short.len(), long.len());
        assert!(
            long[0] > short[0] * 2.0,
            "noon prediction {} should exceed 1am prediction {}",
            long[0],
            short[0]
        );
    }

    #[test]
    fn no_clusters_reports_gracefully() {
        let bot = QueryBot5000::new(Qb5000Config::default());
        let mut mgr = manager();
        assert_eq!(mgr.ensure_trained(&bot, 0).unwrap(), RetrainOutcome::NoClusters);
    }

    #[test]
    #[should_panic(expected = "before ensure_trained")]
    fn predict_before_training_panics() {
        let bot = fed_bot(6);
        manager().predict(&bot, 6 * MINUTES_PER_DAY, 0);
    }
}
