//! The crate-level error type.
//!
//! The assembled pipeline crosses three fallible stages — configuration
//! validation, Pre-Processor ingest, and Forecaster training — each with
//! its own error enum. [`Error`] unifies them so drivers that thread a
//! query stream end-to-end (`ingest` → `forecast_job_with` →
//! `ensure_trained`) handle one type, while the per-stage enums remain
//! available for callers that match on specifics.

use std::fmt;

use qb_durable::DurabilityError;
use qb_forecast::ForecastError;
use qb_preprocessor::PreProcessError;

/// A configuration value rejected by one of the validating builders
/// ([`crate::Qb5000Config::builder`], [`crate::ControllerConfig::builder`]).
///
/// Each variant names the offending field so the message pinpoints the
/// exact knob, not just "bad config".
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Similarity threshold ρ outside `(0, 1]` (or not finite). ρ = 0
    /// would merge every template into one cluster; ρ > 1 can never be
    /// reached by cosine similarity, so no cluster would ever admit a
    /// second member.
    RhoOutOfRange { value: f64 },
    /// A duration or interval field that must be strictly positive was
    /// zero (or negative).
    ZeroInterval { field: &'static str },
    /// A count field that must be strictly positive was zero.
    ZeroCount { field: &'static str },
    /// The controller was given no forecast horizons to blend.
    EmptyHorizons,
    /// A horizon blend weight that is not finite and positive.
    BadHorizonWeight { horizon_hours: usize, weight: f64 },
    /// A ratio field outside `(0, 1]` (or not finite).
    RatioOutOfRange { field: &'static str, value: f64 },
    /// A scale factor that must be finite and strictly positive.
    BadScale { field: &'static str, value: f64 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RhoOutOfRange { value } => {
                write!(f, "clusterer rho must be in (0, 1], got {value}")
            }
            ConfigError::ZeroInterval { field } => {
                write!(f, "{field} must be a positive number of minutes")
            }
            ConfigError::ZeroCount { field } => {
                write!(f, "{field} must be at least 1")
            }
            ConfigError::EmptyHorizons => {
                write!(f, "forecast_horizons must name at least one horizon")
            }
            ConfigError::BadHorizonWeight { horizon_hours, weight } => {
                write!(
                    f,
                    "forecast horizon {horizon_hours}h has weight {weight}; \
                     weights must be finite and > 0"
                )
            }
            ConfigError::RatioOutOfRange { field, value } => {
                write!(f, "{field} must be in (0, 1], got {value}")
            }
            ConfigError::BadScale { field, value } => {
                write!(f, "{field} must be finite and > 0, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any error the assembled `qb5000` pipeline can surface, tagged by the
/// stage it came from. Convertible from each stage's own error via `From`
/// (so `?` works across stage boundaries) and inspectable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The Pre-Processor rejected a statement (it is quarantined, the
    /// pipeline stays healthy).
    PreProcess(PreProcessError),
    /// A forecasting model failed to train or was fed bad data.
    Forecast(ForecastError),
    /// A builder rejected a configuration value.
    Config(ConfigError),
    /// The durable-state layer failed (I/O, corruption, or an injected
    /// crash). Carried as the rendered message so `Error` stays `Clone +
    /// PartialEq`; match [`Error::is_injected_crash`] to separate injected
    /// crashes from real failures.
    Durability {
        /// Rendered [`DurabilityError`] message.
        detail: String,
        /// True when the source was an injected test crash.
        injected_crash: bool,
    },
}

impl Error {
    /// The pipeline stage the error came from, using the same stage labels
    /// as [`crate::PipelineHealth::last_errors`].
    pub fn stage(&self) -> &'static str {
        match self {
            Error::PreProcess(_) => "pre-processor",
            Error::Forecast(_) => "forecaster",
            Error::Config(_) => "config",
            Error::Durability { .. } => "durability",
        }
    }

    /// True when the error is an injected durability-test crash (harnesses
    /// treat those as "the process died here", everything else as a real
    /// failure).
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, Error::Durability { injected_crash: true, .. })
    }

    /// True for forecast-model failures (divergence, solver breakdown)
    /// that degrade gracefully, as opposed to data or config errors that
    /// would fail identically on retry.
    pub fn is_model_failure(&self) -> bool {
        matches!(self, Error::Forecast(e) if e.is_model_failure())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PreProcess(e) => write!(f, "pre-processor: {e}"),
            Error::Forecast(e) => write!(f, "forecaster: {e}"),
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Durability { detail, .. } => write!(f, "durability: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::PreProcess(e) => Some(e),
            Error::Forecast(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Durability { .. } => None,
        }
    }
}

impl From<PreProcessError> for Error {
    fn from(e: PreProcessError) -> Self {
        Error::PreProcess(e)
    }
}

impl From<ForecastError> for Error {
    fn from(e: ForecastError) -> Self {
        Error::Forecast(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<DurabilityError> for Error {
    fn from(e: DurabilityError) -> Self {
        Error::Durability { detail: e.to_string(), injected_crash: e.is_injected_crash() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_round_trips_preserve_the_inner_error() {
        let pe = PreProcessError::Parse(qb_sqlparse::parse_statement("SELEC").unwrap_err());
        let e: Error = pe.clone().into();
        assert_eq!(e, Error::PreProcess(pe));
        assert_eq!(e.stage(), "pre-processor");
        assert!(!e.is_model_failure());

        let fe = ForecastError::Diverged { model: "RNN", detail: "loss=NaN".into() };
        let e: Error = fe.clone().into();
        assert_eq!(e, Error::Forecast(fe));
        assert_eq!(e.stage(), "forecaster");
        assert!(e.is_model_failure());

        let ce = ConfigError::EmptyHorizons;
        let e: Error = ce.clone().into();
        assert_eq!(e, Error::Config(ce));
        assert_eq!(e.stage(), "config");
    }

    #[test]
    fn source_exposes_the_stage_error() {
        use std::error::Error as StdError;
        let e = Error::Forecast(ForecastError::Diverged {
            model: "LR",
            detail: "singular".into(),
        });
        let src = e.source().expect("source present");
        assert!(src.to_string().contains("LR"));
        assert!(e.to_string().starts_with("forecaster: "));
    }

    #[test]
    fn display_names_the_offending_field() {
        let msgs = [
            ConfigError::RhoOutOfRange { value: 1.5 }.to_string(),
            ConfigError::ZeroInterval { field: "feature_interval" }.to_string(),
            ConfigError::ZeroCount { field: "feature_points" }.to_string(),
            ConfigError::EmptyHorizons.to_string(),
            ConfigError::BadHorizonWeight { horizon_hours: 12, weight: -0.3 }.to_string(),
            ConfigError::RatioOutOfRange { field: "coverage_target", value: 0.0 }.to_string(),
            ConfigError::BadScale { field: "db_scale", value: f64::NAN }.to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[1].contains("feature_interval"));
        assert!(msgs[5].contains("coverage_target"));
    }
}
