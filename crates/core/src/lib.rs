//! # QueryBot 5000
//!
//! A Rust reproduction of **QueryBot 5000 (QB5000)**, the query-based
//! workload-forecasting framework for self-driving DBMSs from
//! *Query-based Workload Forecasting for Self-Driving Database Management
//! Systems* (Ma et al., SIGMOD 2018).
//!
//! The framework receives the SQL stream a DBMS executes and learns to
//! predict how many queries of each kind will arrive in the future:
//!
//! 1. the **Pre-Processor** ([`qb_preprocessor`]) strips constants out of
//!    each statement, normalizes it, and folds semantically equivalent
//!    templates together, recording per-template arrival-rate histories;
//! 2. the **Clusterer** ([`qb_clusterer`]) groups templates whose arrival
//!    histories follow the same temporal pattern with an online DBSCAN
//!    variant over cosine similarity;
//! 3. the **Forecaster** ([`qb_forecast`]) trains one joint model per
//!    prediction horizon on the highest-volume clusters and serves
//!    arrival-rate predictions; the deployed model is HYBRID =
//!    avg(LR, LSTM) corrected by kernel regression for recurring spikes.
//!
//! [`QueryBot5000`] wires the three together behind a small API:
//!
//! ```
//! use qb5000::{QueryBot5000, Qb5000Config};
//! use qb_timeseries::Interval;
//!
//! let mut bot = QueryBot5000::new(Qb5000Config::default());
//! // Feed the framework queries as the DBMS executes them...
//! for minute in 0..600 {
//!     let volume = if (minute / 60) % 12 < 6 { 40 } else { 4 };
//!     bot.ingest_weighted(minute, "SELECT x FROM t WHERE id = 7", volume).unwrap();
//! }
//! // ...periodically re-cluster...
//! bot.update_clusters(600);
//! // ...and train a forecaster over the tracked clusters.
//! let job = bot
//!     .forecast_job(600, Interval::HOUR, /*window:*/ 4, /*horizon:*/ 1)
//!     .expect("one cluster is tracked");
//! let mut model = qb_forecast::LinearRegression::default();
//! let prediction = job.fit_predict(&mut model).unwrap();
//! assert_eq!(prediction.len(), 1); // one tracked cluster
//! ```
//!
//! The [`controller`] module implements the paper's §7.6 closed loop: the
//! forecasts drive an AutoAdmin-style index advisor against the `qb-dbsim`
//! engine, reproducing the AUTO / STATIC / AUTO-LOGICAL comparison of
//! Figures 11–12.

pub mod controller;
pub mod manager;
pub mod pipeline;
pub mod schemas;

pub use controller::{
    ControllerConfig, ExperimentResult, IndexSelectionExperiment, PerfSample, Strategy,
};
pub use manager::{ForecastHealth, ForecastManager, HorizonSpec, RetrainOutcome};
pub use pipeline::{
    ClusterInfo, FeatureMode, ForecastJob, PipelineHealth, Qb5000Config, QueryBot5000,
};

#[cfg(test)]
mod tests {
    use super::*;
    use qb_timeseries::Interval;

    #[test]
    fn doc_example_compiles_and_runs() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        for minute in 0..600 {
            let volume = if (minute / 60) % 12 < 6 { 40 } else { 4 };
            bot.ingest_weighted(minute, "SELECT x FROM t WHERE id = 7", volume).unwrap();
        }
        bot.update_clusters(600);
        let job = bot.forecast_job(600, Interval::HOUR, 4, 1).unwrap();
        let mut model = qb_forecast::LinearRegression::default();
        let prediction = job.fit_predict(&mut model).unwrap();
        assert_eq!(prediction.len(), 1);
    }
}
