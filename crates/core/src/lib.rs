//! # QueryBot 5000
//!
//! A Rust reproduction of **QueryBot 5000 (QB5000)**, the query-based
//! workload-forecasting framework for self-driving DBMSs from
//! *Query-based Workload Forecasting for Self-Driving Database Management
//! Systems* (Ma et al., SIGMOD 2018).
//!
//! The framework receives the SQL stream a DBMS executes and learns to
//! predict how many queries of each kind will arrive in the future:
//!
//! 1. the **Pre-Processor** ([`qb_preprocessor`]) strips constants out of
//!    each statement, normalizes it, and folds semantically equivalent
//!    templates together, recording per-template arrival-rate histories;
//! 2. the **Clusterer** ([`qb_clusterer`]) groups templates whose arrival
//!    histories follow the same temporal pattern with an online DBSCAN
//!    variant over cosine similarity;
//! 3. the **Forecaster** ([`qb_forecast`]) trains one joint model per
//!    prediction horizon on the highest-volume clusters and serves
//!    arrival-rate predictions; the deployed model is HYBRID =
//!    avg(LR, LSTM) corrected by kernel regression for recurring spikes.
//!
//! [`QueryBot5000`] wires the three together behind a small API.
//! Configuration goes through a validating builder, and an optional
//! [`Recorder`] gives every stage zero-dependency metrics:
//!
//! ```
//! use qb5000::{JobSpan, Qb5000Config, QueryBot5000, Recorder};
//! use qb_timeseries::Interval;
//!
//! let recorder = Recorder::new();
//! let config = Qb5000Config::builder()
//!     .rho(0.8) // cosine-similarity threshold from the paper
//!     .recorder(recorder.clone())
//!     .build()
//!     .expect("rho is in (0, 1]");
//! let mut bot = QueryBot5000::new(config);
//! // Feed the framework queries as the DBMS executes them...
//! for minute in 0..600 {
//!     let volume = if (minute / 60) % 12 < 6 { 40 } else { 4 };
//!     bot.ingest_weighted(minute, "SELECT x FROM t WHERE id = 7", volume).unwrap();
//! }
//! // ...periodically re-cluster...
//! bot.update_clusters(600);
//! // ...and train a forecaster over the tracked clusters.
//! let job = bot
//!     .forecast_job_with(600, Interval::HOUR, /*window:*/ 4, /*horizon:*/ 1, JobSpan::Auto)
//!     .expect("one cluster is tracked");
//! let mut model = qb_forecast::LinearRegression::default();
//! let prediction = job.fit_predict(&mut model).unwrap();
//! assert_eq!(prediction.len(), 1); // one tracked cluster
//! // Every stage reported into the shared recorder.
//! let snapshot = recorder.snapshot();
//! assert!(snapshot.counters["preprocessor.ingested_statements"] >= 600);
//! ```
//!
//! The [`controller`] module implements the paper's §7.6 closed loop: the
//! forecasts drive an AutoAdmin-style index advisor against the `qb-dbsim`
//! engine, reproducing the AUTO / STATIC / AUTO-LOGICAL comparison of
//! Figures 11–12.
//!
//! Fallible operations across the crate return the unified [`Error`] type;
//! per-stage errors ([`PreProcessError`], [`ForecastError`], and
//! [`ConfigError`]) convert into it with `?`.

pub mod accuracy;
pub mod config;
pub mod controller;
pub mod durable;
pub mod error;
pub mod manager;
pub mod pipeline;
pub mod schemas;
pub mod serve;

pub use accuracy::{
    AccuracyTracker, AccuracyTrackerState, HorizonAccuracy, PendingClaimState, RollingMeanState,
    DEFAULT_ACCURACY_WINDOW,
};
pub use config::{ControllerConfigBuilder, Qb5000ConfigBuilder};
pub use controller::{
    ControllerConfig, ExperimentResult, IndexSelectionExperiment, PerfSample, Strategy,
};
pub use durable::{
    DurabilityConfig, DurablePipeline, FullState, RecoveryReport, WalRecord, STATE_VERSION,
};
pub use error::{ConfigError, Error};
pub use manager::{ForecastHealth, ForecastManager, HorizonSpec, ManagerState, RetrainOutcome};
pub use pipeline::{
    ClusterInfo, ClusterInfoState, FeatureMode, ForecastJob, JobSpan, PipelineHealth,
    PipelineState, Qb5000Config, QueryBot5000,
};
pub use serve::{ColdSeed, ForecastService};

// The lock-free serving surface (`Qb5000Config::serve`,
// `ForecastService::reader`): the typed query/answer pair, reader handle,
// and snapshot model, re-exported so consumers query forecasts without
// depending on `qb-serve` directly.
pub use qb_serve::{
    ClusterForecast, ColdStartForecast, ColdStartOrigin, Curve, ForecastAnswer, ForecastQuery,
    ForecastReader, ForecastSnapshot, HorizonMeta, Membership, Missing, Outcome, QueryTarget,
    ServeHealth, SnapshotBuilder, StalenessBound,
};

// The self-monitoring surface (`ControllerConfig::monitor`,
// `PipelineHealth::active_alerts`): metrics-history retention, the
// deterministic SLO/alert engine, and the live scrape endpoint,
// re-exported so consumers configure monitoring without depending on
// `qb-monitor` directly.
pub use qb_monitor::{
    check_prometheus, ActiveAlert, AlertChange, AlertEngine, AlertRule,
    Condition as AlertCondition, MetricsHistory, Monitor, MonitorConfig, MonitorServer,
    MonitorState, Severity,
};

// The durable-state policy surface (`Qb5000Config::durability`) exposes the
// crash-injection hook and I/O boundary enum from `qb-durable`, so re-export
// them for harnesses and callers.
pub use qb_durable::{CodecError, Dec, DurabilityError, Enc, FaultHook, IoPoint};

// The observability handles are part of the public configuration surface
// (`Qb5000Config::recorder`), so re-export them for downstream callers.
pub use qb_obs::{MetricsSnapshot, Recorder};

// Likewise the tracing handles (`Qb5000Config::tracer`,
// `PipelineHealth::trace_dumps`) and the query/export types needed to
// consume a captured trace.
pub use qb_trace::{
    parse_json, Event, EventId, EventKind, Json, Scope, TraceDump, TraceSettings, TraceView,
    Tracer, Value,
};

// Stage error types, re-exported so `qb5000::Error` matching doesn't force
// a dependency on the stage crates.
pub use qb_forecast::ForecastError;
pub use qb_preprocessor::PreProcessError;

// The batched-ingest surface (`QueryBot5000::ingest_batch`,
// `DurablePipeline::ingest_batch`), re-exported for callers assembling
// batches without depending on the pre-processor crate.
pub use qb_preprocessor::{BatchItem, BatchReport};

#[cfg(test)]
mod tests {
    use super::*;
    use qb_timeseries::Interval;

    #[test]
    fn doc_example_compiles_and_runs() {
        let recorder = Recorder::new();
        let config = Qb5000Config::builder()
            .rho(0.8)
            .recorder(recorder.clone())
            .build()
            .expect("rho is in (0, 1]");
        let mut bot = QueryBot5000::new(config);
        for minute in 0..600 {
            let volume = if (minute / 60) % 12 < 6 { 40 } else { 4 };
            bot.ingest_weighted(minute, "SELECT x FROM t WHERE id = 7", volume).unwrap();
        }
        bot.update_clusters(600);
        let job = bot.forecast_job_with(600, Interval::HOUR, 4, 1, JobSpan::Auto).unwrap();
        let mut model = qb_forecast::LinearRegression::default();
        let prediction = job.fit_predict(&mut model).unwrap();
        assert_eq!(prediction.len(), 1);
        assert!(recorder.snapshot().counters["preprocessor.ingested_statements"] >= 600);
    }
}
