//! Pipeline-side forecast serving: publication points, metrics, and trace
//! lineage over the zero-dep `qb-serve` swap.
//!
//! [`ForecastService`] wraps a [`qb_serve::ForecastServer`] with the
//! pipeline's observability contract: every publication is timed into the
//! `serve.publish` histogram, mirrored onto the `serve.epoch` /
//! `serve.readers` gauges (so serving staleness shows up in any
//! [`qb_obs::MetricsSnapshot`] rendering), and traced as a
//! [`EventKind::SnapshotPublished`] event parented on the fits that
//! produced the published curves.
//!
//! Wiring: hand a service to
//! [`Qb5000Config::builder().serve(...)`](crate::Qb5000ConfigBuilder::serve)
//! or [`ControllerConfig::builder().serve(...)`](crate::ControllerConfigBuilder::serve)
//! and keep a clone for [`ForecastService::reader`] handles. The pipeline
//! then publishes at three points: cluster updates (membership patches),
//! [`crate::ForecastManager::ensure_trained`] retrains (per-horizon curve
//! patches with structural sharing), and controller build rounds (the
//! blended per-round forecasts).

use std::sync::Arc;

use qb_obs::Recorder;
use qb_serve::{
    ColdStartForecast, ColdStartOrigin, Curve, ForecastReader, ForecastServer, ForecastSnapshot,
    HorizonMeta, Membership, ServeHealth,
};
use qb_timeseries::Minute;
use qb_trace::{EventDraft, EventId, EventKind, Scope, Tracer};

use crate::manager::HorizonSpec;
use crate::pipeline::ClusterInfo;

/// A seeded forecast for a template the tracked-cluster routing does not
/// yet cover — the cold-start path's publication unit. `values` pairs
/// `(slot, predicted rate)` for the horizon slots the seed covers;
/// [`ForecastService::publish_forecasts_with_cold`] turns each pair into
/// the same single-bucket curve shape as the warm per-cluster forecasts.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdSeed {
    /// Template the seed stands in for.
    pub template: u32,
    /// Where the estimate came from (cluster-rate share or population prior).
    pub origin: ColdStartOrigin,
    /// `(slot, predicted rate)` pairs; slots outside the service's horizon
    /// list are ignored.
    pub values: Vec<(usize, f64)>,
}

/// The pipeline-facing handle over the lock-free serving layer.
///
/// Cloning shares the underlying swap slot and epoch sequence; the
/// pipeline keeps one clone per publication point and the caller keeps
/// one for creating readers. Observability handles are installed when the
/// service is wired into a pipeline (mirroring every other stage), so
/// publications from inside the pipeline land on the pipeline's recorder.
#[derive(Debug, Clone)]
pub struct ForecastService {
    server: ForecastServer,
    /// Currently served epoch (`serve.epoch`).
    epoch_gauge: qb_obs::Gauge,
    /// Live reader handles (`serve.readers`).
    readers_gauge: qb_obs::Gauge,
    /// Wall time per publication (`serve.publish`).
    publish_time: qb_obs::Histogram,
    /// Cold-start entries in the latest published snapshot
    /// (`serve.cold_starts`).
    cold_gauge: qb_obs::Gauge,
    tracer: Tracer,
}

impl ForecastService {
    /// A service whose horizon slots mirror `specs` — pair with a
    /// [`crate::ForecastManager`] built from the same list.
    pub fn for_specs(specs: &[HorizonSpec]) -> Self {
        Self::with_horizons(
            specs
                .iter()
                .map(|s| HorizonMeta {
                    interval_minutes: s.interval.as_minutes(),
                    window: s.window,
                    horizon: s.horizon,
                })
                .collect(),
        )
    }

    /// A service with one hourly slot per horizon (24-step window — the
    /// controller's per-round fit shape). Pair with
    /// [`crate::ControllerConfig::forecast_horizons`] hours.
    pub fn hourly(horizon_hours: &[usize]) -> Self {
        Self::with_horizons(
            horizon_hours
                .iter()
                .map(|&h| HorizonMeta { interval_minutes: 60, window: 24, horizon: h })
                .collect(),
        )
    }

    /// A service with explicit horizon slots.
    pub fn with_horizons(horizons: Vec<HorizonMeta>) -> Self {
        Self {
            server: ForecastServer::new(horizons),
            epoch_gauge: qb_obs::Gauge::default(),
            readers_gauge: qb_obs::Gauge::default(),
            publish_time: qb_obs::Histogram::default(),
            cold_gauge: qb_obs::Gauge::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the pipeline's [`Recorder`]: publications then maintain
    /// the `serve.epoch` / `serve.readers` gauges and the `serve.publish`
    /// latency histogram. Called by the pipeline at assembly, like every
    /// other stage's `set_recorder`.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.epoch_gauge = recorder.gauge("serve.epoch");
        self.readers_gauge = recorder.gauge("serve.readers");
        self.publish_time = recorder.histogram("serve.publish");
        self.cold_gauge = recorder.gauge("serve.cold_starts");
    }

    /// Installs the pipeline's [`Tracer`] so each publication records a
    /// [`EventKind::SnapshotPublished`] event with lineage to the fits
    /// that produced it.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// A new lock-free reader over this service's snapshots. Cheap;
    /// clone one per consumer thread.
    pub fn reader(&self) -> ForecastReader {
        self.readers_gauge.set(self.server.reader_count() as f64 + 1.0);
        self.server.reader()
    }

    /// The currently served epoch (0 until the first publication).
    pub fn epoch(&self) -> u64 {
        self.server.epoch()
    }

    /// The current snapshot (publisher-side view; readers should hold
    /// their own [`ForecastReader`]).
    pub fn snapshot(&self) -> Arc<ForecastSnapshot> {
        self.server.current()
    }

    /// The horizon slots this service serves.
    pub fn horizons(&self) -> Vec<HorizonMeta> {
        self.server.current().horizons.to_vec()
    }

    /// The slot index serving `spec`'s shape, if the service carries one.
    pub fn slot_for(&self, spec: &HorizonSpec) -> Option<usize> {
        self.server.current().horizons.iter().position(|m| {
            m.interval_minutes == spec.interval.as_minutes()
                && m.window == spec.window
                && m.horizon == spec.horizon
        })
    }

    /// The slot index for an hourly 24-window horizon of `hours` steps —
    /// the controller's per-round fit shape.
    pub fn hourly_slot(&self, hours: usize) -> Option<usize> {
        self.server
            .current()
            .horizons
            .iter()
            .position(|m| m.interval_minutes == 60 && m.window == 24 && m.horizon == hours)
    }

    /// Publishes a membership-only patch: the tracked-cluster set changed
    /// (a cluster update ran) but no new fits exist yet. Entries whose
    /// identity, volume, and members are unchanged are shared with the
    /// previous snapshot by `Arc`; entries whose membership changed drop
    /// their stale curves. Returns the new epoch.
    pub fn publish_membership(&self, now: Minute, clusters: &[ClusterInfo]) -> u64 {
        let members = memberships(clusters);
        self.publish_traced("membership", &[], |current, _epoch| {
            current.rebuild().built_at(now).set_membership(&members)
        })
    }

    /// Publishes fresh per-horizon forecasts: reconciles membership to
    /// `clusters`, then installs one single-bucket curve per (cluster,
    /// slot) from `predictions` — `(slot, per-cluster predicted rates)`
    /// pairs aligned with `clusters`. `parents` link the trace event to
    /// the fits that produced the curves. Returns the new epoch.
    pub fn publish_forecasts(
        &self,
        now: Minute,
        clusters: &[ClusterInfo],
        predictions: &[(usize, Vec<f64>)],
        health: Option<ServeHealth>,
        parents: &[EventId],
    ) -> u64 {
        self.publish_forecasts_with_cold(now, clusters, predictions, &[], health, parents)
    }

    /// [`ForecastService::publish_forecasts`] plus cold-start seeds: each
    /// [`ColdSeed`] becomes a [`ColdStartForecast`] entry with the same
    /// single-bucket curve shape as the warm forecasts, served to readers
    /// whose template the routing index does not cover. Each seed is
    /// traced as a [`EventKind::TemplateColdStart`] event parented on the
    /// template's cluster-assignment anchor (cluster-share seeds) so the
    /// estimate's lineage reaches back to the assignment that produced
    /// it. Returns the new epoch.
    pub fn publish_forecasts_with_cold(
        &self,
        now: Minute,
        clusters: &[ClusterInfo],
        predictions: &[(usize, Vec<f64>)],
        cold: &[ColdSeed],
        health: Option<ServeHealth>,
        parents: &[EventId],
    ) -> u64 {
        let members = memberships(clusters);
        let metas = self.horizons();
        let cold_entries: Vec<ColdStartForecast> = cold
            .iter()
            .map(|seed| {
                let mut curves = vec![None; metas.len()];
                for &(slot, v) in &seed.values {
                    let Some(meta) = metas.get(slot) else { continue };
                    let bucket = now - now.rem_euclid(meta.interval_minutes)
                        + meta.horizon as i64 * meta.interval_minutes;
                    curves[slot] = Some(Arc::new(Curve {
                        start: bucket,
                        interval_minutes: meta.interval_minutes,
                        values: vec![v.max(0.0)],
                    }));
                }
                ColdStartForecast { template: seed.template, origin: seed.origin, curves }
            })
            .collect();
        self.cold_gauge.set(cold_entries.len() as f64);
        let epoch = self.publish_traced("forecasts", parents, |current, _epoch| {
            let mut b = current.rebuild().built_at(now).set_membership(&members);
            for &(slot, ref values) in predictions {
                let Some(meta) = metas.get(slot) else { continue };
                // The curve's one bucket starts `horizon` intervals past
                // the training cut — the bucket the model predicts.
                let bucket = now - now.rem_euclid(meta.interval_minutes)
                    + meta.horizon as i64 * meta.interval_minutes;
                for (cluster, &v) in members.iter().zip(values) {
                    b = b.set_curve(
                        cluster.cluster,
                        slot,
                        Curve {
                            start: bucket,
                            interval_minutes: meta.interval_minutes,
                            values: vec![v],
                        },
                    );
                }
            }
            if !cold_entries.is_empty() {
                b = b.set_cold_starts(cold_entries);
            }
            if let Some(h) = health {
                b = b.health(h);
            }
            b
        });
        if self.tracer.is_enabled() {
            for seed in cold {
                let mut draft = EventDraft::new(EventKind::TemplateColdStart)
                    .uint("template", seed.template as u64)
                    .uint("epoch", epoch);
                match seed.origin {
                    ColdStartOrigin::ClusterShare { cluster, share } => {
                        draft = draft
                            .text("origin", "cluster_share")
                            .uint("cluster", cluster)
                            .float("share", share)
                            .parent_opt(self.tracer.anchor(Scope::Cluster, cluster));
                    }
                    ColdStartOrigin::PopulationPrior => {
                        draft = draft
                            .text("origin", "population_prior")
                            .parent_opt(self.tracer.anchor(Scope::Template, seed.template as u64));
                    }
                }
                if let Some(&(slot, v)) = seed.values.first() {
                    draft = draft.uint("slot", slot as u64).float("seeded", v);
                }
                self.tracer.record(draft);
            }
        }
        epoch
    }

    /// The shared publication path: times the swap, refreshes the gauges,
    /// and records the `SnapshotPublished` trace event (first parent as
    /// the causal parent, the rest as references — the fan-in shape
    /// `ForecastBlended` uses).
    fn publish_traced(
        &self,
        reason: &'static str,
        parents: &[EventId],
        build: impl FnOnce(&ForecastSnapshot, u64) -> qb_serve::SnapshotBuilder,
    ) -> u64 {
        let span = self.publish_time.start();
        let before = self.server.current();
        let epoch = self.server.publish(build);
        let after = self.server.current();
        drop(span);
        self.epoch_gauge.set(epoch as f64);
        self.readers_gauge.set(self.server.reader_count() as f64);
        if self.tracer.is_enabled() {
            let mut draft = EventDraft::new(EventKind::SnapshotPublished)
                .text("reason", reason)
                .uint("epoch", epoch)
                .uint("clusters", after.entries().len() as u64)
                .uint("shared_entries", after.shared_entries_with(&before) as u64)
                .int("built_at", after.built_at);
            let mut parents = parents.iter();
            if let Some(&first) = parents.next() {
                draft = draft.parent(first);
            }
            for &p in parents {
                draft = draft.reference(p);
            }
            self.tracer.record(draft);
        }
        epoch
    }
}

/// [`ClusterInfo`] rows flattened into the serving layer's plain-integer
/// [`Membership`] form, preserving the tracked (largest-first) order.
fn memberships(clusters: &[ClusterInfo]) -> Vec<Membership> {
    clusters
        .iter()
        .map(|c| Membership {
            cluster: c.id.0,
            volume: c.volume,
            members: c.members.iter().map(|m| m.0).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_clusterer::ClusterId;
    use qb_preprocessor::TemplateId;
    use qb_serve::{ForecastQuery, Outcome};

    fn cluster(id: u64, volume: f64, members: &[u32]) -> ClusterInfo {
        ClusterInfo {
            id: ClusterId(id),
            volume,
            members: members.iter().map(|&m| TemplateId(m)).collect(),
        }
    }

    #[test]
    fn membership_then_forecast_publication() {
        let svc = ForecastService::hourly(&[1, 12]);
        let reader = svc.reader();
        assert_eq!(svc.epoch(), 0);

        let clusters = [cluster(3, 40.0, &[1, 2]), cluster(5, 10.0, &[7])];
        assert_eq!(svc.publish_membership(600, &clusters), 1);
        // Tracked but unfit: the reader sees the routing, not a curve.
        let unfit = reader.answer(&ForecastQuery::template(2, 0));
        assert_eq!(unfit.epoch, 1);
        assert!(matches!(unfit.outcome, Outcome::NotFound(qb_serve::Missing::Unfit { .. })));

        let epoch = svc.publish_forecasts(
            600,
            &clusters,
            &[(0, vec![11.0, 3.0]), (1, vec![13.0, 5.0])],
            None,
            &[],
        );
        assert_eq!(epoch, 2);
        let one_hour = reader.answer(&ForecastQuery::cluster(3, 0));
        assert_eq!(one_hour.curve().unwrap().values, vec![11.0]);
        assert_eq!(one_hour.curve().unwrap().start, 660, "one hour past the cut");
        let twelve = reader.answer(&ForecastQuery::cluster(5, 1));
        assert_eq!(twelve.curve().unwrap().values, vec![5.0]);
        assert_eq!(twelve.curve().unwrap().start, 600 + 12 * 60);
        assert_eq!(reader.answer(&ForecastQuery::top_k(1, 0)).ranking().unwrap(), &[(3, 11.0)]);
    }

    #[test]
    fn gauges_track_epoch_and_readers() {
        let recorder = Recorder::new();
        let mut svc = ForecastService::hourly(&[1]);
        svc.set_recorder(&recorder);
        let _reader = svc.reader();
        svc.publish_membership(0, &[cluster(1, 5.0, &[1])]);
        svc.publish_membership(1, &[cluster(1, 6.0, &[1])]);
        let snap = recorder.snapshot();
        assert_eq!(snap.gauges.get("serve.epoch"), Some(&2.0));
        assert_eq!(snap.gauges.get("serve.readers"), Some(&1.0));
        assert_eq!(snap.histograms.get("serve.publish").map(|h| h.count), Some(2));
    }

    #[test]
    fn publication_is_traced_with_lineage() {
        let tracer = Tracer::enabled();
        tracer.begin_round(0);
        let anchor = tracer
            .record(EventDraft::new(EventKind::ModelFit).text("model", "LR"))
            .expect("enabled tracer records");
        let mut svc = ForecastService::hourly(&[1]);
        svc.set_tracer(&tracer);
        svc.publish_forecasts(60, &[cluster(1, 5.0, &[1])], &[(0, vec![2.0])], None, &[anchor]);
        let view = tracer.view();
        let ev = view.latest(EventKind::SnapshotPublished).expect("publication traced");
        let lineage = view.explain(ev.id);
        assert!(lineage.contains("ModelFit"), "{lineage}");
    }

    #[test]
    fn cold_seeds_become_served_cold_start_entries() {
        let recorder = Recorder::new();
        let tracer = Tracer::enabled();
        tracer.begin_round(0);
        let assignment = tracer
            .record(EventDraft::new(EventKind::ClusterCreated).uint("cluster", 3))
            .expect("enabled tracer records");
        tracer.set_anchor(Scope::Cluster, 3, assignment);
        let mut svc = ForecastService::hourly(&[1, 12]);
        svc.set_recorder(&recorder);
        svc.set_tracer(&tracer);
        let reader = svc.reader();
        let clusters = [cluster(3, 40.0, &[1, 2])];
        let cold = [
            ColdSeed {
                template: 9,
                origin: qb_serve::ColdStartOrigin::ClusterShare { cluster: 3, share: 0.25 },
                values: vec![(0, 2.75), (1, 3.25)],
            },
            ColdSeed {
                template: 11,
                origin: qb_serve::ColdStartOrigin::PopulationPrior,
                // Negative seeds are clamped to zero; out-of-range slots dropped.
                values: vec![(0, -1.0), (7, 9.0)],
            },
        ];
        svc.publish_forecasts_with_cold(600, &clusters, &[(0, vec![11.0])], &cold, None, &[]);

        // Routed templates answer warm; uncovered ones fall back cold.
        let warm = reader.answer(&ForecastQuery::template(1, 0));
        assert_eq!(warm.curve().unwrap().values, vec![11.0]);
        let seeded = reader.answer(&ForecastQuery::template(9, 1));
        assert!(matches!(
            seeded.outcome,
            Outcome::ColdStart {
                origin: qb_serve::ColdStartOrigin::ClusterShare { cluster: 3, .. },
                ..
            }
        ));
        let curve = seeded.any_curve().expect("seeded slot served");
        assert_eq!(curve.values, vec![3.25]);
        assert_eq!(curve.start, 600 + 12 * 60, "cold curves share the warm bucket formula");
        let clamped = reader.answer(&ForecastQuery::template(11, 0));
        assert_eq!(clamped.any_curve().unwrap().values, vec![0.0]);
        assert!(
            reader.answer(&ForecastQuery::template(11, 1)).any_curve().is_none(),
            "slot the seed didn't cover stays unserved"
        );

        // Gauge mirrors the published entry count; lineage reaches the
        // cluster assignment that produced the share.
        assert_eq!(recorder.snapshot().gauges.get("serve.cold_starts"), Some(&2.0));
        let view = tracer.view();
        let ev = view.latest(EventKind::TemplateColdStart).expect("seeds traced");
        assert!(view.explain(ev.id).contains("ClusterCreated") || ev.parent.is_none());
        let share_ev = view
            .events()
            .iter()
            .find(|e| {
                e.kind == EventKind::TemplateColdStart
                    && e.payload.iter().any(|(k, v)| {
                        *k == "origin" && *v == qb_trace::Value::Text("cluster_share".into())
                    })
            })
            .expect("cluster-share seed traced");
        assert_eq!(share_ev.parent, Some(assignment));
    }

    #[test]
    fn slot_lookup_matches_specs() {
        let specs = vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)];
        let svc = ForecastService::for_specs(&specs);
        assert_eq!(svc.slot_for(&specs[1]), Some(1));
        assert_eq!(svc.hourly_slot(12), Some(1));
        assert_eq!(svc.hourly_slot(6), None);
        let mut other = HorizonSpec::hourly(1);
        other.window = 48;
        assert_eq!(svc.slot_for(&other), None, "window shape is part of the slot identity");
    }
}
