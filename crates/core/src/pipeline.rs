//! The QB5000 pipeline: Pre-Processor → Clusterer → Forecaster (§3).

use qb_clusterer::{
    ClustererConfig, ClustererState, FeatureSampler, OnlineClusterer, TemplateSnapshot,
    UpdateReport,
};
use qb_forecast::{Forecaster, WindowSpec};
use qb_obs::Recorder;
use qb_parallel::ThreadPool;
use qb_preprocessor::{
    BatchItem, BatchReport, PreProcessor, PreProcessorConfig, PreProcessorState, TemplateId,
};
use qb_timeseries::{Interval, Minute, MINUTES_PER_DAY};
use qb_trace::{TraceDump, Tracer};

use crate::accuracy::HorizonAccuracy;
use crate::durable::DurabilityConfig;
use crate::error::Error;

/// Which feature the Clusterer groups templates by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureMode {
    /// Arrival-rate history feature (§5.1) — QB5000's choice.
    ArrivalRate,
    /// Logical SQL-structure feature — the §7.7 AUTO-LOGICAL ablation.
    Logical,
}

/// Framework configuration.
///
/// Construct via the validating [`Qb5000Config::builder`] (rejects ρ
/// outside `(0, 1]`, zero intervals/counts, non-ratio coverage targets) or
/// struct-update syntax on [`Qb5000Config::default`] for trusted values.
#[derive(Debug, Clone)]
pub struct Qb5000Config {
    pub preprocessor: PreProcessorConfig,
    pub clusterer: ClustererConfig,
    /// Clustering feature (arrival-rate vs. logical ablation).
    pub feature_mode: FeatureMode,
    /// Number of sampled timestamps forming the clustering feature vector.
    /// The paper uses 10 000 over the trailing month; scaled-down traces
    /// need proportionally fewer.
    pub feature_points: usize,
    /// Feature window length in minutes (paper: one month).
    pub feature_window: i64,
    /// Aggregation interval around each sampled timestamp.
    pub feature_interval: Interval,
    /// How many highest-volume clusters the Forecaster models (§5.3; the
    /// paper models enough clusters to cover ≥95 % of the volume, which is
    /// 3–5 on its traces).
    pub max_clusters: usize,
    /// Volume-coverage target that can stop earlier than `max_clusters`.
    pub coverage_target: f64,
    /// Seed for feature-timestamp sampling.
    pub seed: u64,
    /// Observability recorder handed to every stage at construction.
    /// Defaults to [`Recorder::disabled`], which makes every metric
    /// operation a no-op.
    pub recorder: Recorder,
    /// Structured tracer (decision lineage + flight recorder) handed to
    /// every stage at construction. Defaults to [`Tracer::disabled`],
    /// which makes every trace operation a no-op.
    pub tracer: Tracer,
    /// Durable-state policy. `None` (the default) keeps the pipeline fully
    /// in-memory; `Some` lets [`crate::DurablePipeline::open`] persist a
    /// snapshot + WAL lineage under the configured directory and recover
    /// from it bit-identically.
    pub durability: Option<DurabilityConfig>,
    /// Lock-free forecast serving. `None` (the default) keeps serving
    /// off; `Some` makes every cluster update publish a membership patch
    /// (and [`crate::ForecastManager::ensure_trained`] publish fresh
    /// curves) into the service's epoch-swapped snapshot, which any
    /// number of [`crate::ForecastReader`] handles query concurrently.
    pub serve: Option<crate::serve::ForecastService>,
    /// Cold-start forecasting for templates outside the trained cluster
    /// set. `false` (the default) serves such templates the classic
    /// `Missing` answer; `true` makes each retrain round also publish
    /// seeded per-template estimates — the assigned cluster's forecast
    /// scaled by the template's volume share, or a population prior when
    /// no usable assignment exists — so readers get a typed `ColdStart`
    /// answer instead of waiting a full history window. Warm (tracked
    /// cluster) forecasts are byte-identical either way.
    pub cold_start: bool,
}

impl Default for Qb5000Config {
    fn default() -> Self {
        Self {
            preprocessor: PreProcessorConfig::default(),
            clusterer: ClustererConfig::default(),
            feature_mode: FeatureMode::ArrivalRate,
            feature_points: 500,
            feature_window: 31 * MINUTES_PER_DAY,
            feature_interval: Interval::HOUR,
            max_clusters: 5,
            coverage_target: 0.95,
            seed: 0x5000,
            recorder: Recorder::disabled(),
            tracer: Tracer::disabled(),
            durability: None,
            serve: None,
            cold_start: false,
        }
    }
}

/// Training-span policy for [`QueryBot5000::forecast_job_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSpan {
    /// `window + 4·horizon + 8` steps — enough history for several windows
    /// past the horizon, without assuming weeks of recorded data.
    Auto,
    /// An explicit training span in steps of the job's interval (the paper
    /// trains on up to three weeks). Clamped to the recorded history, so an
    /// over-long span never fabricates a zero-traffic prefix.
    Steps(usize),
}

impl JobSpan {
    /// The concrete step count for a given window/horizon.
    fn steps(self, window: usize, horizon: usize) -> usize {
        match self {
            JobSpan::Auto => window + 4 * horizon + 8,
            JobSpan::Steps(n) => n,
        }
    }
}

/// A tracked (modeled) cluster.
#[derive(Debug, Clone)]
pub struct ClusterInfo {
    pub id: qb_clusterer::ClusterId,
    /// Query volume in the last feature window.
    pub volume: f64,
    /// Member templates.
    pub members: Vec<TemplateId>,
}

/// Plain-data form of [`ClusterInfo`] for durable serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInfoState {
    pub id: u64,
    pub volume: f64,
    pub members: Vec<u32>,
}

impl ClusterInfo {
    /// Flattens into the plain-data durable form.
    pub fn export_state(&self) -> ClusterInfoState {
        ClusterInfoState {
            id: self.id.0,
            volume: self.volume,
            members: self.members.iter().map(|m| m.0).collect(),
        }
    }

    /// Inverse of [`ClusterInfo::export_state`].
    pub fn from_state(state: ClusterInfoState) -> Self {
        ClusterInfo {
            id: qb_clusterer::ClusterId(state.id),
            volume: state.volume,
            members: state.members.into_iter().map(TemplateId).collect(),
        }
    }
}

/// Plain-data snapshot of a [`QueryBot5000`]: the Pre-Processor's template
/// table, the Clusterer's assignment state, and the pipeline-level
/// bookkeeping (tracked clusters, ingest accounting, order detectors).
/// Everything needed to continue ingesting with identical behavior — the
/// durable snapshot payload minus the forecaster and tracer sections.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineState {
    pub pre: PreProcessorState,
    pub clusterer: ClustererState,
    pub tracked: Vec<ClusterInfoState>,
    pub last_update: Option<Minute>,
    pub shift_triggers: u64,
    pub ingested_statements: u64,
    pub ingested_arrivals: u64,
    pub deduplicated: u64,
    pub reordered: u64,
    pub last_ingest_minute: Option<Minute>,
    pub last_ingest_event: Option<(Minute, u64)>,
}

/// End-to-end ingest accounting for the resilience layer: how much of the
/// offered stream was accepted, rejected, or arrived suspiciously
/// (duplicate / out-of-order delivery), plus each stage's last error.
///
/// The accounting identity `ingested_statements + rejected_statements ==
/// total ingest calls` always holds — nothing is silently dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineHealth {
    /// Statements accepted by the Pre-Processor.
    pub ingested_statements: u64,
    /// Weighted arrivals accepted.
    pub ingested_arrivals: u64,
    /// Statements rejected (quarantined) by the Pre-Processor.
    pub rejected_statements: u64,
    /// Weighted arrivals rejected.
    pub rejected_arrivals: u64,
    /// Ingest calls identical (same minute + SQL) to the immediately
    /// preceding call. These are still ingested — two arrivals of one
    /// query in one minute are legitimate — but a high rate flags
    /// duplicate delivery upstream.
    pub deduplicated: u64,
    /// Ingest calls whose timestamp ran backwards relative to the previous
    /// call. Arrival histories absorb them (time-keyed storage), but the
    /// count flags out-of-order delivery upstream.
    pub reordered: u64,
    /// Per-stage last error as `(stage, message)`, most recent per stage.
    pub last_errors: Vec<(&'static str, String)>,
    /// Worker threads the training/scoring engine runs with (from
    /// `QB_THREADS` / `ControllerConfig::threads`; 1 = sequential).
    pub threads_used: usize,
    /// Rolling forecast-accuracy rows, one per tracked horizon. Empty
    /// unless an [`crate::AccuracyTracker`] scores this pipeline's
    /// predictions (attach via [`PipelineHealth::with_accuracy`]).
    pub forecast_accuracy: Vec<HorizonAccuracy>,
    /// Flight-recorder dumps captured so far (divergence, degradation,
    /// quarantine spikes, manual triggers) — oldest first. Empty unless
    /// the pipeline was assembled with an enabled [`Tracer`].
    pub trace_dumps: Vec<TraceDump>,
    /// Epoch of the forecast snapshot currently being served (`None`
    /// when the pipeline was assembled without [`Qb5000Config::serve`];
    /// `Some(0)` when serving is on but nothing has been published yet).
    /// The same number appears as the `serve.epoch` gauge in
    /// [`qb_obs::MetricsSnapshot`] renderings, so operators can spot
    /// serving staleness from either report.
    pub serve_epoch: Option<u64>,
    /// SLO alerts firing at report time, in rule declaration order.
    /// Empty unless a [`qb_monitor::Monitor`] watches this run (attach
    /// via `ControllerConfig::builder().monitor(...)`).
    pub active_alerts: Vec<qb_monitor::ActiveAlert>,
}

/// The assembled framework.
pub struct QueryBot5000 {
    config: Qb5000Config,
    pre: PreProcessor,
    clusterer: OnlineClusterer,
    /// Clusters selected for modeling at the last update, largest first.
    tracked: Vec<ClusterInfo>,
    /// When the clusters were last rebuilt.
    last_update: Option<Minute>,
    /// Count of early re-clusterings triggered by unseen-template bursts.
    pub shift_triggers: u64,
    /// Accepted-statement / accepted-arrival counters for `health()`.
    ingested_statements: u64,
    ingested_arrivals: u64,
    deduplicated: u64,
    reordered: u64,
    /// Timestamp of the previous ingest call (order detector).
    last_ingest_minute: Option<Minute>,
    /// (minute, SQL fingerprint) of the previous ingest call (duplicate
    /// detector; a fingerprint avoids retaining every SQL string).
    last_ingest_event: Option<(Minute, u64)>,
    /// Wall time per cluster rebuild (`pipeline.update_clusters`).
    update_time: qb_obs::Histogram,
    /// Early re-clusterings (`pipeline.shift_triggers`), mirroring
    /// [`QueryBot5000::shift_triggers`] onto the recorder.
    shift_trigger_metric: qb_obs::Counter,
}

impl QueryBot5000 {
    /// Assembles the pipeline. The configured [`Recorder`] is installed
    /// into every stage here, so per-stage metrics (`preprocessor.*`,
    /// `clusterer.*`, `pipeline.*`) flow into one registry.
    pub fn new(mut config: Qb5000Config) -> Self {
        if let Some(serve) = &mut config.serve {
            serve.set_recorder(&config.recorder);
            serve.set_tracer(&config.tracer);
        }
        let mut pre = PreProcessor::new(config.preprocessor.clone());
        pre.set_recorder(&config.recorder);
        pre.set_tracer(&config.tracer);
        let mut clusterer = OnlineClusterer::new(config.clusterer.clone());
        clusterer.set_recorder(&config.recorder);
        clusterer.set_tracer(&config.tracer);
        config.tracer.bind_recorder(&config.recorder);
        let update_time = config.recorder.histogram("pipeline.update_clusters");
        let shift_trigger_metric = config.recorder.counter("pipeline.shift_triggers");
        Self {
            config,
            pre,
            clusterer,
            tracked: Vec::new(),
            last_update: None,
            shift_triggers: 0,
            ingested_statements: 0,
            ingested_arrivals: 0,
            deduplicated: 0,
            reordered: 0,
            last_ingest_minute: None,
            last_ingest_event: None,
            update_time,
            shift_trigger_metric,
        }
    }

    /// The recorder the pipeline was assembled with (disabled unless the
    /// config installed one). Clone it to attach more components — e.g.
    /// [`crate::ForecastManager::set_recorder`] — to the same registry.
    pub fn recorder(&self) -> &Recorder {
        &self.config.recorder
    }

    /// The tracer the pipeline was assembled with (disabled unless the
    /// config installed one). Clone it to attach more components — e.g.
    /// [`crate::ForecastManager::set_tracer`] — to the same flight
    /// recorder, or query it ([`Tracer::view`]) for lineage and export.
    pub fn tracer(&self) -> &Tracer {
        &self.config.tracer
    }

    /// Forwards one query to the framework (the DBMS-side hook).
    ///
    /// Returns the template id the query mapped to. If the burst of
    /// previously-unseen templates crosses the configured threshold, the
    /// clusters are rebuilt immediately (§5.2's workload-shift trigger).
    pub fn ingest(&mut self, t: Minute, sql: &str) -> Result<TemplateId, Error> {
        self.ingest_weighted(t, sql, 1)
    }

    /// Weighted ingest for batched replay.
    ///
    /// Rejected statements are quarantined inside the Pre-Processor (see
    /// [`PreProcessor::quarantine`]) and counted in [`QueryBot5000::health`];
    /// the `Err` (an [`Error::PreProcess`]) reports the rejection but the
    /// pipeline stays healthy.
    pub fn ingest_weighted(
        &mut self,
        t: Minute,
        sql: &str,
        count: u64,
    ) -> Result<TemplateId, Error> {
        // Delivery-order accounting (observability only — histories are
        // time-keyed and absorb duplicates and reordering either way).
        if self.last_ingest_minute.is_some_and(|prev| t < prev) {
            self.reordered += 1;
        }
        self.last_ingest_minute = Some(t);
        let event = (t, Self::sql_fingerprint(sql));
        if self.last_ingest_event == Some(event) {
            self.deduplicated += 1;
        }
        self.last_ingest_event = Some(event);

        let id = self.pre.ingest_weighted(t, sql, count)?;
        self.ingested_statements += 1;
        self.ingested_arrivals += count;
        if self.clusterer.observe(id.0 as u64) {
            self.shift_triggers += 1;
            self.shift_trigger_metric.inc();
            self.update_clusters(t);
        }
        Ok(id)
    }

    /// Ingests a tick's worth of statements through the sharded batch
    /// engine, on a worker pool sized from the environment
    /// (`QB_THREADS`). See [`QueryBot5000::ingest_batch_with`].
    pub fn ingest_batch(&mut self, batch: &[BatchItem<'_>]) -> BatchReport {
        self.ingest_batch_with(&ThreadPool::default(), batch)
    }

    /// Ingests a tick's worth of statements through the sharded batch
    /// engine on an explicit worker pool.
    ///
    /// State-equivalent to calling [`QueryBot5000::ingest_weighted`] per
    /// item in order — and bit-identical across pool widths and batch
    /// splits (see [`PreProcessor::ingest_batch`]) — but statements fan
    /// out across the Pre-Processor's logical shards, history updates
    /// coalesce per tick, and the clusterer consumes one deduplicated
    /// sighting feed instead of a per-statement call. The workload-shift
    /// trigger (§5.2) is evaluated once per batch; when it fires, clusters
    /// rebuild at the batch's final arrival minute.
    ///
    /// Rejected statements are quarantined and counted exactly as on the
    /// sequential path; the returned [`BatchReport`] carries the batch's
    /// accounting.
    pub fn ingest_batch_with(
        &mut self,
        pool: &ThreadPool,
        batch: &[BatchItem<'_>],
    ) -> BatchReport {
        if batch.is_empty() {
            return BatchReport::default();
        }
        // Delivery-order accounting, identical to the sequential path
        // (observability only — histories absorb duplicates and
        // reordering either way).
        for item in batch {
            if self.last_ingest_minute.is_some_and(|prev| item.minute < prev) {
                self.reordered += 1;
            }
            self.last_ingest_minute = Some(item.minute);
            let event = (item.minute, Self::sql_fingerprint(item.sql));
            if self.last_ingest_event == Some(event) {
                self.deduplicated += 1;
            }
            self.last_ingest_event = Some(event);
        }

        let report = self.pre.ingest_batch(pool, batch);
        self.ingested_statements += report.statements;
        self.ingested_arrivals += report.arrivals;

        let keys: Vec<u64> = report.sighted.iter().map(|id| id.0 as u64).collect();
        if self.clusterer.observe_batch(&keys) {
            self.shift_triggers += 1;
            self.shift_trigger_metric.inc();
            let now = batch.last().expect("batch checked non-empty").minute;
            self.update_clusters(now);
        }
        report
    }

    fn sql_fingerprint(sql: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        sql.hash(&mut h);
        h.finish()
    }

    /// Exports the complete mutable pipeline state as plain data (durable
    /// snapshots). Pair with [`QueryBot5000::restore`] to continue an
    /// identical run in a fresh process.
    pub fn export_state(&self) -> PipelineState {
        PipelineState {
            pre: self.pre.export_state(),
            clusterer: self.clusterer.export_state(),
            tracked: self.tracked.iter().map(ClusterInfo::export_state).collect(),
            last_update: self.last_update,
            shift_triggers: self.shift_triggers,
            ingested_statements: self.ingested_statements,
            ingested_arrivals: self.ingested_arrivals,
            deduplicated: self.deduplicated,
            reordered: self.reordered,
            last_ingest_minute: self.last_ingest_minute,
            last_ingest_event: self.last_ingest_event,
        }
    }

    /// Rebuilds a pipeline from exported state. `config` must match the
    /// exporting instance's configuration; the configured recorder and
    /// tracer are installed into the restored stages exactly as
    /// [`QueryBot5000::new`] would.
    pub fn restore(config: Qb5000Config, state: PipelineState) -> Result<Self, Error> {
        let mut bot = QueryBot5000::new(config);
        let mut pre = PreProcessor::restore(bot.config.preprocessor.clone(), state.pre)?;
        pre.set_recorder(&bot.config.recorder);
        pre.set_tracer(&bot.config.tracer);
        bot.pre = pre;
        let mut clusterer =
            OnlineClusterer::restore(bot.config.clusterer.clone(), state.clusterer);
        clusterer.set_recorder(&bot.config.recorder);
        clusterer.set_tracer(&bot.config.tracer);
        bot.clusterer = clusterer;
        bot.tracked = state.tracked.into_iter().map(ClusterInfo::from_state).collect();
        bot.last_update = state.last_update;
        bot.shift_triggers = state.shift_triggers;
        bot.ingested_statements = state.ingested_statements;
        bot.ingested_arrivals = state.ingested_arrivals;
        bot.deduplicated = state.deduplicated;
        bot.reordered = state.reordered;
        bot.last_ingest_minute = state.last_ingest_minute;
        bot.last_ingest_event = state.last_ingest_event;
        Ok(bot)
    }

    /// The resilience-layer health report: ingest accounting plus the
    /// Pre-Processor's quarantine view. Combine with
    /// [`crate::manager::ForecastManager::health`] via
    /// [`PipelineHealth::with_forecast`] for the full per-stage picture.
    pub fn health(&self) -> PipelineHealth {
        let q = self.pre.quarantine();
        let mut last_errors = Vec::new();
        if let Some(e) = q.last_error() {
            last_errors.push(("pre-processor", e.to_string()));
        }
        PipelineHealth {
            ingested_statements: self.ingested_statements,
            ingested_arrivals: self.ingested_arrivals,
            rejected_statements: q.rejected_statements(),
            rejected_arrivals: q.rejected_arrivals(),
            deduplicated: self.deduplicated,
            reordered: self.reordered,
            last_errors,
            threads_used: qb_parallel::configured_threads(),
            forecast_accuracy: Vec::new(),
            trace_dumps: self.config.tracer.dumps(),
            serve_epoch: self.config.serve.as_ref().map(|s| s.epoch()),
            active_alerts: Vec::new(),
        }
    }

    /// Rebuilds cluster assignments from the current arrival histories
    /// (the periodic Clusterer invocation — the paper runs it daily).
    pub fn update_clusters(&mut self, now: Minute) -> UpdateReport {
        let _span = self.update_time.start();
        // Each cluster refresh advances the trace's logical clock: event
        // ordering below is round-relative, never wall-clock.
        self.config.tracer.begin_round(now);
        let _stage = self.config.tracer.stage("pipeline.update_clusters");
        let sampler = FeatureSampler::random(
            now,
            self.config.feature_window,
            self.config.feature_points,
            self.config.feature_interval,
            // Derive the sampler seed from the update time so features stay
            // comparable within one update but refresh across updates.
            self.config.seed ^ (now as u64).rotate_left(17),
        );
        let window_start = now - self.config.feature_window;
        let feature_mode = self.config.feature_mode;
        // Feature extraction fans out over fixed-size template chunks:
        // chunk boundaries depend only on the template count, and the map
        // preserves input order, so any pool width yields the same
        // snapshot vector bit for bit.
        const SNAPSHOT_CHUNK: usize = 256;
        let pool = ThreadPool::default();
        let chunks: Vec<&[qb_preprocessor::TemplateEntry]> =
            self.pre.templates().chunks(SNAPSHOT_CHUNK).collect();
        let sampler = &sampler;
        let snapshots: Vec<TemplateSnapshot> = pool
            .map(chunks, |_, chunk| {
                chunk
                    .iter()
                    .filter_map(|e| {
                        let first = e.history.first_seen()?;
                        let last = e.history.last_seen()?;
                        let feature = match feature_mode {
                            FeatureMode::ArrivalRate => sampler.extract(&e.history, first),
                            FeatureMode::Logical => qb_clusterer::TemplateFeature::full(
                                e.logical.to_vector(16, 32),
                            ),
                        };
                        let volume = e.history.count_range(window_start, now) as f64;
                        Some(TemplateSnapshot {
                            key: e.id.0 as u64,
                            feature,
                            volume,
                            last_seen: last,
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let report = self.clusterer.update(snapshots, now);
        self.refresh_tracked();
        self.last_update = Some(now);
        // With serving on, every cluster refresh publishes a membership
        // patch: readers route templates against the new assignments
        // immediately, while entries whose identity didn't change keep
        // their curves by structural sharing.
        if let Some(serve) = &self.config.serve {
            serve.publish_membership(now, &self.tracked);
        }
        report
    }

    fn refresh_tracked(&mut self) {
        let total: f64 = self.clusterer.clusters().map(|c| c.volume).sum();
        let mut tracked = Vec::new();
        let mut covered = 0.0;
        for c in self.clusterer.largest_clusters(self.config.max_clusters) {
            if total > 0.0 && covered / total >= self.config.coverage_target {
                break;
            }
            covered += c.volume;
            tracked.push(ClusterInfo {
                id: c.id,
                volume: c.volume,
                members: c.members.iter().map(|&k| TemplateId(k as u32)).collect(),
            });
        }
        self.tracked = tracked;
    }

    /// The clusters currently selected for modeling, largest first —
    /// refreshed by each [`QueryBot5000::update_clusters`] call under the
    /// configured `max_clusters` / `coverage_target` policy (§5.3).
    /// Aggregate one entry's arrivals with
    /// [`QueryBot5000::cluster_series`].
    pub fn tracked_clusters(&self) -> &[ClusterInfo] {
        &self.tracked
    }

    /// Fraction of total workload volume the `k` largest clusters cover
    /// (Figure 5) — the quantity `coverage_target` thresholds when
    /// [`QueryBot5000::tracked_clusters`] is selected.
    pub fn coverage_ratio(&self, k: usize) -> f64 {
        self.clusterer.coverage_ratio(k)
    }

    /// The forecast-serving service the pipeline publishes into, when the
    /// config enabled one ([`Qb5000Config::serve`]). Use it to create
    /// lock-free [`crate::ForecastReader`] handles.
    pub fn serve(&self) -> Option<&crate::serve::ForecastService> {
        self.config.serve.as_ref()
    }

    /// Whether cold-start forecasting is enabled
    /// ([`Qb5000Config::cold_start`]): retrain rounds then also publish
    /// seeded estimates for templates outside the trained cluster set.
    pub fn cold_start_enabled(&self) -> bool {
        self.config.cold_start
    }

    /// The Pre-Processor, for stats inspection (Tables 1, 2, 4).
    pub fn preprocessor(&self) -> &PreProcessor {
        &self.pre
    }

    /// The trailing window (minutes) over which cluster volumes and
    /// features are computed.
    pub fn feature_window(&self) -> i64 {
        self.config.feature_window
    }

    /// Rolls stale per-minute arrival records into coarser buckets (§4's
    /// storage-bounding step). Call periodically on long feeds; reads at
    /// hourly-or-coarser intervals are unaffected.
    pub fn compact_histories(&mut self) {
        self.pre.compact_histories();
    }

    /// The Clusterer, for stats inspection.
    pub fn clusterer(&self) -> &OnlineClusterer {
        &self.clusterer
    }

    /// Aggregated arrival series (sum over member templates) for one
    /// tracked cluster over `[start, end)` at `interval` — the series the
    /// Forecaster trains and scores on. Pair with
    /// [`QueryBot5000::tracked_clusters`] for the cluster list.
    pub fn cluster_series(
        &self,
        cluster: &ClusterInfo,
        start: Minute,
        end: Minute,
        interval: Interval,
    ) -> Vec<f64> {
        let n = interval.buckets_between(start, end);
        let mut out = vec![0.0; n];
        for &m in &cluster.members {
            let series = self.pre.template_series(m, start, end, interval);
            for (o, v) in out.iter_mut().zip(series) {
                *o += v;
            }
        }
        out
    }

    /// Builds a forecast job over the tracked clusters: training series
    /// ending at `now`, for a model with a `window`-step input predicting
    /// `horizon` steps of `interval` ahead. `span` chooses the training
    /// span ([`JobSpan::Auto`] for a derived default, [`JobSpan::Steps`]
    /// for an explicit count); the lookback is clamped to the earliest
    /// data actually ingested, so an over-long span never fabricates a
    /// zero-traffic prefix.
    ///
    /// Returns `None` when no clusters are tracked yet
    /// ([`QueryBot5000::update_clusters`] has not run) or the recorded
    /// history is shorter than `window + horizon + 1` steps.
    pub fn forecast_job_with(
        &self,
        now: Minute,
        interval: Interval,
        window: usize,
        horizon: usize,
        span: JobSpan,
    ) -> Option<ForecastJob> {
        self.forecast_job_for(&self.tracked, now, interval, window, horizon, span)
    }

    /// [`QueryBot5000::forecast_job_with`] over an explicit cluster set
    /// instead of the currently tracked one — the durable-recovery path
    /// re-fits the serving models against the exact cluster set they were
    /// originally trained on, which may be a last-known-good snapshot that
    /// differs from the current assignments.
    pub fn forecast_job_for(
        &self,
        clusters: &[ClusterInfo],
        now: Minute,
        interval: Interval,
        window: usize,
        horizon: usize,
        span: JobSpan,
    ) -> Option<ForecastJob> {
        if clusters.is_empty() {
            return None;
        }
        let end = interval.bucket_start(now);
        let span = span.steps(window, horizon).max(window + horizon + 1) as i64;
        let mut start = end - span * interval.as_minutes();
        // Clamp to recorded history: training on zero-filled pre-ingest
        // buckets systematically biases the models low.
        let earliest = clusters
            .iter()
            .flat_map(|c| c.members.iter())
            .filter_map(|&m| self.pre.template(m).history.first_seen())
            .min();
        if let Some(first) = earliest {
            let first_bucket = interval.bucket_start(first);
            if first_bucket > start {
                start = first_bucket;
            }
        }
        let series: Vec<Vec<f64>> = clusters
            .iter()
            .map(|c| self.cluster_series(c, start, end, interval))
            .collect();
        if series.first().is_some_and(|s| s.len() < window + horizon + 1) {
            return None;
        }
        Some(ForecastJob {
            series,
            spec: WindowSpec { window, horizon },
            clusters: clusters.to_vec(),
        })
    }

}

/// A ready-to-train forecasting task over the tracked clusters.
pub struct ForecastJob {
    /// Cluster-major training series (linear space).
    pub series: Vec<Vec<f64>>,
    pub spec: WindowSpec,
    /// The clusters each series row corresponds to.
    pub clusters: Vec<ClusterInfo>,
}

impl ForecastJob {
    /// Fits the model on the job's series and predicts each tracked
    /// cluster's arrival rate `spec.horizon` intervals past the end of the
    /// training data. Training failures surface as [`Error::Forecast`].
    pub fn fit_predict(&self, model: &mut dyn Forecaster) -> Result<Vec<f64>, Error> {
        model.fit(&self.series, self.spec)?;
        let recent: Vec<Vec<f64>> = self
            .series
            .iter()
            .map(|s| s[s.len().saturating_sub(self.spec.window)..].to_vec())
            .collect();
        Ok(model.predict(&recent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_cyclic(bot: &mut QueryBot5000, days: i64) {
        for minute in 0..days * MINUTES_PER_DAY {
            let hour = (minute / 60) % 24;
            let day_volume = if (6..22).contains(&hour) { 30 } else { 3 };
            bot.ingest_weighted(minute, "SELECT a FROM day_tbl WHERE id = 1", day_volume)
                .unwrap();
            // Anti-phase template.
            let night_volume = if (6..22).contains(&hour) { 2 } else { 25 };
            bot.ingest_weighted(minute, "SELECT b FROM night_tbl WHERE id = 1", night_volume)
                .unwrap();
            // A scaled copy of the day pattern: must co-cluster with it.
            bot.ingest_weighted(minute, "SELECT c FROM day_tbl2 WHERE id = 1", day_volume * 3)
                .unwrap();
        }
    }

    #[test]
    fn clusters_by_arrival_pattern_not_table() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        feed_cyclic(&mut bot, 4);
        bot.update_clusters(4 * MINUTES_PER_DAY);
        assert_eq!(bot.clusterer().num_clusters(), 2, "day-like vs night-like");
        // The two day-shaped templates share a cluster even though they
        // touch different tables.
        let tracked = bot.tracked_clusters();
        assert!(!tracked.is_empty());
        let largest = &tracked[0];
        assert_eq!(largest.members.len(), 2);
    }

    #[test]
    fn tracked_clusters_ordered_by_volume() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        feed_cyclic(&mut bot, 3);
        bot.update_clusters(3 * MINUTES_PER_DAY);
        let t = bot.tracked_clusters();
        for w in t.windows(2) {
            assert!(w[0].volume >= w[1].volume);
        }
    }

    #[test]
    fn cluster_series_sums_members() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        feed_cyclic(&mut bot, 2);
        bot.update_clusters(2 * MINUTES_PER_DAY);
        let largest = bot.tracked_clusters()[0].clone();
        let series =
            bot.cluster_series(&largest, 0, 2 * MINUTES_PER_DAY, Interval::HOUR);
        assert_eq!(series.len(), 48);
        // Day pattern: hour 12 ≈ (30 + 90)/min × 60; hour 2 ≈ (3+9)×60.
        assert!(series[12] > series[2] * 5.0, "{} vs {}", series[12], series[2]);
    }

    #[test]
    fn forecast_job_end_to_end_lr() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        feed_cyclic(&mut bot, 6);
        bot.update_clusters(6 * MINUTES_PER_DAY);
        let job = bot
            .forecast_job_with(6 * MINUTES_PER_DAY, Interval::HOUR, 24, 1, JobSpan::Auto)
            .unwrap();
        assert_eq!(job.series.len(), bot.tracked_clusters().len());
        let mut lr = qb_forecast::LinearRegression::default();
        let pred = job.fit_predict(&mut lr).unwrap();
        // The prediction for midnight (hour 0) should be low for the
        // day cluster relative to its daytime volume.
        assert_eq!(pred.len(), job.clusters.len());
        assert!(pred.iter().all(|p| p.is_finite() && *p >= 0.0));
    }

    #[test]
    fn workload_shift_triggers_early_recluster() {
        let cfg = Qb5000Config::default();
        let mut bot = QueryBot5000::new(cfg);
        feed_cyclic(&mut bot, 2);
        bot.update_clusters(2 * MINUTES_PER_DAY);
        // (The very first ingests may have tripped the bootstrap trigger
        // before any clusters existed; only the delta matters here.)
        let before = bot.shift_triggers;
        // A flood of brand-new templates (distinct tables → distinct
        // fingerprints).
        for k in 0..40 {
            let sql = format!("SELECT z FROM brand_new_{k} WHERE id = 1");
            bot.ingest(2 * MINUTES_PER_DAY + k, &sql).unwrap();
        }
        assert!(
            bot.shift_triggers > before,
            "unseen-template burst must trigger reclustering"
        );
    }

    #[test]
    fn forecast_job_none_before_clustering() {
        let bot = QueryBot5000::new(Qb5000Config::default());
        assert!(bot.forecast_job_with(100, Interval::HOUR, 4, 1, JobSpan::Auto).is_none());
    }

    #[test]
    fn pipeline_recorder_reaches_every_stage() {
        let rec = qb_obs::Recorder::new();
        let cfg = Qb5000Config::builder().recorder(rec.clone()).build().unwrap();
        let mut bot = QueryBot5000::new(cfg);
        feed_cyclic(&mut bot, 2);
        bot.update_clusters(2 * MINUTES_PER_DAY);
        let snap = rec.snapshot();
        assert!(snap.counters["preprocessor.ingested_statements"] > 0);
        assert!(snap.histograms["clusterer.update"].count > 0);
        assert!(snap.histograms["pipeline.update_clusters"].count >= 1);
        assert!(bot.recorder().is_enabled());
    }

    #[test]
    fn tracer_reaches_every_stage_and_dumps_surface_in_health() {
        use qb_trace::{EventKind, TraceSettings, Tracer};
        let tracer = Tracer::new(TraceSettings {
            // A tiny spike threshold so hostile input trips the recorder.
            quarantine_spike: 3,
            ..TraceSettings::default()
        });
        let cfg = Qb5000Config::builder().trace(tracer.clone()).build().unwrap();
        let mut bot = QueryBot5000::new(cfg);
        feed_cyclic(&mut bot, 2);
        bot.update_clusters(2 * MINUTES_PER_DAY);
        let view = bot.tracer().view();
        assert!(view.latest(EventKind::RoundStarted).is_some());
        assert!(view.latest(EventKind::TemplateCreated).is_some());
        assert!(view.latest(EventKind::ClustersUpdated).is_some());
        // The template lineage is explorable from the cluster decision.
        let created = view.latest(EventKind::TemplateCreated).unwrap();
        assert!(view.explain(created.id).contains("QuerySeen"));
        // A burst of malformed statements crosses the spike threshold and
        // the automatic dump lands in the health report.
        for k in 0..4 {
            let _ = bot.ingest_weighted(2 * MINUTES_PER_DAY + k, "SELEC nope", 1);
        }
        let h = bot.health();
        assert_eq!(h.trace_dumps.len(), 1);
        assert_eq!(h.trace_dumps[0].reason, "quarantine_spike");
        assert!(h.trace_dumps[0].lineage.contains("QuarantineSpike"));
    }

    #[test]
    fn health_accounts_for_every_ingest_call() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        let mut calls = 0u64;
        for minute in 0..100 {
            bot.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", 2).unwrap();
            calls += 1;
            if minute % 10 == 0 {
                // Malformed statement: quarantined, not ingested.
                assert!(bot.ingest_weighted(minute, "SELEC a FRM", 3).is_err());
                calls += 1;
            }
        }
        let h = bot.health();
        assert_eq!(h.ingested_statements + h.rejected_statements, calls);
        assert_eq!(h.ingested_statements, 100);
        assert_eq!(h.rejected_statements, 10);
        assert_eq!(h.ingested_arrivals, 200);
        assert_eq!(h.rejected_arrivals, 30);
        assert!(h.last_errors.iter().any(|(stage, _)| *stage == "pre-processor"));
    }

    #[test]
    fn health_flags_duplicates_and_reordering() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        bot.ingest(5, "SELECT a FROM t WHERE id = 1").unwrap();
        bot.ingest(5, "SELECT a FROM t WHERE id = 1").unwrap(); // duplicate
        bot.ingest(3, "SELECT a FROM t WHERE id = 2").unwrap(); // backwards
        bot.ingest(7, "SELECT a FROM t WHERE id = 3").unwrap();
        let h = bot.health();
        assert_eq!(h.deduplicated, 1);
        assert_eq!(h.reordered, 1);
        // Suspicious events are still ingested — the counters are
        // observability, not a filter.
        assert_eq!(h.ingested_statements, 4);
    }

    #[test]
    fn healthy_pipeline_reports_no_errors() {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        bot.ingest(0, "SELECT a FROM t WHERE id = 1").unwrap();
        let h = bot.health();
        assert!(h.last_errors.is_empty());
        assert_eq!(h.rejected_statements, 0);
    }
}
