//! dbsim schemas and data population for the §7.6 index-selection
//! experiment.
//!
//! The paper runs Admissions on MySQL (10 GB) and BusTracker on PostgreSQL
//! (5 GB) with the buffer pool at 1/5 of the database size. We reproduce
//! the *relative* sizing — table row counts scale together via `scale` —
//! against the `qb-dbsim` engine, whose cost model exposes the same
//! buffer-pool fraction.

use qb_dbsim::{ColumnDef, ColumnType, CostModel, Database, TableSchema};
use qb_workloads::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ColumnType::{Boolean, Float, Integer, Text};

fn col(name: &str, ty: ColumnType) -> ColumnDef {
    ColumnDef::new(name, ty)
}

/// Builds and populates the database for a workload. `scale` multiplies the
/// base row counts (1.0 ≈ tens of thousands of rows — big enough that index
/// choice matters, small enough for laptop runtime).
pub fn build_database(workload: Workload, scale: f64, seed: u64) -> Database {
    assert!(scale > 0.0, "scale must be positive");
    let mut db = Database::new(CostModel::default());
    let mut rng = SmallRng::seed_from_u64(seed);
    match workload {
        Workload::BusTracker => populate_bustracker(&mut db, scale, &mut rng),
        Workload::Admissions => populate_admissions(&mut db, scale, &mut rng),
        Workload::Mooc => unimplemented!("the §7.6 experiment uses Admissions and BusTracker"),
    }
    db
}

fn n(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(16)
}

fn populate_bustracker(db: &mut Database, scale: f64, rng: &mut SmallRng) {
    db.create_table(TableSchema::new(
        "stops",
        vec![
            col("stop_id", Integer),
            col("stop_name", Text),
            col("lat", Float),
            col("lon", Float),
        ],
    ));
    db.create_table(TableSchema::new(
        "routes",
        vec![col("route_id", Integer), col("route_name", Text), col("color", Text)],
    ));
    db.create_table(TableSchema::new(
        "route_stops",
        vec![col("route_id", Integer), col("stop_id", Integer), col("seq", Integer)],
    ));
    db.create_table(TableSchema::new(
        "predictions",
        vec![
            col("stop_id", Integer),
            col("route_id", Integer),
            col("bus_id", Integer),
            col("eta_seconds", Integer),
            col("updated_at", Integer),
        ],
    ));
    db.create_table(TableSchema::new(
        "positions",
        vec![
            col("bus_id", Integer),
            col("route_id", Integer),
            col("lat", Float),
            col("lon", Float),
            col("heading", Integer),
            col("recorded_at", Integer),
        ],
    ));
    db.create_table(TableSchema::new(
        "schedule",
        vec![
            col("trip_id", Integer),
            col("stop_id", Integer),
            col("service_day", Integer),
            col("depart_time", Integer),
        ],
    ));
    db.create_table(TableSchema::new(
        "favorites",
        vec![col("user_id", Integer), col("stop_id", Integer), col("created_at", Integer)],
    ));
    db.create_table(TableSchema::new(
        "alerts",
        vec![
            col("alert_id", Integer),
            col("route_id", Integer),
            col("message", Text),
            col("severity", Integer),
            col("expires_at", Integer),
        ],
    ));
    db.create_table(TableSchema::new(
        "trips",
        vec![col("trip_id", Integer), col("vehicle_id", Integer), col("headsign", Text)],
    ));
    db.create_table(TableSchema::new(
        "vehicles",
        vec![col("vehicle_id", Integer), col("capacity", Integer)],
    ));
    db.create_table(TableSchema::new(
        "sessions",
        vec![col("session_id", Integer), col("last_seen", Integer), col("hits", Integer)],
    ));

    let stops = n(2000, scale);
    for i in 0..stops {
        let lat = 40.40 + rng.gen_range(0..500) as f64 * 1e-4;
        let lon = -79.99 + rng.gen_range(0..500) as f64 * 1e-4;
        insert(db, "stops", &format!("({i}, 'stop{i}', {lat:.4}, {lon:.4})"));
    }
    for i in 0..90 {
        insert(db, "routes", &format!("({i}, 'route{i}', 'c{}')", i % 9));
    }
    for i in 0..n(3000, scale) {
        insert(db, "route_stops", &format!("({}, {}, {})", i % 90, i % stops, i % 40));
    }
    for i in 0..n(12_000, scale) {
        insert(
            db,
            "predictions",
            &format!(
                "({}, {}, {}, {}, {})",
                i % stops,
                i % 90,
                i % 400,
                rng.gen_range(30..3600),
                rng.gen_range(0..1_000_000)
            ),
        );
    }
    for i in 0..n(25_000, scale) {
        insert(
            db,
            "positions",
            &format!(
                "({}, {}, {:.5}, {:.5}, {}, {})",
                i % 400,
                i % 90,
                40.4 + rng.gen_range(0..1000) as f64 * 1e-5,
                -80.0 + rng.gen_range(0..1000) as f64 * 1e-5,
                rng.gen_range(0..360),
                i
            ),
        );
    }
    for i in 0..n(8000, scale) {
        insert(
            db,
            "schedule",
            &format!("({}, {}, {}, {})", i % 4000, i % stops, i % 7, rng.gen_range(0..86_400)),
        );
    }
    for i in 0..n(6000, scale) {
        insert(
            db,
            "favorites",
            &format!("({}, {}, {})", rng.gen_range(1..100_000), i % stops, i),
        );
    }
    for i in 0..n(300, scale) {
        insert(
            db,
            "alerts",
            &format!("({i}, {}, 'alert{i}', {}, {})", i % 90, i % 5, rng.gen_range(0..2_000_000)),
        );
    }
    for i in 0..n(4000, scale) {
        insert(db, "trips", &format!("({i}, {}, 'hs{}')", i % 400, i % 30));
    }
    for i in 0..400 {
        insert(db, "vehicles", &format!("({i}, {})", 30 + i % 40));
    }
    for i in 0..n(5000, scale) {
        insert(db, "sessions", &format!("({i}, {}, {})", rng.gen_range(0..1_000_000), i % 50));
    }
}

fn populate_admissions(db: &mut Database, scale: f64, rng: &mut SmallRng) {
    db.create_table(TableSchema::new(
        "students",
        vec![col("student_id", Integer), col("email", Text), col("verified", Boolean)],
    ));
    db.create_table(TableSchema::new(
        "departments",
        vec![col("dept_id", Integer), col("dept_name", Text)],
    ));
    db.create_table(TableSchema::new(
        "programs",
        vec![col("program_id", Integer), col("name", Text), col("dept_id", Integer)],
    ));
    db.create_table(TableSchema::new(
        "applications",
        vec![
            col("app_id", Integer),
            col("student_id", Integer),
            col("program_id", Integer),
            col("status", Text),
            col("essay_draft", Text),
            col("created_at", Integer),
            col("updated_at", Integer),
            col("decided_at", Integer),
        ],
    ));
    db.create_table(TableSchema::new(
        "requirements",
        vec![
            col("req_id", Integer),
            col("program_id", Integer),
            col("description", Text),
            col("required", Boolean),
        ],
    ));
    db.create_table(TableSchema::new(
        "documents",
        vec![
            col("doc_id", Integer),
            col("app_id", Integer),
            col("kind", Text),
            col("blob_ref", Text),
            col("uploaded_at", Integer),
            col("deleted", Boolean),
        ],
    ));
    db.create_table(TableSchema::new(
        "letters",
        vec![
            col("letter_id", Integer),
            col("app_id", Integer),
            col("recommender_email", Text),
            col("received", Boolean),
        ],
    ));
    db.create_table(TableSchema::new(
        "reviews",
        vec![
            col("review_id", Integer),
            col("app_id", Integer),
            col("reviewer_id", Integer),
            col("score", Integer),
            col("comments", Text),
            col("created_at", Integer),
        ],
    ));

    let students = n(8000, scale);
    let apps = n(20_000, scale);
    for i in 0..students {
        insert(db, "students", &format!("({i}, 'user{i}@example.edu', TRUE)"));
    }
    for i in 0..40 {
        insert(db, "departments", &format!("({i}, 'dept{i}')"));
    }
    for i in 0..300 {
        insert(db, "programs", &format!("({i}, 'prog{i}', {})", i % 40));
    }
    let statuses = ["draft", "submitted", "decided"];
    for i in 0..apps {
        insert(
            db,
            "applications",
            &format!(
                "({i}, {}, {}, '{}', 'draft-{i}', {}, {}, 0)",
                i % students,
                i % 300,
                statuses[i % 3],
                rng.gen_range(0..500_000),
                rng.gen_range(500_000..1_000_000)
            ),
        );
    }
    for i in 0..n(1500, scale) {
        insert(
            db,
            "requirements",
            &format!("({i}, {}, 'req{i}', {})", i % 300, if i % 4 == 0 { "FALSE" } else { "TRUE" }),
        );
    }
    let kinds = ["transcript", "cv", "statement"];
    for i in 0..n(30_000, scale) {
        insert(
            db,
            "documents",
            &format!(
                "({i}, {}, '{}', 'blob-{i}', {}, {})",
                i % apps,
                kinds[i % 3],
                rng.gen_range(0..1_000_000),
                if i % 20 == 0 { "TRUE" } else { "FALSE" }
            ),
        );
    }
    for i in 0..n(15_000, scale) {
        insert(
            db,
            "letters",
            &format!(
                "({i}, {}, 'rec{}@uni.edu', {})",
                i % apps,
                i % 900,
                if i % 3 == 0 { "FALSE" } else { "TRUE" }
            ),
        );
    }
    for i in 0..n(6000, scale) {
        insert(
            db,
            "reviews",
            &format!(
                "({i}, {}, {}, {}, 'c{i}', {})",
                i % apps,
                i % 900,
                1 + i % 5,
                rng.gen_range(0..1_000_000)
            ),
        );
    }
}

fn insert(db: &mut Database, table: &str, values: &str) {
    let cols: Vec<String> = db
        .table(table)
        .unwrap_or_else(|| panic!("table {table} exists"))
        .schema()
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let sql = format!("INSERT INTO {table} ({}) VALUES {values}", cols.join(", "));
    db.execute_sql(&sql).unwrap_or_else(|e| panic!("populate {table}: {e}\n{sql}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bustracker_database_serves_trace_queries() {
        let mut db = build_database(Workload::BusTracker, 0.05, 1);
        let cfg = qb_workloads::TraceConfig { start: 0, days: 1, scale: 0.05, seed: 2 };
        let mut executed = 0;
        for ev in Workload::BusTracker.generator(cfg).take(400) {
            db.execute_sql(&ev.sql).unwrap_or_else(|e| panic!("`{}`: {e}", ev.sql));
            executed += 1;
        }
        assert!(executed > 100);
    }

    #[test]
    fn admissions_database_serves_trace_queries() {
        let mut db = build_database(Workload::Admissions, 0.05, 1);
        let cfg = qb_workloads::TraceConfig {
            start: 320 * qb_timeseries::MINUTES_PER_DAY,
            days: 1,
            scale: 0.05,
            seed: 3,
        };
        for ev in Workload::Admissions.generator(cfg).take(400) {
            db.execute_sql(&ev.sql).unwrap_or_else(|e| panic!("`{}`: {e}", ev.sql));
        }
    }

    #[test]
    fn scale_controls_row_counts() {
        let small = build_database(Workload::BusTracker, 0.02, 1);
        let large = build_database(Workload::BusTracker, 0.1, 1);
        let rows = |db: &Database| db.tables().map(qb_dbsim::Table::len).sum::<usize>();
        assert!(rows(&large) > rows(&small) * 3);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        build_database(Workload::BusTracker, 0.0, 1);
    }
}
