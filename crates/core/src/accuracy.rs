//! Rolling forecast-accuracy tracking (the paper's Figure 7 view).
//!
//! Every prediction the pipeline serves is also a *claim* that can be
//! scored once real arrivals for the predicted bucket land. The
//! [`AccuracyTracker`] holds each claim as pending, and when the predicted
//! bucket has fully elapsed it settles the claim against the actual
//! aggregated cluster series, pushing the squared log-space error — the
//! same `ln(1+x)` metric the §7 experiments use — into per-horizon and
//! per-cluster rolling windows.
//!
//! The rolling MSE feeds two sinks: gauges on the pipeline's
//! [`Recorder`] (`forecast.mse.h<i>`, plus per-cluster variants when
//! enabled) and the [`HorizonAccuracy`] rows that
//! [`PipelineHealth::with_accuracy`](crate::PipelineHealth::with_accuracy)
//! attaches to the health report.

use std::collections::BTreeMap;

use qb_obs::{Recorder, RollingMean};
use qb_timeseries::{Interval, Minute};

use crate::pipeline::{ClusterInfo, ClusterInfoState, QueryBot5000};

/// Default rolling window: how many settled observations each (horizon,
/// cluster) mean averages over.
pub const DEFAULT_ACCURACY_WINDOW: usize = 64;

/// One horizon's rolling accuracy, as reported through
/// [`crate::PipelineHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonAccuracy {
    /// Index into the configured horizon list.
    pub horizon_idx: usize,
    /// Rolling mean of squared log-space errors; `None` until the first
    /// prediction for this horizon has matured and settled.
    pub rolling_mse: Option<f64>,
    /// Settled observations currently inside the rolling window.
    pub samples: usize,
}

/// A prediction waiting for its target bucket to elapse.
#[derive(Debug, Clone)]
struct Pending {
    horizon_idx: usize,
    /// Predicted bucket `[due, due + interval)`.
    due: Minute,
    interval: Interval,
    cluster: ClusterInfo,
    predicted: f64,
}

/// Snapshot of one [`RollingMean`], preserving the exact float sum so the
/// restored mean continues the identical numeric stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingMeanState {
    /// Window capacity the mean was created with.
    pub capacity: usize,
    /// Values currently inside the window, oldest first.
    pub values: Vec<f64>,
    /// The running sum, verbatim (re-summing `values` would round
    /// differently).
    pub sum: f64,
    /// Evictions since the window's last wraparound re-sum — the restored
    /// window must re-sum at the same future push as the live one.
    pub since_refresh: usize,
}

fn export_mean(m: &RollingMean) -> RollingMeanState {
    RollingMeanState {
        capacity: m.capacity(),
        values: m.values(),
        sum: m.sum(),
        since_refresh: m.since_refresh(),
    }
}

fn restore_mean(s: RollingMeanState) -> RollingMean {
    RollingMean::from_parts(s.capacity, &s.values, s.sum, s.since_refresh)
}

/// Snapshot of one pending (unsettled) prediction claim.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingClaimState {
    /// Index into the configured horizon list.
    pub horizon_idx: usize,
    /// Start of the predicted bucket.
    pub due: Minute,
    /// Bucket width in minutes.
    pub interval_minutes: i64,
    /// Cluster the claim was made against, frozen at claim time.
    pub cluster: ClusterInfoState,
    /// Claimed arrival rate.
    pub predicted: f64,
}

/// Full plain-data snapshot of an [`AccuracyTracker`] — everything needed
/// to continue scoring bit-identically after a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyTrackerState {
    /// Configured horizon count.
    pub horizons: usize,
    /// Rolling-window capacity.
    pub window: usize,
    /// Unsettled claims, in recording order.
    pub pending: Vec<PendingClaimState>,
    /// Per-horizon rolling error windows.
    pub overall: Vec<RollingMeanState>,
    /// Per-(horizon, cluster-id) rolling error windows, sorted by key.
    pub per_cluster: Vec<(usize, u64, RollingMeanState)>,
    /// Lifetime settled-claim count.
    pub settled_total: u64,
}

/// Scores predictions against later-observed actuals in rolling windows.
///
/// Deterministic: settlement order is the recording order, and every
/// statistic is a pure function of the (prediction, actual) stream — no
/// clocks, no sampling.
pub struct AccuracyTracker {
    horizons: usize,
    window: usize,
    pending: Vec<Pending>,
    /// Rolling error window per horizon, across all clusters.
    overall: Vec<RollingMean>,
    /// Rolling error window per (horizon, cluster).
    per_cluster: BTreeMap<(usize, u64), RollingMean>,
    settled_total: u64,
    recorder: Recorder,
    /// `forecast.mse.h<i>` gauges, aligned with `overall`.
    mse_gauges: Vec<qb_obs::Gauge>,
    settled_metric: qb_obs::Counter,
}

impl AccuracyTracker {
    /// A tracker for `horizons` prediction horizons with a rolling window
    /// of `window` settled observations per mean.
    pub fn new(horizons: usize, window: usize) -> Self {
        let window = window.max(1);
        Self {
            horizons,
            window,
            pending: Vec::new(),
            overall: (0..horizons).map(|_| RollingMean::new(window)).collect(),
            per_cluster: BTreeMap::new(),
            settled_total: 0,
            recorder: Recorder::disabled(),
            mse_gauges: vec![qb_obs::Gauge::default(); horizons],
            settled_metric: qb_obs::Counter::default(),
        }
    }

    /// Installs a [`Recorder`]: each settle updates `forecast.mse.h<i>`
    /// (and `forecast.mse.h<i>.c<id>` per cluster) gauges plus the
    /// `forecast.settled` counter.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
        self.mse_gauges = (0..self.horizons)
            .map(|i| recorder.gauge(&format!("forecast.mse.h{i}")))
            .collect();
        self.settled_metric = recorder.counter("forecast.settled");
    }

    /// Number of configured horizons.
    pub fn horizons(&self) -> usize {
        self.horizons
    }

    /// Registers one prediction round: `predictions[c]` claims cluster
    /// `clusters[c]` will see that arrival rate in the bucket starting
    /// `horizon_steps` intervals after the bucket containing `now`.
    ///
    /// # Panics
    /// Panics if `horizon_idx` is out of range or the slices' lengths
    /// differ.
    pub fn record(
        &mut self,
        horizon_idx: usize,
        now: Minute,
        interval: Interval,
        horizon_steps: usize,
        clusters: &[ClusterInfo],
        predictions: &[f64],
    ) {
        assert!(horizon_idx < self.horizons, "horizon_idx out of range");
        assert_eq!(clusters.len(), predictions.len(), "one prediction per cluster");
        let due = interval.bucket_start(now) + horizon_steps as i64 * interval.as_minutes();
        for (cluster, &predicted) in clusters.iter().zip(predictions) {
            self.pending.push(Pending {
                horizon_idx,
                due,
                interval,
                cluster: cluster.clone(),
                predicted,
            });
        }
    }

    /// Settles every pending prediction whose target bucket has fully
    /// elapsed by `now`, scoring it against the actual aggregated series
    /// from `bot`. Returns how many claims settled.
    pub fn settle(&mut self, bot: &QueryBot5000, now: Minute) -> usize {
        let mut settled: usize = 0;
        let mut remaining = Vec::with_capacity(self.pending.len());
        for p in std::mem::take(&mut self.pending) {
            if now < p.due + p.interval.as_minutes() {
                remaining.push(p);
                continue;
            }
            let actual = bot
                .cluster_series(&p.cluster, p.due, p.due + p.interval.as_minutes(), p.interval)
                .first()
                .copied()
                .unwrap_or(0.0);
            let err = (actual.max(0.0).ln_1p() - p.predicted.max(0.0).ln_1p()).powi(2);
            // A degenerate claim — an infinite prediction from a fit with
            // less than one full history window, say — settles without
            // scoring: pushing ±∞ would poison the rolling sums for good
            // (the eviction subtraction leaves NaN behind). NaN claims are
            // already neutralized by `max(0.0)` above.
            if !err.is_finite() {
                settled += 1;
                continue;
            }
            self.overall[p.horizon_idx].push(err);
            let window = self.window;
            self.per_cluster
                .entry((p.horizon_idx, p.cluster.id.0))
                .or_insert_with(|| RollingMean::new(window))
                .push(err);
            self.mse_gauges[p.horizon_idx]
                .set(self.overall[p.horizon_idx].mean().unwrap_or(0.0));
            if self.recorder.is_enabled() {
                let (h, c) = (p.horizon_idx, p.cluster.id.0);
                if let Some(mean) = self.per_cluster[&(h, c)].mean() {
                    self.recorder.gauge(&format!("forecast.mse.h{h}.c{c}")).set(mean);
                }
            }
            settled += 1;
        }
        self.pending = remaining;
        self.settled_total += settled as u64;
        self.settled_metric.add(settled as u64);
        settled
    }

    /// Rolling log-space MSE for one horizon across all clusters (`None`
    /// until a prediction settles).
    pub fn rolling_mse(&self, horizon_idx: usize) -> Option<f64> {
        self.overall.get(horizon_idx).and_then(RollingMean::mean)
    }

    /// Per-cluster rolling MSE for one horizon, sorted by cluster id.
    pub fn per_cluster_mse(&self, horizon_idx: usize) -> Vec<(u64, f64)> {
        self.per_cluster
            .range((horizon_idx, 0)..=(horizon_idx, u64::MAX))
            .filter_map(|(&(_, c), m)| m.mean().map(|v| (c, v)))
            .collect()
    }

    /// Predictions still waiting for their bucket to elapse.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total settled observations over the tracker's lifetime.
    pub fn settled_total(&self) -> u64 {
        self.settled_total
    }

    /// Plain-data snapshot of the tracker, including unsettled claims and
    /// the exact rolling-window contents.
    pub fn export_state(&self) -> AccuracyTrackerState {
        AccuracyTrackerState {
            horizons: self.horizons,
            window: self.window,
            pending: self
                .pending
                .iter()
                .map(|p| PendingClaimState {
                    horizon_idx: p.horizon_idx,
                    due: p.due,
                    interval_minutes: p.interval.as_minutes(),
                    cluster: p.cluster.export_state(),
                    predicted: p.predicted,
                })
                .collect(),
            overall: self.overall.iter().map(export_mean).collect(),
            per_cluster: self
                .per_cluster
                .iter()
                .map(|(&(h, c), m)| (h, c, export_mean(m)))
                .collect(),
            settled_total: self.settled_total,
        }
    }

    /// Rebuilds a tracker from [`AccuracyTracker::export_state`]. The
    /// recorder starts disabled — install one afterwards with
    /// [`AccuracyTracker::set_recorder`].
    pub fn restore(state: AccuracyTrackerState) -> Self {
        let mut tracker = Self::new(state.horizons, state.window);
        tracker.pending = state
            .pending
            .into_iter()
            .map(|p| Pending {
                horizon_idx: p.horizon_idx,
                due: p.due,
                interval: Interval::minutes(p.interval_minutes),
                cluster: ClusterInfo::from_state(p.cluster),
                predicted: p.predicted,
            })
            .collect();
        tracker.overall = state.overall.into_iter().map(restore_mean).collect();
        tracker.per_cluster =
            state.per_cluster.into_iter().map(|(h, c, m)| ((h, c), restore_mean(m))).collect();
        tracker.settled_total = state.settled_total;
        tracker
    }

    /// One [`HorizonAccuracy`] row per configured horizon.
    pub fn horizon_accuracy(&self) -> Vec<HorizonAccuracy> {
        self.overall
            .iter()
            .enumerate()
            .map(|(i, m)| HorizonAccuracy {
                horizon_idx: i,
                rolling_mse: m.mean(),
                samples: m.len(),
            })
            .collect()
    }
}

impl crate::pipeline::PipelineHealth {
    /// Attaches the rolling forecast-accuracy rows, completing the health
    /// report for a pipeline whose predictions are scored by an
    /// [`AccuracyTracker`].
    pub fn with_accuracy(mut self, tracker: &AccuracyTracker) -> Self {
        self.forecast_accuracy = tracker.horizon_accuracy();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Qb5000Config;
    use qb_timeseries::MINUTES_PER_DAY;

    fn fed_bot(days: i64) -> QueryBot5000 {
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        for minute in 0..days * MINUTES_PER_DAY {
            bot.ingest_weighted(minute, "SELECT a FROM t WHERE id = 1", 10).unwrap();
        }
        bot.update_clusters(days * MINUTES_PER_DAY);
        bot
    }

    #[test]
    fn perfect_prediction_scores_zero() {
        let bot = fed_bot(2);
        let clusters = bot.tracked_clusters().to_vec();
        let now = MINUTES_PER_DAY; // inside recorded history
        let mut tr = AccuracyTracker::new(1, 8);
        // Claim exactly the actual: 10/min × 60 = 600 arrivals next hour.
        tr.record(0, now, Interval::HOUR, 1, &clusters, &[600.0]);
        assert_eq!(tr.pending_len(), 1);
        // Not yet matured: the predicted bucket hasn't elapsed.
        assert_eq!(tr.settle(&bot, now + 60), 0);
        assert_eq!(tr.settle(&bot, now + 121), 1);
        assert_eq!(tr.pending_len(), 0);
        let mse = tr.rolling_mse(0).unwrap();
        assert!(mse < 1e-12, "perfect claim must score ~0, got {mse}");
        assert_eq!(tr.settled_total(), 1);
    }

    #[test]
    fn wrong_prediction_scores_log_space_error() {
        let bot = fed_bot(2);
        let clusters = bot.tracked_clusters().to_vec();
        let now = MINUTES_PER_DAY;
        let mut tr = AccuracyTracker::new(1, 8);
        tr.record(0, now, Interval::HOUR, 1, &clusters, &[0.0]);
        tr.settle(&bot, now + 121);
        let want = 601f64.ln().powi(2); // (ln(1+600) - ln(1+0))²
        let got = tr.rolling_mse(0).unwrap();
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        let per = tr.per_cluster_mse(0);
        assert_eq!(per.len(), 1);
        assert!((per[0].1 - want).abs() < 1e-9);
    }

    #[test]
    fn horizons_tracked_independently_and_health_rows_align() {
        let bot = fed_bot(2);
        let clusters = bot.tracked_clusters().to_vec();
        let now = MINUTES_PER_DAY;
        let mut tr = AccuracyTracker::new(2, 8);
        tr.record(0, now, Interval::HOUR, 1, &clusters, &[600.0]);
        tr.record(1, now, Interval::HOUR, 12, &clusters, &[0.0]);
        // Only the 1 h claim matures this early.
        tr.settle(&bot, now + 121);
        assert!(tr.rolling_mse(0).is_some());
        assert!(tr.rolling_mse(1).is_none());
        let rows = bot.health().with_accuracy(&tr).forecast_accuracy;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], HorizonAccuracy { horizon_idx: 0, rolling_mse: tr.rolling_mse(0), samples: 1 });
        assert_eq!(rows[1].samples, 0);
        // The 12 h claim matures later.
        tr.settle(&bot, now + 13 * 60 + 1);
        assert!(tr.rolling_mse(1).is_some());
    }

    #[test]
    fn degenerate_claims_never_poison_the_rolling_windows() {
        // Regression: a template with less than one full history window
        // can yield a degenerate fit whose claim is ∞ (or NaN). Settling
        // such a claim must leave every mean finite — an ∞ pushed into a
        // RollingMean turns into permanent NaN once it is evicted.
        let bot = fed_bot(2);
        let clusters = bot.tracked_clusters().to_vec();
        let now = MINUTES_PER_DAY;
        let mut tr = AccuracyTracker::new(1, 2);
        for bad in [f64::INFINITY, f64::NAN, f64::NEG_INFINITY] {
            tr.record(0, now, Interval::HOUR, 1, &clusters, &[bad]);
        }
        tr.record(0, now, Interval::HOUR, 1, &clusters, &[600.0]);
        assert_eq!(tr.settle(&bot, now + 121), 4, "every claim settles, scored or not");
        assert_eq!(tr.pending_len(), 0);
        let mse = tr.rolling_mse(0).expect("finite claims still score");
        assert!(mse.is_finite(), "degenerate claims leaked into the mean: {mse}");
        // NaN and -∞ collapse to a 0.0 claim via max(0.0) and do score;
        // the +∞ claim is dropped. Push the window past capacity to prove
        // eviction stays clean.
        for _ in 0..4 {
            tr.record(0, now, Interval::HOUR, 1, &clusters, &[600.0]);
            tr.settle(&bot, now + 121);
        }
        assert!(tr.rolling_mse(0).unwrap().is_finite());
        for (_, mse) in tr.per_cluster_mse(0) {
            assert!(mse.is_finite(), "per-cluster mean poisoned: {mse}");
        }
    }

    #[test]
    fn short_history_window_settles_against_zero_actuals() {
        // A claim recorded against a bucket with no history at all (the
        // empty-window edge) scores against actual = 0.0 rather than
        // producing a non-finite error.
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        bot.ingest_weighted(0, "SELECT a FROM t WHERE id = 1", 1).unwrap();
        bot.update_clusters(30);
        let clusters = bot.tracked_clusters().to_vec();
        assert!(!clusters.is_empty());
        let mut tr = AccuracyTracker::new(1, 8);
        // Predict one hour past a history of a single statement.
        tr.record(0, 30, Interval::HOUR, 1, &clusters, &[5.0]);
        assert_eq!(tr.settle(&bot, 4 * 60), 1);
        let mse = tr.rolling_mse(0).expect("claim settled");
        assert!(mse.is_finite());
        let want = 6f64.ln().powi(2); // (ln(1+0) - ln(1+5))²
        assert!((mse - want).abs() < 1e-9, "got {mse}, want {want}");
    }

    #[test]
    fn export_restore_round_trips_and_settles_identically() {
        let bot = fed_bot(2);
        let clusters = bot.tracked_clusters().to_vec();
        let now = MINUTES_PER_DAY;
        let mut tr = AccuracyTracker::new(2, 8);
        tr.record(0, now, Interval::HOUR, 1, &clusters, &[550.0]);
        tr.record(1, now, Interval::HOUR, 12, &clusters, &[300.0]);
        tr.settle(&bot, now + 121); // settles the 1 h claim, 12 h stays pending
        let state = tr.export_state();
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.settled_total, 1);
        let mut restored = AccuracyTracker::restore(state.clone());
        assert_eq!(restored.export_state(), state);
        // The restored tracker settles the remaining claim exactly like
        // the original would.
        let late = now + 13 * 60 + 1;
        assert_eq!(restored.settle(&bot, late), tr.settle(&bot, late));
        assert_eq!(restored.rolling_mse(1), tr.rolling_mse(1));
        assert_eq!(restored.per_cluster_mse(0), tr.per_cluster_mse(0));
        assert_eq!(restored.settled_total(), tr.settled_total());
    }

    #[test]
    fn recorder_gauges_follow_the_rolling_mean() {
        let bot = fed_bot(2);
        let clusters = bot.tracked_clusters().to_vec();
        let now = MINUTES_PER_DAY;
        let rec = Recorder::new();
        let mut tr = AccuracyTracker::new(1, 8);
        tr.set_recorder(&rec);
        tr.record(0, now, Interval::HOUR, 1, &clusters, &[600.0]);
        tr.settle(&bot, now + 121);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["forecast.settled"], 1);
        assert!(snap.gauges["forecast.mse.h0"] < 1e-12);
        let cluster_gauge = format!("forecast.mse.h0.c{}", clusters[0].id.0);
        assert!(snap.gauges.contains_key(&cluster_gauge));
    }
}
