//! Validating builders for the two public configuration structs.
//!
//! The structs themselves ([`Qb5000Config`], [`ControllerConfig`]) keep
//! public fields and a `Default` impl for struct-update syntax, but a
//! nonsense value (ρ outside `(0, 1]`, a zero interval, an empty horizon
//! list) only surfaces deep inside the pipeline — as a wrong clustering, a
//! panic, or a silent no-op. The builders reject those values at
//! construction time with a [`ConfigError`] naming the offending field.
//!
//! ```
//! use qb5000::{ConfigError, Qb5000Config};
//!
//! let cfg = Qb5000Config::builder().max_clusters(3).rho(0.8).build().unwrap();
//! assert_eq!(cfg.max_clusters, 3);
//! let err = Qb5000Config::builder().rho(0.0).build().unwrap_err();
//! assert!(matches!(err, ConfigError::RhoOutOfRange { .. }));
//! ```

use qb_clusterer::ClustererConfig;
use qb_obs::Recorder;
use qb_preprocessor::PreProcessorConfig;
use qb_timeseries::{Interval, Minute};
use qb_trace::Tracer;
use qb_workloads::{FaultPlan, Workload};

use crate::controller::{ControllerConfig, Strategy};
use crate::durable::DurabilityConfig;
use crate::error::ConfigError;
use crate::pipeline::{FeatureMode, Qb5000Config};

/// Shared ratio check: finite and in `(0, 1]`.
fn check_ratio(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value > 0.0 && value <= 1.0 {
        Ok(())
    } else {
        Err(ConfigError::RatioOutOfRange { field, value })
    }
}

/// Shared scale check: finite and strictly positive.
fn check_scale(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::BadScale { field, value })
    }
}

impl Qb5000Config {
    /// A validating builder starting from [`Qb5000Config::default`].
    pub fn builder() -> Qb5000ConfigBuilder {
        Qb5000ConfigBuilder { cfg: Qb5000Config::default() }
    }

    /// Checks the invariants the pipeline assumes. [`Qb5000ConfigBuilder::build`]
    /// calls this; it is public so hand-assembled configs (struct-update
    /// syntax on `Default`) can be checked too.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let rho = self.clusterer.rho;
        if !(rho.is_finite() && rho > 0.0 && rho <= 1.0) {
            return Err(ConfigError::RhoOutOfRange { value: rho });
        }
        check_ratio("clusterer.new_template_trigger", self.clusterer.new_template_trigger)?;
        if self.feature_points == 0 {
            return Err(ConfigError::ZeroCount { field: "feature_points" });
        }
        if self.feature_window <= 0 {
            return Err(ConfigError::ZeroInterval { field: "feature_window" });
        }
        if self.feature_interval.as_minutes() <= 0 {
            return Err(ConfigError::ZeroInterval { field: "feature_interval" });
        }
        if self.max_clusters == 0 {
            return Err(ConfigError::ZeroCount { field: "max_clusters" });
        }
        check_ratio("coverage_target", self.coverage_target)?;
        if self.preprocessor.ingest_shards == 0 {
            return Err(ConfigError::ZeroCount { field: "preprocessor.ingest_shards" });
        }
        if self.preprocessor.raw_cache_limit == 0 {
            return Err(ConfigError::ZeroCount { field: "preprocessor.raw_cache_limit" });
        }
        Ok(())
    }
}

/// Builder for [`Qb5000Config`]; see the [module docs](self) for the
/// validation rules.
#[derive(Debug, Clone)]
pub struct Qb5000ConfigBuilder {
    cfg: Qb5000Config,
}

impl Qb5000ConfigBuilder {
    /// Pre-Processor settings (template folding, quarantine).
    pub fn preprocessor(mut self, pre: PreProcessorConfig) -> Self {
        self.cfg.preprocessor = pre;
        self
    }

    /// Clusterer settings (ρ, metric, eviction, shift trigger).
    pub fn clusterer(mut self, clusterer: ClustererConfig) -> Self {
        self.cfg.clusterer = clusterer;
        self
    }

    /// Logical shard count for the batched ingest engine (must be ≥ 1).
    /// Routing is content-addressed, so this changes throughput, never
    /// results.
    pub fn ingest_shards(mut self, shards: usize) -> Self {
        self.cfg.preprocessor.ingest_shards = shards;
        self
    }

    /// Raw-SQL cache capacity before a generational reset (must be ≥ 1).
    /// Size it above the distinct-statement working set to keep the
    /// repeat-arrival fast path hot.
    pub fn raw_cache_limit(mut self, limit: usize) -> Self {
        self.cfg.preprocessor.raw_cache_limit = limit;
        self
    }

    /// Shortcut for the similarity threshold ρ (must end up in `(0, 1]`).
    pub fn rho(mut self, rho: f64) -> Self {
        self.cfg.clusterer.rho = rho;
        self
    }

    /// Clustering feature (arrival-rate vs. the §7.7 logical ablation).
    pub fn feature_mode(mut self, mode: FeatureMode) -> Self {
        self.cfg.feature_mode = mode;
        self
    }

    /// Sampled timestamps per clustering feature vector (must be ≥ 1).
    pub fn feature_points(mut self, points: usize) -> Self {
        self.cfg.feature_points = points;
        self
    }

    /// Feature window length in minutes (must be positive).
    pub fn feature_window(mut self, minutes: Minute) -> Self {
        self.cfg.feature_window = minutes;
        self
    }

    /// Aggregation interval around each sampled timestamp.
    pub fn feature_interval(mut self, interval: Interval) -> Self {
        self.cfg.feature_interval = interval;
        self
    }

    /// Maximum clusters the Forecaster models (must be ≥ 1).
    pub fn max_clusters(mut self, n: usize) -> Self {
        self.cfg.max_clusters = n;
        self
    }

    /// Volume-coverage stop target in `(0, 1]`.
    pub fn coverage_target(mut self, target: f64) -> Self {
        self.cfg.coverage_target = target;
        self
    }

    /// Seed for feature-timestamp sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Observability recorder handed to every pipeline stage. Defaults to
    /// [`Recorder::disabled`] (metrics cost nothing).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.cfg.recorder = recorder;
        self
    }

    /// Structured tracer (decision lineage + flight recorder) handed to
    /// every pipeline stage. Defaults to [`Tracer::disabled`] (tracing
    /// costs nothing).
    pub fn trace(mut self, tracer: Tracer) -> Self {
        self.cfg.tracer = tracer;
        self
    }

    /// Durable-state policy: persist a snapshot + WAL lineage under the
    /// policy's directory so [`crate::DurablePipeline::open`] can recover
    /// the pipeline bit-identically after a crash. Defaults to `None`
    /// (fully in-memory).
    pub fn durability(mut self, policy: DurabilityConfig) -> Self {
        self.cfg.durability = Some(policy);
        self
    }

    /// Lock-free forecast serving: every cluster update and forecast fit
    /// publishes an immutable [`crate::ForecastSnapshot`] through the
    /// service's epoch-swapped slot, so [`crate::ForecastReader`] handles
    /// query concurrently without blocking the pipeline. Defaults to `None`
    /// (no serving layer, publication costs nothing).
    pub fn serve(mut self, service: crate::ForecastService) -> Self {
        self.cfg.serve = Some(service);
        self
    }

    /// Cold-start forecasting for templates outside the trained cluster
    /// set: retrain rounds then also publish seeded per-template
    /// estimates (cluster-rate share or population prior) so readers get
    /// a typed `ColdStart` answer instead of `Missing`. Only meaningful
    /// together with [`Qb5000ConfigBuilder::serve`]; warm forecasts are
    /// byte-identical either way. Defaults to `false`.
    pub fn cold_start(mut self, on: bool) -> Self {
        self.cfg.cold_start = on;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<Qb5000Config, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl ControllerConfig {
    /// A validating builder starting from [`ControllerConfig::default`].
    pub fn builder() -> ControllerConfigBuilder {
        ControllerConfigBuilder { cfg: ControllerConfig::default() }
    }

    /// Checks the invariants the experiment driver assumes;
    /// [`ControllerConfigBuilder::build`] calls this.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_scale("db_scale", self.db_scale)?;
        check_scale("trace_scale", self.trace_scale)?;
        if self.history_days == 0 {
            return Err(ConfigError::ZeroCount { field: "history_days" });
        }
        if self.run_hours == 0 {
            return Err(ConfigError::ZeroCount { field: "run_hours" });
        }
        if self.build_period <= 0 {
            return Err(ConfigError::ZeroInterval { field: "build_period" });
        }
        if self.report_window <= 0 {
            return Err(ConfigError::ZeroInterval { field: "report_window" });
        }
        if self.forecast_horizons.is_empty() {
            return Err(ConfigError::EmptyHorizons);
        }
        for &(hours, weight) in &self.forecast_horizons {
            if hours == 0 {
                return Err(ConfigError::ZeroInterval { field: "forecast_horizons" });
            }
            if !(weight.is_finite() && weight > 0.0) {
                return Err(ConfigError::BadHorizonWeight { horizon_hours: hours, weight });
            }
        }
        Ok(())
    }
}

/// Builder for [`ControllerConfig`]; see the [module docs](self) for the
/// validation rules.
#[derive(Debug, Clone)]
pub struct ControllerConfigBuilder {
    cfg: ControllerConfig,
}

impl ControllerConfigBuilder {
    /// Which trace generator to replay.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.cfg.workload = workload;
        self
    }

    /// Index-selection strategy (AUTO / STATIC / AUTO-LOGICAL).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Row-count scale for the simulated database (finite, > 0).
    pub fn db_scale(mut self, scale: f64) -> Self {
        self.cfg.db_scale = scale;
        self
    }

    /// Warm-up history fed to QB5000 before the measured run (≥ 1 day).
    pub fn history_days(mut self, days: u32) -> Self {
        self.cfg.history_days = days;
        self
    }

    /// Measured run length in simulated hours (≥ 1).
    pub fn run_hours(mut self, hours: u32) -> Self {
        self.cfg.run_hours = hours;
        self
    }

    /// Trace volume scale (finite, > 0).
    pub fn trace_scale(mut self, scale: f64) -> Self {
        self.cfg.trace_scale = scale;
        self
    }

    /// Total indexes the strategy may build.
    pub fn index_budget(mut self, budget: usize) -> Self {
        self.cfg.index_budget = budget;
        self
    }

    /// How often AUTO builds an index, in simulated minutes (> 0).
    pub fn build_period(mut self, minutes: Minute) -> Self {
        self.cfg.build_period = minutes;
        self
    }

    /// Perf-sample bucket width in simulated minutes (> 0).
    pub fn report_window(mut self, minutes: Minute) -> Self {
        self.cfg.report_window = minutes;
        self
    }

    /// Start of the measured run, minutes since the trace epoch.
    pub fn run_start(mut self, minute: Minute) -> Self {
        self.cfg.run_start = minute;
        self
    }

    /// Experiment seed (trace generation, database population).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Deterministic fault injection for chaos runs (the default is a
    /// clean, fault-free run).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Worker threads for the train/score engine (clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads.max(1);
        self
    }

    /// Hourly prediction horizons the controller blends, as
    /// `(hours, weight)` pairs — the paper uses 1 h and 12 h with the
    /// 1-hour horizon weighted higher. Must be non-empty with finite
    /// positive weights and non-zero horizons.
    pub fn forecast_horizons(mut self, horizons: Vec<(usize, f64)>) -> Self {
        self.cfg.forecast_horizons = horizons;
        self
    }

    /// Drive ingest through the sharded batch engine, one tick per
    /// simulated minute. Results are unchanged; defaults to `false` (the
    /// sequential path is the golden-trace reference).
    pub fn batch_ingest(mut self, on: bool) -> Self {
        self.cfg.batch_ingest = on;
        self
    }

    /// Observability recorder shared by the controller loop and the
    /// pipeline it drives. Defaults to [`Recorder::disabled`].
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.cfg.recorder = recorder;
        self
    }

    /// Structured tracer shared by the controller loop and the pipeline
    /// it drives, capturing the forecast → index-build decision lineage.
    /// Defaults to [`Tracer::disabled`].
    pub fn trace(mut self, tracer: Tracer) -> Self {
        self.cfg.tracer = tracer;
        self
    }

    /// Durable-state policy for the pipeline the controller drives: every
    /// ingest and cluster update is write-ahead logged and snapshotted so
    /// a crashed experiment recovers bit-identically. Defaults to `None`
    /// (fully in-memory).
    pub fn durability(mut self, policy: DurabilityConfig) -> Self {
        self.cfg.durability = Some(policy);
        self
    }

    /// Lock-free forecast serving for the controller's pipeline: cluster
    /// updates and each build round's blended forecasts are published
    /// through the service so reader threads can query while the
    /// experiment runs. The service's horizon slots should cover the
    /// configured `forecast_horizons` (use
    /// [`crate::ForecastService::hourly`]); unmatched horizons are simply
    /// not published. Defaults to `None`.
    pub fn serve(mut self, service: crate::ForecastService) -> Self {
        self.cfg.serve = Some(service);
        self
    }

    /// Continuous self-monitoring for the run: each build round's metric
    /// deltas are retained, the config's SLO rules are evaluated with
    /// hysteresis (alert transitions land in
    /// [`crate::ExperimentResult::alert_log`] and firing alerts in
    /// `PipelineHealth::active_alerts`), and an optional live
    /// `/metrics` + `/health` + `/alerts` endpoint serves the latest
    /// state. Monitoring forces metrics on: a disabled recorder is
    /// upgraded to an enabled one for the run. Defaults to `None`.
    pub fn monitor(mut self, monitor: qb_monitor::MonitorConfig) -> Self {
        self.cfg.monitor = Some(monitor);
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<ControllerConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_pass_validation() {
        Qb5000Config::builder().build().unwrap();
        ControllerConfig::builder().build().unwrap();
        Qb5000Config::default().validate().unwrap();
        ControllerConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_sets_every_pipeline_field() {
        let rec = Recorder::new();
        let cfg = Qb5000Config::builder()
            .feature_mode(FeatureMode::Logical)
            .feature_points(100)
            .feature_window(7 * qb_timeseries::MINUTES_PER_DAY)
            .feature_interval(Interval::MINUTE)
            .max_clusters(4)
            .coverage_target(0.9)
            .seed(42)
            .rho(0.5)
            .recorder(rec.clone())
            .trace(Tracer::enabled())
            .build()
            .unwrap();
        assert_eq!(cfg.feature_mode, FeatureMode::Logical);
        assert_eq!(cfg.feature_points, 100);
        assert_eq!(cfg.max_clusters, 4);
        assert_eq!(cfg.coverage_target, 0.9);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.clusterer.rho, 0.5);
        assert!(cfg.recorder.is_enabled());
        assert!(cfg.tracer.is_enabled());
    }

    #[test]
    fn rho_out_of_range_rejected() {
        for bad in [0.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = Qb5000Config::builder().rho(bad).build().unwrap_err();
            assert!(
                matches!(err, ConfigError::RhoOutOfRange { .. }),
                "rho {bad}: {err}"
            );
        }
        // Boundary: exactly 1.0 is legal (identical features only).
        Qb5000Config::builder().rho(1.0).build().unwrap();
    }

    #[test]
    fn zero_counts_and_intervals_rejected() {
        assert_eq!(
            Qb5000Config::builder().feature_points(0).build().unwrap_err(),
            ConfigError::ZeroCount { field: "feature_points" }
        );
        assert_eq!(
            Qb5000Config::builder().feature_window(0).build().unwrap_err(),
            ConfigError::ZeroInterval { field: "feature_window" }
        );
        assert_eq!(
            Qb5000Config::builder().max_clusters(0).build().unwrap_err(),
            ConfigError::ZeroCount { field: "max_clusters" }
        );
    }

    #[test]
    fn coverage_target_must_be_a_ratio() {
        for bad in [0.0, -0.5, 1.01, f64::NAN] {
            let err = Qb5000Config::builder().coverage_target(bad).build().unwrap_err();
            assert!(matches!(err, ConfigError::RatioOutOfRange { field: "coverage_target", .. }));
        }
    }

    #[test]
    fn controller_rejects_degenerate_runs() {
        assert_eq!(
            ControllerConfig::builder().run_hours(0).build().unwrap_err(),
            ConfigError::ZeroCount { field: "run_hours" }
        );
        assert_eq!(
            ControllerConfig::builder().history_days(0).build().unwrap_err(),
            ConfigError::ZeroCount { field: "history_days" }
        );
        assert_eq!(
            ControllerConfig::builder().build_period(0).build().unwrap_err(),
            ConfigError::ZeroInterval { field: "build_period" }
        );
        assert_eq!(
            ControllerConfig::builder().report_window(-5).build().unwrap_err(),
            ConfigError::ZeroInterval { field: "report_window" }
        );
        for bad in [0.0, f64::NAN, -1.0] {
            assert!(matches!(
                ControllerConfig::builder().db_scale(bad).build().unwrap_err(),
                ConfigError::BadScale { field: "db_scale", .. }
            ));
        }
    }

    #[test]
    fn controller_rejects_bad_horizons() {
        assert_eq!(
            ControllerConfig::builder().forecast_horizons(vec![]).build().unwrap_err(),
            ConfigError::EmptyHorizons
        );
        assert_eq!(
            ControllerConfig::builder()
                .forecast_horizons(vec![(0, 1.0)])
                .build()
                .unwrap_err(),
            ConfigError::ZeroInterval { field: "forecast_horizons" }
        );
        for bad in [0.0, -0.7, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ControllerConfig::builder()
                    .forecast_horizons(vec![(1, 0.7), (12, bad)])
                    .build()
                    .unwrap_err(),
                ConfigError::BadHorizonWeight { horizon_hours: 12, .. }
            ));
        }
    }

    #[test]
    fn threads_clamp_to_one() {
        let cfg = ControllerConfig::builder().threads(0).build().unwrap();
        assert_eq!(cfg.threads, 1);
    }
}
