//! Prometheus text-exposition conformance checking.
//!
//! [`check_prometheus`] parses exposition text line by line against the
//! text-format rules a real scraper enforces: metric-name and label
//! syntax, float-parseable sample values, one `# TYPE` line per family
//! (before its first sample), and — for histogram families — cumulative
//! non-decreasing `_bucket` series ending in `le="+Inf"` whose count
//! equals `_count`, with `_sum` and `_count` present. It returns every
//! violation found (an empty list means the text is conformant), so a
//! test failure names all the broken lines at once instead of the first.
//!
//! The checker is intentionally hand-rolled over the same zero-dependency
//! constraint as the rest of the workspace — no regex, just char walks.

use std::collections::{BTreeMap, BTreeSet};

/// Parses `text` as Prometheus exposition format and returns every
/// conformance violation, each prefixed with its 1-based line number.
pub fn check_prometheus(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    // family -> declared type; insertion checked before first sample.
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    // histogram family -> (labels-minus-le -> cumulative bucket counts in order)
    let mut buckets: BTreeMap<String, BTreeMap<String, Vec<(String, f64)>>> = BTreeMap::new();
    let mut sums: BTreeSet<(String, String)> = BTreeSet::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(kind), None) => {
                    if !valid_metric_name(name) {
                        errors.push(format!("line {n}: invalid metric name in TYPE: {name}"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        errors.push(format!("line {n}: unknown metric type: {kind}"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        errors.push(format!("line {n}: duplicate TYPE line for {name}"));
                    }
                    if sampled.contains(name) {
                        errors.push(format!("line {n}: TYPE for {name} after its first sample"));
                    }
                }
                _ => errors.push(format!("line {n}: malformed TYPE line")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }

        let Some((name, labels, value)) = parse_sample(line) else {
            errors.push(format!("line {n}: malformed sample line: {line}"));
            continue;
        };
        if !valid_metric_name(&name) {
            errors.push(format!("line {n}: invalid metric name: {name}"));
        }
        let parsed: Result<f64, _> = match value.as_str() {
            "+Inf" => Ok(f64::INFINITY),
            "-Inf" => Ok(f64::NEG_INFINITY),
            "NaN" => Ok(f64::NAN),
            v => v.parse(),
        };
        let Ok(value) = parsed else {
            errors.push(format!("line {n}: unparseable sample value: {value}"));
            continue;
        };
        let labels = match labels {
            Ok(l) => l,
            Err(e) => {
                errors.push(format!("line {n}: {e}"));
                continue;
            }
        };

        // Resolve the family: histogram series sample under suffixed
        // names; everything else samples under its own name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                if types.get(base).map(String::as_str) == Some("histogram") {
                    Some((base.to_string(), *suffix))
                } else {
                    None
                }
            })
            .map_or_else(|| (name.clone(), ""), |(base, suffix)| (base, suffix));
        let (family, suffix) = family;
        if !types.contains_key(&family) {
            errors.push(format!("line {n}: sample {name} has no preceding TYPE line"));
        }
        sampled.insert(family.clone());

        let series_key = label_key(&labels, Some("le"));
        match suffix {
            "_bucket" => {
                let Some(le) = labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v.clone())
                else {
                    errors.push(format!("line {n}: histogram bucket without le label"));
                    continue;
                };
                buckets.entry(family).or_default().entry(series_key).or_default().push((le, value));
            }
            "_sum" => {
                sums.insert((family, series_key));
            }
            "_count" => {
                counts.insert((family, series_key), value);
            }
            _ => {}
        }
    }

    // Histogram shape checks, per (family, label set).
    for (family, series) in &buckets {
        for (key, entries) in series {
            let tag = if key.is_empty() {
                family.clone()
            } else {
                format!("{family}{{{key}}}")
            };
            let mut prev = f64::NEG_INFINITY;
            let mut prev_bound = f64::NEG_INFINITY;
            for (le, cum) in entries {
                let bound: f64 = match le.as_str() {
                    "+Inf" => f64::INFINITY,
                    v => v.parse().unwrap_or(f64::NAN),
                };
                // NaN bounds compare as incomparable and must be flagged.
                if bound.partial_cmp(&prev_bound) != Some(std::cmp::Ordering::Greater) {
                    errors.push(format!("{tag}: bucket bounds not strictly increasing at le={le}"));
                }
                if *cum < prev {
                    errors.push(format!("{tag}: cumulative bucket counts decrease at le={le}"));
                }
                prev = *cum;
                prev_bound = bound;
            }
            match entries.last() {
                Some((le, last)) if le == "+Inf" => {
                    match counts.get(&(family.clone(), key.clone())) {
                        Some(total) if total == last => {}
                        Some(total) => errors.push(format!(
                            "{tag}: le=\"+Inf\" bucket {last} != _count {total}"
                        )),
                        None => errors.push(format!("{tag}: histogram without _count series")),
                    }
                }
                _ => errors.push(format!("{tag}: bucket series does not end with le=\"+Inf\"")),
            }
            if !sums.contains(&(family.clone(), key.clone())) {
                errors.push(format!("{tag}: histogram without _sum series"));
            }
        }
    }
    errors
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*`
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

type Labels = Vec<(String, String)>;

/// Splits a sample line into `(name, labels, value-text)`. Labels come
/// back as `Err` when the block is malformed (unterminated string, bad
/// label name, stray characters).
fn parse_sample(line: &str) -> Option<(String, Result<Labels, String>, String)> {
    let line = line.trim_end();
    if let Some(open) = line.find('{') {
        let name = line[..open].to_string();
        let rest = &line[open + 1..];
        let (labels, after) = parse_labels(rest)?;
        let value = after.trim();
        if value.is_empty() {
            // A broken label block eats the rest of the line; report the
            // label error rather than a generic malformed-line one.
            if labels.is_err() {
                return Some((name, labels, "0".to_string()));
            }
            return None;
        }
        Some((name, labels, value.to_string()))
    } else {
        let mut parts = line.split_whitespace();
        let name = parts.next()?.to_string();
        let value = parts.next()?.to_string();
        // Timestamps (a third field) are legal; anything further is not.
        if parts.count() > 1 {
            return None;
        }
        Some((name, Ok(Vec::new()), value))
    }
}

/// Parses `k="v",...}` (the text after `{`), returning the labels and the
/// remainder after the closing brace. Returns `None` only when no closing
/// structure exists at all.
fn parse_labels(rest: &str) -> Option<(Result<Labels, String>, &str)> {
    let mut labels = Vec::new();
    let mut chars = rest.char_indices().peekable();
    loop {
        // End of block?
        match chars.peek() {
            Some(&(i, '}')) => return Some((Ok(labels), &rest[i + 1..])),
            None => return Some((Err("unterminated label block".into()), "")),
            _ => {}
        }
        // Label name up to '='.
        let start = chars.peek().map(|&(i, _)| i)?;
        let mut eq = None;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                eq = Some(i);
                break;
            }
        }
        let Some(eq) = eq else {
            return Some((Err("label without '='".into()), ""));
        };
        let name = rest[start..eq].to_string();
        if !valid_label_name(&name) {
            return Some((Err(format!("invalid label name: {name}")), ""));
        }
        // Quoted value with escapes.
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Some((Err(format!("label {name} value not quoted")), "")),
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => {
                        return Some((
                            Err(format!(
                                "bad escape in label {name}: \\{}",
                                other.map_or(String::new(), |(_, c)| c.to_string())
                            )),
                            "",
                        ))
                    }
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Some((Err(format!("unterminated value for label {name}")), ""));
        }
        labels.push((name, value));
        // Separator: ',' continues, '}' ends.
        match chars.peek() {
            Some(&(_, ',')) => {
                chars.next();
            }
            Some(&(_, '}')) => {}
            _ => return Some((Err("expected ',' or '}' after label value".into()), "")),
        }
    }
}

/// Canonical sorted `k="v"` join of the labels, excluding `skip`.
fn label_key(labels: &Labels, skip: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .filter(|(k, _)| Some(k.as_str()) != skip)
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    pairs.sort();
    pairs.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformant_text_passes() {
        let text = "\
# TYPE requests_total counter
requests_total 7
# TYPE temp gauge
temp{site=\"lab\"} 21.5
# TYPE latency_seconds histogram
latency_seconds_bucket{le=\"0.1\"} 2
latency_seconds_bucket{le=\"+Inf\"} 3
latency_seconds_sum 0.42
latency_seconds_count 3
";
        assert_eq!(check_prometheus(text), Vec::<String>::new());
    }

    #[test]
    fn missing_type_line_is_flagged() {
        let errs = check_prometheus("orphan 1\n");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("no preceding TYPE"));
    }

    #[test]
    fn histogram_shape_violations_are_flagged() {
        let text = "\
# TYPE h_seconds histogram
h_seconds_bucket{le=\"0.1\"} 5
h_seconds_bucket{le=\"+Inf\"} 3
h_seconds_count 4
";
        let errs = check_prometheus(text);
        assert!(errs.iter().any(|e| e.contains("counts decrease")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("!= _count")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("without _sum")), "{errs:?}");
    }

    #[test]
    fn bucket_series_must_end_at_inf() {
        let text = "\
# TYPE h_seconds histogram
h_seconds_bucket{le=\"0.1\"} 1
h_seconds_sum 0.1
h_seconds_count 1
";
        let errs = check_prometheus(text);
        assert!(errs.iter().any(|e| e.contains("does not end with le")), "{errs:?}");
    }

    #[test]
    fn malformed_lines_and_names_are_flagged() {
        let errs = check_prometheus("# TYPE 9bad counter\n9bad 1\nbroken{x=\"1\" 2\nnot a sample at all\n");
        assert!(errs.iter().any(|e| e.contains("invalid metric name in TYPE")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("expected ',' or '}'")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("malformed sample")), "{errs:?}");
    }

    #[test]
    fn escaped_label_values_parse() {
        let text = "# TYPE q counter\nq{sql=\"SELECT \\\"x\\\\y\\\"\\nFROM t\"} 1\n";
        assert_eq!(check_prometheus(text), Vec::<String>::new());
    }
}
