//! Exposition: Prometheus text with quantile gauges, and the
//! deterministic text dashboard.

use std::fmt::Write as _;

use qb_obs::MetricsSnapshot;

use crate::history::MetricsHistory;
use crate::rules::ActiveAlert;

/// The `/metrics` payload: the snapshot's full Prometheus exposition
/// (counters, gauges, cumulative histogram `_bucket`/`_sum`/`_count`
/// series) plus one estimated-quantile gauge family per unlabeled
/// histogram — `<family>_quantile_seconds{quantile="0.99"} …` — and an
/// `alerts_firing{severity=…}` gauge family so a scraper sees SLO state
/// without a second endpoint.
pub fn exposition_text(
    snapshot: &MetricsSnapshot,
    quantiles: &[f64],
    alerts: &[ActiveAlert],
) -> String {
    let mut out = snapshot.to_prometheus();
    for (key, hist) in &snapshot.histograms {
        // Labeled histograms would need per-series quantile labels merged
        // with `le`-style care; no pipeline stage registers one today, so
        // keep the estimator to plain families.
        if key.contains('{') || hist.count == 0 {
            continue;
        }
        let family = prom_family(key);
        let mut lines = String::new();
        for &q in quantiles {
            let Some(nanos) = hist.quantile_nanos(q) else { continue };
            let _ = writeln!(
                lines,
                "{family}_quantile_seconds{{quantile=\"{q}\"}} {}",
                nanos / 1e9
            );
        }
        if !lines.is_empty() {
            let _ = writeln!(out, "# TYPE {family}_quantile_seconds gauge");
            out.push_str(&lines);
        }
    }
    let _ = writeln!(out, "# TYPE alerts_firing gauge");
    for severity in ["info", "warning", "critical"] {
        let n = alerts.iter().filter(|a| a.severity.as_str() == severity).count();
        let _ = writeln!(out, "alerts_firing{{severity=\"{severity}\"}} {n}");
    }
    out
}

/// A deterministic operator dashboard: active alerts, counters, gauges,
/// and histogram event counts. Only round-deterministic data is rendered
/// (no wall-time durations), so two runs of the same workload produce
/// byte-identical dashboards regardless of worker-pool width.
pub fn render_dashboard(history: &MetricsHistory, alerts: &[ActiveAlert]) -> String {
    let mut out = String::new();
    let round = history.latest_round().map_or("-".to_string(), |r| r.to_string());
    let _ = writeln!(out, "== qb5000 monitor — round {round} ==");
    if alerts.is_empty() {
        let _ = writeln!(out, "alerts: none firing");
    } else {
        let _ = writeln!(out, "alerts: {} firing", alerts.len());
        for a in alerts {
            let _ = writeln!(
                out,
                "  [{}] {}  since round {}  value {:.6}",
                a.severity, a.rule, a.since_round, a.value
            );
        }
    }
    let Some(snap) = history.latest_snapshot() else {
        let _ = writeln!(out, "(no metrics observed yet)");
        return out;
    };
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (k, v) in &snap.counters {
            let window = history.capacity();
            let _ = writeln!(
                out,
                "  {k:<42} {v:>12}  (+{} over last {} rounds)",
                history.counter_increase(k, window),
                history.len().min(window),
            );
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (k, v) in &snap.gauges {
            let _ = writeln!(out, "  {k:<42} {v:>12.6}");
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histogram events:");
        for (k, h) in &snap.histograms {
            let _ = writeln!(out, "  {k:<42} {:>12}", h.count);
        }
    }
    out
}

/// Registry key → Prometheus family name (same sanitization as
/// `MetricsSnapshot::to_prometheus`).
fn prom_family(key: &str) -> String {
    let mut out: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promcheck::check_prometheus;
    use crate::rules::Severity;
    use qb_obs::Recorder;
    use std::time::Duration;

    fn alert(rule: &str, severity: Severity) -> ActiveAlert {
        ActiveAlert {
            rule: rule.into(),
            severity,
            since_round: 3,
            fired_round: 4,
            value: 2.5,
            evidence: vec![],
            fired_event: None,
        }
    }

    #[test]
    fn exposition_includes_quantiles_and_alert_gauges_and_conforms() {
        let rec = Recorder::new();
        rec.counter("pipeline.rounds").add(5);
        rec.gauge("forecast.mse.h0").set(1.25);
        let h = rec.histogram("serve.publish");
        for micros in [10, 20, 500] {
            h.record(Duration::from_micros(micros));
        }
        let text = exposition_text(
            &rec.snapshot(),
            &[0.5, 0.99],
            &[alert("mse-band", Severity::Critical)],
        );
        assert!(text.contains("# TYPE serve_publish_quantile_seconds gauge"), "{text}");
        assert!(text.contains("serve_publish_quantile_seconds{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("serve_publish_quantile_seconds{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("alerts_firing{severity=\"critical\"} 1"), "{text}");
        assert!(text.contains("alerts_firing{severity=\"warning\"} 0"), "{text}");
        assert_eq!(check_prometheus(&text), Vec::<String>::new());
    }

    #[test]
    fn dashboard_is_deterministic_and_lists_alerts() {
        let rec = Recorder::new();
        rec.counter("x").add(2);
        rec.gauge("g").set(0.5);
        let mut h1 = MetricsHistory::new(4);
        h1.observe(1, &rec.snapshot());
        let mut h2 = h1.clone();
        let alerts = vec![alert("stalled", Severity::Warning)];
        let a = render_dashboard(&h1, &alerts);
        let b = render_dashboard(&h2, &alerts);
        assert_eq!(a, b);
        assert!(a.contains("round 1"));
        assert!(a.contains("[warning] stalled"));
        assert!(a.contains("x"));
        // Quiet second round: same totals, zero window increments shown.
        h2.observe(2, &rec.snapshot());
        let c = render_dashboard(&h2, &[]);
        assert!(c.contains("alerts: none firing"));
    }
}
