//! The declarative SLO/alert rules engine.
//!
//! An [`AlertRule`] names a [`Condition`] over the metrics history plus
//! hysteresis: the condition must hold for [`AlertRule::for_rounds`]
//! consecutive rounds before the alert fires, and stay clean for
//! [`AlertRule::clear_rounds`] consecutive rounds before it resolves —
//! so a single noisy round neither pages nor un-pages anyone.
//!
//! [`AlertEngine::evaluate`] runs once per controller round against the
//! [`MetricsHistory`] ring. Evaluation is deterministic: rules are walked
//! in declaration order, every condition folds deterministic round
//! deltas, and each transition appends one line to a byte-stable log
//! ([`AlertEngine::transition_log`]) with float observations rendered as
//! exact bit patterns — the invariant the simulation harness pins across
//! worker-pool widths.
//!
//! Transitions are also causally linked into the flight recorder: firing
//! records an [`EventKind::AlertFired`] event whose parents are the
//! evidence events of the violating round (so `TraceView::explain`
//! resolves an alert back to the forecasts that tripped it), and
//! resolution parents an [`EventKind::AlertResolved`] on the firing
//! event.

use std::fmt;

use qb_trace::{EventDraft, EventId, EventKind, Tracer};

use crate::history::MetricsHistory;

/// How loudly a violated rule should page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth a dashboard row, not a page.
    Info,
    /// Degraded but serving: investigate during business hours.
    Warning,
    /// SLO violation in progress: page now.
    Critical,
}

impl Severity {
    /// Stable lowercase name (exposition + trace payloads).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A predicate over the metrics history, evaluated once per round.
///
/// Every variant reads the newest `window` rounds of the ring. Missing
/// metrics evaluate as *clean* — except [`Condition::Absent`], whose whole
/// point is to notice silence (it additionally waits until the ring has
/// retained a full window, so a cold start is not mistaken for a stall).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Mean gauge level over the window exceeds `above` (threshold rule;
    /// with a `forecast.mse.h*` gauge this is the forecast-quality band).
    GaugeAbove { gauge: String, above: f64, window: usize },
    /// Mean gauge level over the window sits below `below`.
    GaugeBelow { gauge: String, below: f64, window: usize },
    /// Gauge moved by more than `by` (absolute) across the window
    /// (rate-of-change rule).
    ChangeAbove { gauge: String, by: f64, window: usize },
    /// Counter increments per round over the window exceed `per_round`.
    RateAbove { counter: String, per_round: f64, window: usize },
    /// Counter saw no increment for a full retained window (absence
    /// rule — e.g. no rounds, no ingest, no publications).
    Absent { counter: String, window: usize },
    /// Increments of `numerator` exceed `above` × increments of
    /// `denominator` over the window (spike-ratio rule — e.g.
    /// quarantined vs ingested statements). Clean while the denominator
    /// saw no increments.
    RatioAbove { numerator: String, denominator: String, above: f64, window: usize },
    /// The `q`-quantile of the histogram's merged window increments
    /// exceeds `budget_nanos` (latency-budget rule). Note: observed
    /// durations are wall time, so this condition is *not* deterministic
    /// across machines — keep it out of bit-identity harnesses.
    QuantileAbove { histogram: String, q: f64, budget_nanos: f64, window: usize },
}

impl Condition {
    /// Evaluates against the history: `(violated, observed value)`.
    /// The observed value is what the alert reports (gauge mean, rate,
    /// ratio, quantile, …) and lands in the trace payload bit-for-bit.
    pub fn probe(&self, history: &MetricsHistory) -> (bool, f64) {
        match self {
            Condition::GaugeAbove { gauge, above, window } => {
                match history.gauge_mean(gauge, *window) {
                    Some(mean) => (mean > *above, mean),
                    None => (false, 0.0),
                }
            }
            Condition::GaugeBelow { gauge, below, window } => {
                match history.gauge_mean(gauge, *window) {
                    Some(mean) => (mean < *below, mean),
                    None => (false, 0.0),
                }
            }
            Condition::ChangeAbove { gauge, by, window } => {
                match history.gauge_change(gauge, *window) {
                    Some(change) => (change.abs() > *by, change),
                    None => (false, 0.0),
                }
            }
            Condition::RateAbove { counter, per_round, window } => {
                match history.counter_rate(counter, *window) {
                    Some(rate) => (rate > *per_round, rate),
                    None => (false, 0.0),
                }
            }
            Condition::Absent { counter, window } => {
                if history.len() < *window {
                    return (false, 0.0);
                }
                let inc = history.counter_increase(counter, *window);
                (inc == 0, inc as f64)
            }
            Condition::RatioAbove { numerator, denominator, above, window } => {
                let den = history.counter_increase(denominator, *window);
                if den == 0 {
                    return (false, 0.0);
                }
                let ratio = history.counter_increase(numerator, *window) as f64 / den as f64;
                (ratio > *above, ratio)
            }
            Condition::QuantileAbove { histogram, q, budget_nanos, window } => {
                match history.histogram_window(histogram, *window).and_then(|h| h.quantile_nanos(*q))
                {
                    Some(v) => (v > *budget_nanos, v),
                    None => (false, 0.0),
                }
            }
        }
    }

    /// The metric name the condition watches (trace payloads, dashboard).
    pub fn metric(&self) -> &str {
        match self {
            Condition::GaugeAbove { gauge, .. }
            | Condition::GaugeBelow { gauge, .. }
            | Condition::ChangeAbove { gauge, .. } => gauge,
            Condition::RateAbove { counter, .. } | Condition::Absent { counter, .. } => counter,
            Condition::RatioAbove { numerator, .. } => numerator,
            Condition::QuantileAbove { histogram, .. } => histogram,
        }
    }
}

/// One declarative SLO: a named, severity-tagged condition with
/// hysteresis windows.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (exposition label, trace payload, log lines).
    pub name: String,
    pub severity: Severity,
    pub condition: Condition,
    /// Consecutive violating rounds before the alert fires (min 1).
    pub for_rounds: usize,
    /// Consecutive clean rounds before a firing alert resolves (min 1).
    pub clear_rounds: usize,
}

impl AlertRule {
    /// A rule firing after one violating round and clearing after one
    /// clean round — tighten with [`AlertRule::for_rounds`] /
    /// [`AlertRule::clear_rounds`] via struct update.
    pub fn new(name: &str, severity: Severity, condition: Condition) -> Self {
        Self { name: name.to_string(), severity, condition, for_rounds: 1, clear_rounds: 1 }
    }

    /// Sets the firing hysteresis window.
    pub fn for_rounds(mut self, rounds: usize) -> Self {
        self.for_rounds = rounds.max(1);
        self
    }

    /// Sets the clearing hysteresis window.
    pub fn clear_rounds(mut self, rounds: usize) -> Self {
        self.clear_rounds = rounds.max(1);
        self
    }
}

/// A currently-firing alert, as surfaced through `PipelineHealth` and the
/// `/alerts` endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveAlert {
    /// The violated rule's name.
    pub rule: String,
    pub severity: Severity,
    /// First round of the violating streak that fired the alert.
    pub since_round: u64,
    /// Round the alert transitioned to firing.
    pub fired_round: u64,
    /// Observed value at fire time (gauge mean, rate, ratio, …).
    pub value: f64,
    /// Trace events of the evidence window at fire time — feed any of
    /// them (or `fired_event`) to `TraceView::explain` for lineage.
    pub evidence: Vec<EventId>,
    /// The [`EventKind::AlertFired`] trace event, when tracing is on.
    pub fired_event: Option<EventId>,
}

/// One firing/resolved transition, in evaluation order.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertChange {
    Fired(ActiveAlert),
    Resolved {
        rule: String,
        severity: Severity,
        /// Round the resolution happened.
        at_round: u64,
        /// Rounds the alert spent firing (fire round inclusive).
        rounds_active: u64,
    },
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    violating_streak: usize,
    clean_streak: usize,
    firing: Option<ActiveAlert>,
}

/// Evaluates a fixed rule set once per round, tracking hysteresis and
/// emitting typed transitions, trace events, and a byte-stable log.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    log: Vec<String>,
}

impl AlertEngine {
    /// An engine over `rules`, all quiet.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = vec![RuleState::default(); rules.len()];
        Self { rules, states, log: Vec::new() }
    }

    /// The configured rules, in evaluation order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluates every rule against the history for `round`. `evidence`
    /// carries the round's trace events (forecast blends, publications);
    /// alerts that fire this round adopt them as causal parents.
    pub fn evaluate(
        &mut self,
        round: u64,
        history: &MetricsHistory,
        evidence: &[EventId],
        tracer: &Tracer,
    ) -> Vec<AlertChange> {
        let mut changes = Vec::new();
        for (rule, state) in self.rules.iter().zip(&mut self.states) {
            let (violated, value) = rule.condition.probe(history);
            if violated {
                state.violating_streak += 1;
                state.clean_streak = 0;
            } else {
                state.clean_streak += 1;
                state.violating_streak = 0;
            }
            if state.firing.is_none() && state.violating_streak >= rule.for_rounds {
                let since_round = round + 1 - rule.for_rounds as u64;
                let fired_event = record_fired(tracer, rule, round, since_round, value, evidence);
                let alert = ActiveAlert {
                    rule: rule.name.clone(),
                    severity: rule.severity,
                    since_round,
                    fired_round: round,
                    value,
                    evidence: evidence.to_vec(),
                    fired_event,
                };
                self.log.push(format!(
                    "round={round} fired rule={} severity={} metric={} value_bits={:#018x} since={since_round}",
                    rule.name,
                    rule.severity,
                    rule.condition.metric(),
                    value.to_bits(),
                ));
                state.firing = Some(alert.clone());
                changes.push(AlertChange::Fired(alert));
            } else if state.clean_streak >= rule.clear_rounds {
                if let Some(alert) = state.firing.take() {
                    let rounds_active = round + 1 - alert.fired_round;
                    if tracer.is_enabled() {
                        tracer.record(
                            EventDraft::new(EventKind::AlertResolved)
                                .text("rule", &rule.name)
                                .text("severity", rule.severity.as_str())
                                .uint("round", round)
                                .uint("rounds_active", rounds_active)
                                .parent_opt(alert.fired_event),
                        );
                    }
                    self.log.push(format!(
                        "round={round} resolved rule={} severity={} active_rounds={rounds_active}",
                        rule.name, rule.severity,
                    ));
                    changes.push(AlertChange::Resolved {
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        at_round: round,
                        rounds_active,
                    });
                }
            }
        }
        changes
    }

    /// Currently-firing alerts, in rule declaration order.
    pub fn active(&self) -> Vec<ActiveAlert> {
        self.states.iter().filter_map(|s| s.firing.clone()).collect()
    }

    /// Every firing/resolved transition so far, one byte-stable line per
    /// transition (float observations as exact bit patterns). Two runs of
    /// the same deterministic workload must produce identical logs
    /// regardless of worker-pool width.
    pub fn transition_log(&self) -> &[String] {
        &self.log
    }

    /// The transition log as one newline-joined string.
    pub fn transition_stream(&self) -> String {
        let mut out = String::new();
        for line in &self.log {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Records the [`EventKind::AlertFired`] event: first evidence id as the
/// causal parent, the rest as references (the fan-in shape the blend and
/// publication events use).
fn record_fired(
    tracer: &Tracer,
    rule: &AlertRule,
    round: u64,
    since_round: u64,
    value: f64,
    evidence: &[EventId],
) -> Option<EventId> {
    if !tracer.is_enabled() {
        return None;
    }
    let mut draft = EventDraft::new(EventKind::AlertFired)
        .text("rule", &rule.name)
        .text("severity", rule.severity.as_str())
        .text("metric", rule.condition.metric())
        .float("value", value)
        .uint("round", round)
        .uint("since_round", since_round);
    let mut ids = evidence.iter();
    if let Some(&first) = ids.next() {
        draft = draft.parent(first);
    }
    for &id in ids {
        draft = draft.reference(id);
    }
    tracer.record(draft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_obs::Recorder;

    fn observe(h: &mut MetricsHistory, round: u64, rec: &Recorder) {
        h.observe(round, &rec.snapshot());
    }

    #[test]
    fn threshold_rule_fires_and_resolves_with_hysteresis() {
        let rec = Recorder::new();
        let g = rec.gauge("mse");
        let mut h = MetricsHistory::new(16);
        let mut engine = AlertEngine::new(vec![AlertRule::new(
            "mse-band",
            Severity::Critical,
            Condition::GaugeAbove { gauge: "mse".into(), above: 1.0, window: 1 },
        )
        .for_rounds(2)
        .clear_rounds(2)]);
        let tracer = Tracer::disabled();

        // Round 1: first violation — hysteresis holds fire.
        g.set(5.0);
        observe(&mut h, 1, &rec);
        assert!(engine.evaluate(1, &h, &[], &tracer).is_empty());
        assert!(engine.active().is_empty());

        // Round 2: second consecutive violation — fires, since=1.
        observe(&mut h, 2, &rec);
        let changes = engine.evaluate(2, &h, &[], &tracer);
        assert_eq!(changes.len(), 1);
        let AlertChange::Fired(alert) = &changes[0] else { panic!("expected fire") };
        assert_eq!((alert.since_round, alert.fired_round), (1, 2));
        assert_eq!(alert.value, 5.0);
        assert_eq!(engine.active().len(), 1);

        // Rounds 3–4: one clean round is not enough to resolve.
        g.set(0.1);
        observe(&mut h, 3, &rec);
        assert!(engine.evaluate(3, &h, &[], &tracer).is_empty());
        assert_eq!(engine.active().len(), 1);
        observe(&mut h, 4, &rec);
        let changes = engine.evaluate(4, &h, &[], &tracer);
        assert!(matches!(&changes[0], AlertChange::Resolved { rounds_active: 3, .. }));
        assert!(engine.active().is_empty());

        // The byte-stable log captured both transitions with value bits.
        let log = engine.transition_log();
        assert_eq!(log.len(), 2);
        assert!(log[0].contains("fired rule=mse-band"));
        assert!(log[0].contains(&format!("value_bits={:#018x}", 5.0f64.to_bits())));
        assert!(log[1].contains("resolved rule=mse-band"));
    }

    #[test]
    fn absence_rule_waits_for_a_full_window() {
        let rec = Recorder::new();
        let c = rec.counter("rounds");
        c.inc(); // registered, but will go quiet
        let mut h = MetricsHistory::new(8);
        let mut engine = AlertEngine::new(vec![AlertRule::new(
            "stalled",
            Severity::Warning,
            Condition::Absent { counter: "rounds".into(), window: 3 },
        )]);
        let tracer = Tracer::disabled();
        observe(&mut h, 1, &rec); // carries the initial increment
        assert!(engine.evaluate(1, &h, &[], &tracer).is_empty(), "window not yet full");
        observe(&mut h, 2, &rec);
        assert!(engine.evaluate(2, &h, &[], &tracer).is_empty());
        observe(&mut h, 3, &rec);
        // Window full but round 1's increment is inside it — still clean.
        assert!(engine.evaluate(3, &h, &[], &tracer).is_empty());
        observe(&mut h, 4, &rec);
        let changes = engine.evaluate(4, &h, &[], &tracer);
        assert!(matches!(&changes[0], AlertChange::Fired(a) if a.rule == "stalled"));
        // Activity resumes: resolves after one clean round.
        c.inc();
        observe(&mut h, 5, &rec);
        assert!(matches!(&engine.evaluate(5, &h, &[], &tracer)[0], AlertChange::Resolved { .. }));
    }

    #[test]
    fn ratio_rule_spikes_on_quarantine_share() {
        let rec = Recorder::new();
        let bad = rec.counter("quarantined");
        let all = rec.counter("ingested");
        let mut h = MetricsHistory::new(8);
        let mut engine = AlertEngine::new(vec![AlertRule::new(
            "quarantine-spike",
            Severity::Warning,
            Condition::RatioAbove {
                numerator: "quarantined".into(),
                denominator: "ingested".into(),
                above: 0.5,
                window: 2,
            },
        )]);
        let tracer = Tracer::disabled();
        all.add(100);
        observe(&mut h, 1, &rec);
        assert!(engine.evaluate(1, &h, &[], &tracer).is_empty());
        bad.add(80);
        all.add(20);
        observe(&mut h, 2, &rec);
        let changes = engine.evaluate(2, &h, &[], &tracer);
        let AlertChange::Fired(alert) = &changes[0] else { panic!("expected fire") };
        assert_eq!(alert.value, 80.0 / 120.0);
    }

    #[test]
    fn fired_alert_links_evidence_into_the_trace() {
        let rec = Recorder::new();
        let g = rec.gauge("mse");
        let tracer = Tracer::enabled();
        tracer.begin_round(0);
        let blend = tracer
            .record(EventDraft::new(EventKind::ForecastBlended).uint("clusters", 2))
            .expect("enabled tracer records");
        let publish = tracer
            .record(EventDraft::new(EventKind::SnapshotPublished).uint("epoch", 1))
            .expect("enabled tracer records");
        let mut h = MetricsHistory::new(4);
        let mut engine = AlertEngine::new(vec![AlertRule::new(
            "mse-band",
            Severity::Critical,
            Condition::GaugeAbove { gauge: "mse".into(), above: 1.0, window: 1 },
        )]);
        g.set(9.0);
        h.observe(1, &rec.snapshot());
        let changes = engine.evaluate(1, &h, &[blend, publish], &tracer);
        let AlertChange::Fired(alert) = &changes[0] else { panic!("expected fire") };
        assert_eq!(alert.evidence, vec![blend, publish]);
        let fired = alert.fired_event.expect("traced");
        let view = tracer.view();
        let lineage = view.explain(fired);
        assert!(lineage.contains("ForecastBlended"), "{lineage}");
        // Resolution parents back on the firing event.
        g.set(0.0);
        h.observe(2, &rec.snapshot());
        engine.evaluate(2, &h, &[], &tracer);
        let view = tracer.view();
        let resolved = view.latest(EventKind::AlertResolved).expect("resolution traced");
        assert_eq!(resolved.parent, Some(fired));
        assert!(view.explain(resolved.id).contains("AlertFired"));
    }
}
