//! The live scrape endpoint: a hand-rolled, blocking HTTP/1.1 server on
//! `std::net::TcpListener`.
//!
//! One thread accepts connections and answers `GET /metrics`,
//! `GET /health`, `GET /alerts`, and `GET /dashboard` from the most
//! recently published [`MonitorState`]. Publication reuses the qb-serve
//! epoch-pin swap: the monitor publishes an immutable state per round and
//! the serving thread pins whichever state is current for exactly the
//! duration of one response — a scrape can never observe a half-written
//! snapshot, and a long slow scrape never blocks the pipeline's next
//! publication.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use qb_serve::{ReadHandle, Swap, Versioned};

/// One immutable, epoch-numbered publication of everything the endpoint
/// serves. Built once per controller round by the monitor.
#[derive(Debug, Clone, Default)]
pub struct MonitorState {
    /// Publication sequence number (0 = nothing observed yet).
    pub epoch: u64,
    /// Latest observed round.
    pub round: u64,
    /// `/metrics` body (Prometheus text exposition).
    pub metrics: String,
    /// `/health` body (JSON).
    pub health: String,
    /// `/alerts` body (JSON).
    pub alerts: String,
    /// `/dashboard` body (deterministic text dashboard).
    pub dashboard: String,
}

impl Versioned for MonitorState {
    fn version(&self) -> u64 {
        self.epoch
    }
}

/// The blocking scrape server. Dropping it shuts the serving thread down.
#[derive(Debug)]
pub struct MonitorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MonitorServer {
    /// Binds `127.0.0.1:port` (0 picks an ephemeral port) and starts the
    /// serving thread over `state`.
    pub fn start(port: u16, state: Arc<Swap<MonitorState>>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_shutdown = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("qb-monitor-http".into())
            .spawn(move || serve(listener, state, thread_shutdown))?;
        Ok(Self { addr, shutdown, handle: Some(handle) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and joins it.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, state: Arc<Swap<MonitorState>>, shutdown: Arc<AtomicBool>) {
    let reader = ReadHandle::new(state);
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = respond(&mut stream, &reader);
    }
}

/// Reads the request head (enough of it for the request line) and writes
/// one response. Connection: close — scrapers reconnect per scrape.
fn respond(stream: &mut TcpStream, reader: &ReadHandle<MonitorState>) -> std::io::Result<()> {
    let mut buf = [0u8; 2048];
    let mut read = 0;
    // Read until the header terminator or the buffer fills; the request
    // line is all that matters.
    while read < buf.len() {
        let n = stream.read(&mut buf[read..])?;
        if n == 0 {
            break;
        }
        read += n;
        if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..read]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return write_response(stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    // Pin the current state for exactly one response.
    let (status, content_type, body) = reader.with(|state| match path {
        "/metrics" => (200, "text/plain; version=0.0.4; charset=utf-8", state.metrics.clone()),
        "/health" => (200, "application/json", state.health.clone()),
        "/alerts" => (200, "application/json", state.alerts.clone()),
        "/dashboard" => (200, "text/plain; charset=utf-8", state.dashboard.clone()),
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
    });
    write_response(stream, status, content_type, &body)
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_type = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).expect("header");
            if line == "\r\n" || line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("Content-Type: ") {
                content_type = v.trim().to_string();
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).expect("body");
        (status, content_type, body)
    }

    #[test]
    fn serves_pinned_state_and_404s_unknown_paths() {
        let swap = Arc::new(Swap::new(Arc::new(MonitorState {
            epoch: 1,
            round: 7,
            metrics: "# TYPE x counter\nx 1\n".into(),
            health: "{\"status\":\"ok\"}".into(),
            alerts: "[]".into(),
            dashboard: "== dash ==\n".into(),
        })));
        let mut server = MonitorServer::start(0, Arc::clone(&swap)).expect("bind");
        let addr = server.addr();

        let (status, ct, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(ct.starts_with("text/plain"));
        assert_eq!(body, "# TYPE x counter\nx 1\n");
        assert_eq!(get(addr, "/health"), (200, "application/json".into(), "{\"status\":\"ok\"}".into()));
        assert_eq!(get(addr, "/alerts").2, "[]");
        assert_eq!(get(addr, "/dashboard").0, 200);
        assert_eq!(get(addr, "/nope").0, 404);

        // A publication between scrapes is visible to the next scrape.
        swap.publish(Arc::new(MonitorState {
            epoch: 2,
            round: 8,
            metrics: "# TYPE x counter\nx 2\n".into(),
            ..MonitorState::default()
        }));
        assert_eq!(get(addr, "/metrics").2, "# TYPE x counter\nx 2\n");

        server.shutdown();
        // After shutdown the port stops answering.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
