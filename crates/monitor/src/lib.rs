//! Continuous self-monitoring for the forecasting pipeline: metrics
//! time-series retention, a deterministic SLO/alert engine, and a live
//! scrape endpoint.
//!
//! A self-driving DBMS cannot act on forecasts it cannot trust, so the
//! pipeline watches itself. Once per controller round the [`Monitor`]
//! ingests the pipeline's [`qb_obs::MetricsSnapshot`]:
//!
//! 1. **History** ([`MetricsHistory`]): the snapshot is diffed against
//!    the previous round and the per-round delta retained in a bounded
//!    ring keyed by round number — so retention is measured in rounds,
//!    not wall time, and is identical at any worker-pool width.
//! 2. **Rules** ([`AlertEngine`]): declarative [`AlertRule`]s (quality
//!    bands over `forecast.mse.h*`, degradation dwell, quarantine-share
//!    spikes, absence watchdogs, latency budgets) are evaluated against
//!    the history with hysteresis. Transitions are typed
//!    ([`AlertChange`]), byte-stable-logged, and causally linked into
//!    the qb-trace flight recorder so `TraceView::explain` resolves an
//!    alert back to the forecasts that tripped it.
//! 3. **Exposition** ([`exposition_text`], [`render_dashboard`],
//!    [`MonitorServer`]): each round publishes one immutable
//!    [`MonitorState`] through the qb-serve epoch-pin swap; a blocking
//!    HTTP thread serves `/metrics` (Prometheus text with estimated
//!    quantile gauges), `/health`, `/alerts`, and `/dashboard` from the
//!    pinned state — scrapes are tear-free and never block the pipeline.
//!
//! Everything except wall-time latency observations is deterministic:
//! two runs of the same workload produce bit-identical alert transition
//! streams regardless of `QB_THREADS`, which the simulation harness
//! enforces as invariant 9.

pub mod expose;
pub mod history;
pub mod http;
pub mod promcheck;
pub mod rules;

use std::net::SocketAddr;
use std::sync::Arc;

use qb_obs::MetricsSnapshot;
use qb_serve::Swap;
use qb_trace::{EventId, Tracer};

pub use expose::{exposition_text, render_dashboard};
pub use history::{MetricsHistory, RoundDelta};
pub use http::{MonitorServer, MonitorState};
pub use promcheck::check_prometheus;
pub use rules::{ActiveAlert, AlertChange, AlertEngine, AlertRule, Condition, Severity};

/// Configuration for a [`Monitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Rounds of per-round metric deltas retained (min 1).
    pub history_rounds: usize,
    /// SLO rules, evaluated in declaration order each round.
    pub rules: Vec<AlertRule>,
    /// Quantiles estimated per histogram in `/metrics` exposition.
    pub quantiles: Vec<f64>,
    /// `Some(port)` serves the scrape endpoint on `127.0.0.1:port`
    /// (0 picks an ephemeral port); `None` disables HTTP entirely.
    pub http_port: Option<u16>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            history_rounds: 256,
            rules: Vec::new(),
            quantiles: vec![0.5, 0.95, 0.99],
            http_port: None,
        }
    }
}

impl MonitorConfig {
    /// The default config plus the stock deterministic SLO rule set for a
    /// pipeline forecasting `horizons` horizons:
    ///
    /// - `forecast-quality-h<i>` (critical): rolling mean of the
    ///   log-space MSE gauge `forecast.mse.h<i>` above `mse_band` for 2
    ///   consecutive rounds (4-round window), clearing after 2 clean
    ///   rounds.
    /// - `degradation-dwell-h<i>` (warning): the ladder gauge
    ///   `forecast.degradation.h<i>` sits above 0.5 (i.e. not serving
    ///   full forecasts) for 3 consecutive rounds.
    /// - `quarantine-spike` (warning): quarantined statements exceed 25%
    ///   of ingested statements over a 4-round window.
    /// - `ingest-stalled` (info): no `preprocessor.ingested_statements`
    ///   increment for 6 consecutive retained rounds.
    ///
    /// Every stock rule folds only deterministic signals (gauges and
    /// counters), so the alert stream stays bit-identical across
    /// worker-pool widths. Wall-time latency budgets are opt-in via
    /// [`MonitorConfig::with_publish_budget`].
    pub fn with_default_slos(horizons: usize, mse_band: f64) -> Self {
        let mut rules = Vec::new();
        for i in 0..horizons {
            rules.push(
                AlertRule::new(
                    &format!("forecast-quality-h{i}"),
                    Severity::Critical,
                    Condition::GaugeAbove {
                        gauge: format!("forecast.mse.h{i}"),
                        above: mse_band,
                        window: 4,
                    },
                )
                .for_rounds(2)
                .clear_rounds(2),
            );
        }
        for i in 0..horizons {
            rules.push(
                AlertRule::new(
                    &format!("degradation-dwell-h{i}"),
                    Severity::Warning,
                    Condition::GaugeAbove {
                        gauge: format!("forecast.degradation.h{i}"),
                        above: 0.5,
                        window: 1,
                    },
                )
                .for_rounds(3)
                .clear_rounds(1),
            );
        }
        rules.push(
            AlertRule::new(
                "quarantine-spike",
                Severity::Warning,
                Condition::RatioAbove {
                    numerator: "preprocessor.quarantined_statements".into(),
                    denominator: "preprocessor.ingested_statements".into(),
                    above: 0.25,
                    window: 4,
                },
            )
            .clear_rounds(2),
        );
        rules.push(AlertRule::new(
            "ingest-stalled",
            Severity::Info,
            Condition::Absent { counter: "preprocessor.ingested_statements".into(), window: 6 },
        ));
        Self { rules, ..Self::default() }
    }

    /// Adds a `serve.publish` p99 latency-budget rule. Wall-time based,
    /// so *not* deterministic — keep it out of bit-identity harnesses.
    pub fn with_publish_budget(mut self, budget_nanos: f64) -> Self {
        self.rules.push(
            AlertRule::new(
                "publish-latency-budget",
                Severity::Warning,
                Condition::QuantileAbove {
                    histogram: "serve.publish".into(),
                    q: 0.99,
                    budget_nanos,
                    window: 8,
                },
            )
            .for_rounds(2)
            .clear_rounds(2),
        );
        self
    }

    /// Replaces the rule set.
    pub fn rules(mut self, rules: Vec<AlertRule>) -> Self {
        self.rules = rules;
        self
    }

    /// Sets the retention window in rounds.
    pub fn history_rounds(mut self, rounds: usize) -> Self {
        self.history_rounds = rounds.max(1);
        self
    }

    /// Enables the HTTP scrape endpoint on `127.0.0.1:port`.
    pub fn http_port(mut self, port: u16) -> Self {
        self.http_port = Some(port);
        self
    }
}

/// The per-round orchestrator tying the layers together: observe the
/// snapshot into history, evaluate the rules, publish a fresh
/// [`MonitorState`] for the scrape endpoint.
#[derive(Debug)]
pub struct Monitor {
    history: MetricsHistory,
    engine: AlertEngine,
    quantiles: Vec<f64>,
    state: Arc<Swap<MonitorState>>,
    server: Option<MonitorServer>,
    epoch: u64,
}

impl Monitor {
    /// Builds the monitor and, when `config.http_port` is set, binds the
    /// scrape endpoint (the only fallible step).
    pub fn new(config: MonitorConfig) -> std::io::Result<Self> {
        let state = Arc::new(Swap::new(Arc::new(MonitorState::default())));
        let server = match config.http_port {
            Some(port) => Some(MonitorServer::start(port, Arc::clone(&state))?),
            None => None,
        };
        Ok(Self {
            history: MetricsHistory::new(config.history_rounds),
            engine: AlertEngine::new(config.rules),
            quantiles: config.quantiles,
            state,
            server,
            epoch: 0,
        })
    }

    /// One monitoring round: retains the snapshot's delta, evaluates
    /// every rule, publishes the resulting state, and returns the
    /// round's alert transitions. `evidence` carries the round's trace
    /// events (forecast blends, publications); alerts that fire this
    /// round adopt them as causal parents.
    pub fn observe_round(
        &mut self,
        round: u64,
        snapshot: &MetricsSnapshot,
        evidence: &[EventId],
        tracer: &Tracer,
    ) -> Vec<AlertChange> {
        self.history.observe(round, snapshot);
        let changes = self.engine.evaluate(round, &self.history, evidence, tracer);
        let alerts = self.engine.active();
        self.epoch += 1;
        self.state.publish(Arc::new(MonitorState {
            epoch: self.epoch,
            round,
            metrics: exposition_text(snapshot, &self.quantiles, &alerts),
            health: health_json(round, self.epoch, &alerts),
            alerts: alerts_json(&alerts),
            dashboard: render_dashboard(&self.history, &alerts),
        }));
        changes
    }

    /// Currently-firing alerts, in rule declaration order.
    pub fn active_alerts(&self) -> Vec<ActiveAlert> {
        self.engine.active()
    }

    /// The byte-stable alert transition log (see
    /// [`AlertEngine::transition_log`]).
    pub fn transition_log(&self) -> &[String] {
        self.engine.transition_log()
    }

    /// The transition log as one newline-joined string.
    pub fn transition_stream(&self) -> String {
        self.engine.transition_stream()
    }

    /// The retained metrics history.
    pub fn history(&self) -> &MetricsHistory {
        &self.history
    }

    /// The deterministic dashboard for the latest observed round.
    pub fn render_dashboard(&self) -> String {
        render_dashboard(&self.history, &self.engine.active())
    }

    /// The scrape endpoint's bound address, when HTTP is enabled.
    pub fn endpoint(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// The most recently published state (what a scrape would see).
    pub fn state(&self) -> Arc<MonitorState> {
        self.state.load()
    }
}

/// `/health` body: overall status is the loudest firing severity.
fn health_json(round: u64, epoch: u64, alerts: &[ActiveAlert]) -> String {
    let status = match alerts.iter().map(|a| a.severity).max() {
        Some(Severity::Critical) => "critical",
        Some(Severity::Warning) => "degraded",
        Some(Severity::Info) | None => "ok",
    };
    format!(
        "{{\"status\":\"{status}\",\"round\":{round},\"epoch\":{epoch},\"alerts_firing\":{}}}",
        alerts.len()
    )
}

/// `/alerts` body: the firing set, rule order.
fn alerts_json(alerts: &[ActiveAlert]) -> String {
    let mut out = String::from("[");
    for (i, a) in alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"since_round\":{},\"fired_round\":{},\
             \"value\":{},\"evidence\":[{}]}}",
            a.rule,
            a.severity,
            a.since_round,
            a.fired_round,
            json_f64(a.value),
            a.evidence.iter().map(|e| e.0.to_string()).collect::<Vec<_>>().join(","),
        ));
    }
    out.push(']');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_obs::Recorder;

    #[test]
    fn default_slos_cover_quality_degradation_quarantine_and_absence() {
        let config = MonitorConfig::with_default_slos(3, -1.0).with_publish_budget(5e6);
        let names: Vec<&str> = config.rules.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"forecast-quality-h0"));
        assert!(names.contains(&"forecast-quality-h2"));
        assert!(names.contains(&"degradation-dwell-h1"));
        assert!(names.contains(&"quarantine-spike"));
        assert!(names.contains(&"ingest-stalled"));
        assert!(names.contains(&"publish-latency-budget"));
    }

    #[test]
    fn observe_round_publishes_state_and_fires_rules() {
        let rec = Recorder::new();
        let gauge = rec.gauge("forecast.mse.h0");
        let config = MonitorConfig::default().rules(vec![AlertRule::new(
            "band",
            Severity::Critical,
            Condition::GaugeAbove { gauge: "forecast.mse.h0".into(), above: 1.0, window: 1 },
        )]);
        let mut monitor = Monitor::new(config).expect("no http, cannot fail");
        let tracer = Tracer::disabled();

        gauge.set(0.5);
        assert!(monitor.observe_round(1, &rec.snapshot(), &[], &tracer).is_empty());
        let quiet = monitor.state();
        assert_eq!((quiet.epoch, quiet.round), (1, 1));
        assert!(quiet.health.contains("\"status\":\"ok\""));
        assert_eq!(quiet.alerts, "[]");
        assert_eq!(check_prometheus(&quiet.metrics), Vec::<String>::new());

        gauge.set(7.5);
        let changes = monitor.observe_round(2, &rec.snapshot(), &[], &tracer);
        assert!(matches!(&changes[0], AlertChange::Fired(a) if a.rule == "band"));
        let firing = monitor.state();
        assert_eq!(firing.epoch, 2);
        assert!(firing.health.contains("\"status\":\"critical\""));
        assert!(firing.alerts.contains("\"rule\":\"band\""));
        assert!(firing.metrics.contains("alerts_firing{severity=\"critical\"} 1"));
        assert!(firing.dashboard.contains("[critical] band"));
        assert_eq!(monitor.transition_log().len(), 1);
    }

    #[test]
    fn monitor_serves_live_state_over_http() {
        use std::io::{Read as _, Write as _};
        use std::net::TcpStream;

        let rec = Recorder::new();
        rec.counter("controller.rounds").inc();
        let mut monitor =
            Monitor::new(MonitorConfig::default().http_port(0)).expect("ephemeral bind");
        let addr = monitor.endpoint().expect("http enabled");
        let tracer = Tracer::disabled();
        monitor.observe_round(1, &rec.snapshot(), &[], &tracer);

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("controller_rounds 1"), "{response}");
    }
}
