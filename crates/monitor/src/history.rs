//! Round-clocked metrics retention.
//!
//! A [`MetricsHistory`] is a fixed-capacity ring of per-round
//! [`MetricsDelta`]s: each controller round contributes the *change* since
//! the previous round (counter and histogram increments, gauge levels),
//! keyed by the round number of the pipeline's `(round, seq)` logical
//! clock. Because rounds — not wall time — clock the ring, retention is
//! deterministic: two runs that execute the same rounds retain the same
//! deltas regardless of worker-pool width or how long each round took.
//!
//! Windowed queries ([`MetricsHistory::counter_increase`],
//! [`MetricsHistory::gauge_mean`], [`MetricsHistory::histogram_window`],
//! …) fold the newest `window` deltas, which is all an alert rule ever
//! needs: rates are increments over rounds, levels are gauge series, and
//! latency quantiles come from the merged bucket counts of the window.

use std::collections::VecDeque;

use qb_obs::{HistogramSnapshot, MetricsDelta, MetricsSnapshot};

/// One retained round: the logical round number and what changed in it.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDelta {
    /// Round number on the pipeline's logical clock.
    pub round: u64,
    /// Change since the previous observed round.
    pub delta: MetricsDelta,
}

/// A fixed-capacity ring of per-round metric deltas with windowed queries.
#[derive(Debug, Clone, Default)]
pub struct MetricsHistory {
    capacity: usize,
    ring: VecDeque<RoundDelta>,
    /// The last full snapshot observed — the diff base for the next round
    /// and the level source for "current value" queries.
    latest: Option<MetricsSnapshot>,
}

impl MetricsHistory {
    /// A history retaining the most recent `capacity` rounds (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, ring: VecDeque::with_capacity(capacity), latest: None }
    }

    /// Observes one round's full snapshot: records the delta against the
    /// previously observed snapshot (the first observation diffs against
    /// empty, so lifetime totals land in round one's delta) and evicts
    /// the oldest round beyond capacity.
    pub fn observe(&mut self, round: u64, snapshot: &MetricsSnapshot) {
        let delta = match &self.latest {
            Some(prev) => snapshot.diff(prev),
            None => snapshot.diff(&MetricsSnapshot::default()),
        };
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(RoundDelta { round, delta });
        self.latest = Some(snapshot.clone());
    }

    /// Rounds currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The ring capacity in rounds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recently observed round number.
    pub fn latest_round(&self) -> Option<u64> {
        self.ring.back().map(|r| r.round)
    }

    /// The most recently observed full snapshot.
    pub fn latest_snapshot(&self) -> Option<&MetricsSnapshot> {
        self.latest.as_ref()
    }

    /// The retained deltas, oldest first.
    pub fn rounds(&self) -> impl Iterator<Item = &RoundDelta> {
        self.ring.iter()
    }

    /// The newest `window` deltas, newest first.
    fn window(&self, window: usize) -> impl Iterator<Item = &RoundDelta> {
        self.ring.iter().rev().take(window.max(1))
    }

    /// Total increments of `counter` across the newest `window` rounds
    /// (0 when the counter never appeared).
    pub fn counter_increase(&self, counter: &str, window: usize) -> u64 {
        self.window(window).map(|r| r.delta.counters.get(counter).copied().unwrap_or(0)).sum()
    }

    /// Mean increments of `counter` per retained round over the newest
    /// `window` rounds (`None` before the first observation).
    pub fn counter_rate(&self, counter: &str, window: usize) -> Option<f64> {
        let rounds = self.window(window).count();
        if rounds == 0 {
            return None;
        }
        Some(self.counter_increase(counter, window) as f64 / rounds as f64)
    }

    /// Gauge levels across the newest `window` rounds, oldest first.
    /// Rounds where the gauge was not registered are skipped.
    fn gauge_series(&self, gauge: &str, window: usize) -> Vec<f64> {
        let mut series: Vec<f64> =
            self.window(window).filter_map(|r| r.delta.gauges.get(gauge).copied()).collect();
        series.reverse();
        series
    }

    /// Mean gauge level over the newest `window` rounds (`None` when the
    /// gauge never appeared in the window).
    pub fn gauge_mean(&self, gauge: &str, window: usize) -> Option<f64> {
        let series = self.gauge_series(gauge, window);
        if series.is_empty() {
            return None;
        }
        Some(series.iter().sum::<f64>() / series.len() as f64)
    }

    /// Largest gauge level in the newest `window` rounds.
    pub fn gauge_max(&self, gauge: &str, window: usize) -> Option<f64> {
        self.gauge_series(gauge, window).into_iter().reduce(f64::max)
    }

    /// The gauge's most recent level.
    pub fn gauge_last(&self, gauge: &str) -> Option<f64> {
        self.latest.as_ref().and_then(|s| s.gauges.get(gauge).copied())
    }

    /// Absolute change of the gauge between the oldest and newest levels
    /// inside the window (`None` with fewer than two observations).
    pub fn gauge_change(&self, gauge: &str, window: usize) -> Option<f64> {
        let series = self.gauge_series(gauge, window);
        match (series.first(), series.last()) {
            (Some(first), Some(last)) if series.len() >= 2 => Some(last - first),
            _ => None,
        }
    }

    /// The merged histogram increments across the newest `window` rounds:
    /// per-bucket counts, sums, and event counts added element-wise.
    /// `None` when the histogram never appeared in the window. Rounds
    /// where a bound shape differs (impossible for live registries) are
    /// skipped.
    pub fn histogram_window(&self, histogram: &str, window: usize) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for r in self.window(window) {
            let Some(h) = r.delta.histograms.get(histogram) else { continue };
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => {
                    if m.bounds_nanos != h.bounds_nanos || m.buckets.len() != h.buckets.len() {
                        continue;
                    }
                    for (a, b) in m.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                    m.sum_nanos += h.sum_nanos;
                    m.count += h.count;
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_obs::Recorder;
    use std::time::Duration;

    #[test]
    fn retention_is_bounded_and_round_keyed() {
        let rec = Recorder::new();
        let c = rec.counter("n");
        let mut h = MetricsHistory::new(3);
        for round in 1..=5 {
            c.add(round);
            h.observe(round, &rec.snapshot());
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.latest_round(), Some(5));
        let retained: Vec<u64> = h.rounds().map(|r| r.round).collect();
        assert_eq!(retained, vec![3, 4, 5]);
        // Deltas hold per-round increments, not totals.
        let incs: Vec<u64> = h.rounds().map(|r| r.delta.counters["n"]).collect();
        assert_eq!(incs, vec![3, 4, 5]);
    }

    #[test]
    fn windowed_counter_and_gauge_queries() {
        let rec = Recorder::new();
        let c = rec.counter("hits");
        let g = rec.gauge("level");
        let mut h = MetricsHistory::new(8);
        for round in 1..=4 {
            c.add(10);
            g.set(round as f64);
            h.observe(round, &rec.snapshot());
        }
        assert_eq!(h.counter_increase("hits", 2), 20);
        assert_eq!(h.counter_increase("hits", 100), 40);
        assert_eq!(h.counter_rate("hits", 4), Some(10.0));
        assert_eq!(h.gauge_mean("level", 2), Some(3.5));
        assert_eq!(h.gauge_max("level", 4), Some(4.0));
        assert_eq!(h.gauge_last("level"), Some(4.0));
        assert_eq!(h.gauge_change("level", 3), Some(2.0));
        assert_eq!(h.gauge_mean("missing", 4), None);
        assert_eq!(h.counter_increase("missing", 4), 0);
    }

    #[test]
    fn histogram_window_merges_bucket_increments() {
        let rec = Recorder::new();
        let hist = rec.histogram_with_bounds("t", &[1_000, 1_000_000]);
        let mut h = MetricsHistory::new(4);
        hist.record(Duration::from_nanos(10));
        h.observe(1, &rec.snapshot());
        hist.record(Duration::from_micros(5));
        hist.record(Duration::from_micros(7));
        h.observe(2, &rec.snapshot());
        let merged = h.histogram_window("t", 2).expect("histogram present");
        assert_eq!(merged.count, 3);
        assert_eq!(merged.buckets, vec![1, 2, 0]);
        // A one-round window sees only that round's increments.
        assert_eq!(h.histogram_window("t", 1).unwrap().count, 2);
    }
}
