//! Property-based tests for the linear-algebra kernel.

use proptest::prelude::*;
use qb_linalg::{cholesky_solve, lu_solve, ridge_regression, symmetric_eigen, Matrix, Pca};

fn small_f64() -> impl Strategy<Value = f64> {
    // Well-conditioned range: avoids overflow without losing generality.
    -100.0..100.0f64
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(small_f64(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (AB)C = A(BC) for conformable shapes.
    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!((&left - &right).frobenius_norm() < 1e-6 * (1.0 + left.frobenius_norm()));
    }

    /// (A + B)ᵀ = Aᵀ + Bᵀ and (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_laws(a in matrix(3, 4), b in matrix(3, 4), c in matrix(4, 2)) {
        let sum_t = (&a + &b).transpose();
        let t_sum = &a.transpose() + &b.transpose();
        prop_assert_eq!(sum_t, t_sum);
        let prod_t = a.matmul(&c).transpose();
        let t_prod = c.transpose().matmul(&a.transpose());
        prop_assert!((&prod_t - &t_prod).frobenius_norm() < 1e-8 * (1.0 + prod_t.frobenius_norm()));
    }

    /// Cholesky and LU agree on SPD systems built as AᵀA + I.
    #[test]
    fn solvers_agree_on_spd(a in matrix(5, 3), b in proptest::collection::vec(small_f64(), 3)) {
        let mut spd = a.gram();
        for i in 0..3 {
            spd[(i, i)] += 1.0;
        }
        let x1 = cholesky_solve(&spd, &b).expect("SPD");
        let x2 = lu_solve(&spd, &b).expect("nonsingular");
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-6 * (1.0 + p.abs()));
        }
        // And the solution actually solves the system.
        let back = spd.matvec(&x1);
        for (p, q) in back.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-5 * (1.0 + q.abs()));
        }
    }

    /// Ridge regression residuals are orthogonal-ish: increasing lambda
    /// never increases the weight norm.
    #[test]
    fn ridge_weight_norm_monotone_in_lambda(x in matrix(12, 3), y in matrix(12, 2)) {
        let w_small = ridge_regression(&x, &y, 1e-6).expect("solvable");
        let w_big = ridge_regression(&x, &y, 1e3).expect("solvable");
        prop_assert!(w_big.frobenius_norm() <= w_small.frobenius_norm() + 1e-9);
    }

    /// Eigendecomposition reconstructs symmetric matrices.
    #[test]
    fn eigen_reconstruction(a in matrix(4, 4)) {
        // Symmetrize.
        let sym = {
            let mut s = Matrix::zeros(4, 4);
            for i in 0..4 {
                for j in 0..4 {
                    s[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
                }
            }
            s
        };
        let e = symmetric_eigen(&sym);
        let mut lam = Matrix::zeros(4, 4);
        for i in 0..4 {
            lam[(i, i)] = e.eigenvalues[i];
        }
        let recon = e.eigenvectors.matmul(&lam).matmul(&e.eigenvectors.transpose());
        prop_assert!((&recon - &sym).frobenius_norm() < 1e-6 * (1.0 + sym.frobenius_norm()));
        // Eigenvalues sorted descending.
        for w in e.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounds(a in proptest::collection::vec(small_f64(), 6),
                     b in proptest::collection::vec(small_f64(), 6)) {
        let s = qb_linalg::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
        prop_assert!((s - qb_linalg::cosine_similarity(&b, &a)).abs() < 1e-12);
    }

    /// PCA projection of the mean row is the origin, and projecting
    /// preserves the sample count.
    #[test]
    fn pca_centers_data(data in matrix(10, 4)) {
        let pca = Pca::fit(&data, 2);
        let projected = pca.transform_all(&data);
        prop_assert_eq!(projected.rows(), 10);
        // Column means of the projection are ~0 (centering).
        for c in 0..projected.cols() {
            let mean: f64 = projected.col(c).iter().sum::<f64>() / 10.0;
            prop_assert!(mean.abs() < 1e-6, "column {} mean {}", c, mean);
        }
    }
}
