//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

use rand::Rng;

/// A dense, row-major matrix of `f64` values.
///
/// The type is deliberately simple: a shape plus a flat `Vec<f64>`. All the
/// forecasting models in `qb-forecast` are small enough (hundreds of rows /
/// columns) that naive triple-loop multiplication with a transposed
/// right-hand side is fast enough and keeps this crate free of unsafe code.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: nrows, cols: ncols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A matrix with entries drawn uniformly from `[-scale, scale]`.
    /// Used for neural-network weight initialization.
    pub fn random_uniform<R: Rng>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a fresh `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows sequentially, which
        // is the cache-friendly order for row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|r| crate::dot(self.row(r), v)).collect()
    }

    /// `selfᵀ * v` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "tr_matvec: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let x = v[r];
            if x == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * x;
            }
        }
        out
    }

    /// Gram matrix `selfᵀ * self` computed symmetrically.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place scale by a constant.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `self += alpha * other` (AXPY), used by the optimizers.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn tr_matvec_matches_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = vec![1.0, -1.0, 2.0];
        assert_eq!(a.tr_matvec(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[vec![2.0, 4.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }
}
