//! Linear-system solvers and the ridge-regression closed form.

use crate::Matrix;

/// Errors produced by the direct solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not positive definite (Cholesky) or is singular (LU).
    Singular,
    /// Operand shapes are incompatible.
    ShapeMismatch { expected: (usize, usize), got: (usize, usize) },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular or not positive definite"),
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// factorization (`A = L Lᵀ`), the fast path for normal-equation solves.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch { expected: (n, n), got: a.shape() });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch { expected: (n, 1), got: (b.len(), 1) });
    }
    let l = cholesky_factor(a)?;
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let s: f64 = (0..i).map(|j| l[(i, j)] * y[j]).sum();
        y[i] = (b[i] - s) / l[(i, i)];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let s: f64 = (i + 1..n).map(|j| l[(j, i)] * x[j]).sum();
        x[i] = (y[i] - s) / l[(i, i)];
    }
    Ok(x)
}

/// Computes the lower Cholesky factor `L` of an SPD matrix.
fn cholesky_factor(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let s: f64 = (0..j).map(|k| l[(i, k)] * l[(j, k)]).sum();
            if i == j {
                let d = a[(i, i)] - s;
                if d <= 0.0 || !d.is_finite() {
                    return Err(LinalgError::Singular);
                }
                l[(i, j)] = d.sqrt();
            } else {
                l[(i, j)] = (a[(i, j)] - s) / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for general square `A` via LU with partial pivoting.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch { expected: (n, n), got: a.shape() });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch { expected: (n, 1), got: (b.len(), 1) });
    }
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot: pick the largest magnitude in this column.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, lu[(r, col)].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty column");
        if pivot_val < 1e-300 || !pivot_val.is_finite() {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = lu[(col, c)];
                lu[(col, c)] = lu[(pivot_row, c)];
                lu[(pivot_row, c)] = tmp;
            }
            perm.swap(col, pivot_row);
            x.swap(col, pivot_row);
        }
        let pivot = lu[(col, col)];
        for r in col + 1..n {
            let factor = lu[(r, col)] / pivot;
            lu[(r, col)] = factor;
            for c in col + 1..n {
                let v = lu[(col, c)];
                lu[(r, c)] -= factor * v;
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        let s: f64 = (i + 1..n).map(|j| lu[(i, j)] * x[j]).sum();
        x[i] = (x[i] - s) / lu[(i, i)];
    }
    Ok(x)
}

/// Ridge-regularized least squares: returns the weight matrix `W`
/// (`features × targets`) minimizing `‖X W − Y‖² + λ‖W‖²`.
///
/// This is the closed-form solution `(XᵀX + λI)⁻¹ XᵀY` used by QB5000's LR
/// model (§6.1): one multi-output linear map trained jointly over all
/// clusters. Cholesky is attempted first (the regularized Gram matrix is SPD
/// for λ > 0) with an LU fallback for numerically difficult inputs.
pub fn ridge_regression(x: &Matrix, y: &Matrix, lambda: f64) -> Result<Matrix, LinalgError> {
    if x.rows() != y.rows() {
        return Err(LinalgError::ShapeMismatch { expected: (x.rows(), y.cols()), got: y.shape() });
    }
    let mut gram = x.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let xty = x.transpose().matmul(y);
    let mut w = Matrix::zeros(x.cols(), y.cols());
    for t in 0..y.cols() {
        let rhs = xty.col(t);
        let col = match cholesky_solve(&gram, &rhs) {
            Ok(c) => c,
            Err(_) => lu_solve(&gram, &rhs)?,
        };
        for (i, v) in col.into_iter().enumerate() {
            w[(i, t)] = v;
        }
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5]
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = cholesky_solve(&a, &[10.0, 8.0]).unwrap();
        assert_close(&x, &[1.75, 1.5], 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(cholesky_solve(&a, &[1.0, 1.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn lu_solves_general_system() {
        // Requires pivoting: leading zero.
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0]]);
        let x = lu_solve(&a, &[4.0, 3.0]).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-10);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let b = [1.0, 2.0, 3.0];
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = lu_solve(&a, &b).unwrap();
        assert_close(&x1, &x2, 1e-10);
    }

    #[test]
    fn ridge_recovers_exact_linear_map() {
        // y = 2*x0 - 3*x1, plenty of samples, tiny lambda.
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|r| vec![2.0 * r[0] - 3.0 * r[1]]).collect();
        let x = Matrix::from_rows(&xs);
        let y = Matrix::from_rows(&ys);
        let w = ridge_regression(&x, &y, 1e-9).unwrap();
        assert!((w[(0, 0)] - 2.0).abs() < 1e-5);
        assert!((w[(1, 0)] + 3.0).abs() < 1e-5);
    }

    #[test]
    fn ridge_multi_output() {
        let xs: Vec<Vec<f64>> = (1..30).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|r| vec![r[0] * 5.0, 7.0 - r[0]]).collect();
        let w = ridge_regression(&Matrix::from_rows(&xs), &Matrix::from_rows(&ys), 1e-9).unwrap();
        assert!((w[(0, 0)] - 5.0).abs() < 1e-5);
        assert!((w[(0, 1)] + 1.0).abs() < 1e-5);
        assert!((w[(1, 1)] - 7.0).abs() < 1e-4);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let xs: Vec<Vec<f64>> = (1..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|r| vec![r[0]]).collect();
        let w_small =
            ridge_regression(&Matrix::from_rows(&xs), &Matrix::from_rows(&ys), 1e-9).unwrap();
        let w_big =
            ridge_regression(&Matrix::from_rows(&xs), &Matrix::from_rows(&ys), 1e6).unwrap();
        assert!(w_big[(0, 0)].abs() < w_small[(0, 0)].abs());
    }
}
