//! # qb-linalg
//!
//! A small, dependency-free dense linear-algebra kernel that backs the
//! QB5000 forecasting models (`qb-forecast`). It intentionally implements
//! only what the models need — no BLAS bindings, no SIMD intrinsics — while
//! staying cache-friendly (row-major storage, blocked-free but
//! iterator-driven inner loops that the compiler auto-vectorizes).
//!
//! Provided functionality:
//!
//! * [`Matrix`] — row-major `f64` matrix with the usual arithmetic,
//!   transpose, and matrix multiplication.
//! * [`solve`] — linear-system solvers: Cholesky (SPD) with an LU
//!   (partial-pivoting) fallback, plus ridge-regularized least squares,
//!   which is the closed form behind the paper's LR model (§6.1).
//! * [`eigen`] — symmetric eigendecomposition via the cyclic Jacobi method.
//! * [`pca`] — principal component analysis used to reproduce the
//!   3-D input-space projection of Appendix B (Figure 15).
//!
//! All routines are deterministic; randomized initialization helpers take an
//! explicit RNG.

pub mod eigen;
pub mod matrix;
pub mod pca;
pub mod solve;

pub use eigen::{symmetric_eigen, EigenDecomposition};
pub use matrix::Matrix;
pub use pca::Pca;
pub use solve::{cholesky_solve, lu_solve, ridge_regression, LinalgError};

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Cosine similarity between two vectors, the Clusterer's similarity metric
/// (§5.1). Returns 0.0 when either vector is all-zero so that a template
/// with no recorded arrivals is never judged similar to anything.
#[inline]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Squared L2 distance between two vectors.
#[inline]
pub fn sq_l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_l2_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// L2 distance, used by the logical-feature ablation clustering (§7.7).
#[inline]
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    sq_l2_distance(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm_basic() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_identical_vectors_is_one() {
        let v = [0.3, 0.9, 1.7];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        assert!((cosine_similarity(&[1.0, 2.0], &[-1.0, -2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l2_distance_basic() {
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
