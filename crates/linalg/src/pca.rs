//! Principal component analysis.
//!
//! Reproduces the dimensionality reduction of the paper's Appendix B
//! (Figure 15): projecting the kernel-regression input vectors into 3-D
//! space to visualize how spike inputs separate from normal traffic.

use crate::{symmetric_eigen, Matrix};

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature means subtracted before projection.
    mean: Vec<f64>,
    /// `features × k` matrix of principal axes (columns).
    components: Matrix,
    /// Variance explained by each retained component.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a `k`-component PCA on the rows of `data` (samples × features).
    ///
    /// `k` is clamped to the number of features. Uses the covariance matrix
    /// plus the Jacobi eigensolver; intended for feature counts up to a few
    /// hundred, which covers the three-week hourly windows of Appendix B.
    ///
    /// # Panics
    /// Panics if `data` has no rows.
    pub fn fit(data: &Matrix, k: usize) -> Self {
        let n = data.rows();
        assert!(n > 0, "Pca::fit: empty data");
        let d = data.cols();
        let k = k.min(d);

        let mut mean = vec![0.0; d];
        for r in 0..n {
            for (m, &x) in mean.iter_mut().zip(data.row(r)) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }

        // Covariance matrix (d × d).
        let mut cov = Matrix::zeros(d, d);
        for r in 0..n {
            let row = data.row(r);
            for i in 0..d {
                let xi = row[i] - mean[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..d {
                    cov[(i, j)] += xi * (row[j] - mean[j]);
                }
            }
        }
        let denom = (n.max(2) - 1) as f64;
        for i in 0..d {
            for j in i..d {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }

        let eig = symmetric_eigen(&cov);
        let mut components = Matrix::zeros(d, k);
        for c in 0..k {
            for r in 0..d {
                components[(r, c)] = eig.eigenvectors[(r, c)];
            }
        }
        let explained_variance = eig.eigenvalues[..k].to_vec();
        Self { mean, components, explained_variance }
    }

    /// Projects one sample into the principal subspace.
    ///
    /// # Panics
    /// Panics if `sample.len()` differs from the fitted feature count.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.mean.len(), "Pca::transform: dimension mismatch");
        let centered: Vec<f64> =
            sample.iter().zip(&self.mean).map(|(x, m)| x - m).collect();
        self.components.tr_matvec(&centered)
    }

    /// Projects every row of `data`.
    pub fn transform_all(&self, data: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..data.rows()).map(|r| self.transform(data.row(r))).collect();
        Matrix::from_rows(&rows)
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_follows_dominant_direction() {
        // Points spread along the (1,1) diagonal with small noise in (1,-1).
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 - 25.0;
                let noise = ((i * 7919) % 13) as f64 / 13.0 - 0.5;
                vec![t + noise, t - noise]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 2);
        // First axis ≈ (1,1)/√2 up to sign.
        let a0 = pca.components[(0, 0)];
        let a1 = pca.components[(1, 0)];
        assert!((a0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((a0 - a1).abs() < 0.05, "axis should be diagonal: ({a0}, {a1})");
        assert!(pca.explained_variance()[0] > pca.explained_variance()[1] * 100.0);
    }

    #[test]
    fn transform_of_mean_is_origin() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 10.0]];
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 1);
        let proj = pca.transform(&[3.0, 6.0]);
        assert!(proj[0].abs() < 1e-9);
    }

    #[test]
    fn k_clamped_to_feature_count() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        let pca = Pca::fit(&data, 10);
        assert_eq!(pca.k(), 2);
    }

    #[test]
    fn projection_preserves_pairwise_order_along_main_axis() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 1);
        let p = pca.transform_all(&data);
        let col = p.col(0);
        let increasing = col.windows(2).all(|w| w[1] > w[0]);
        let decreasing = col.windows(2).all(|w| w[1] < w[0]);
        assert!(increasing || decreasing, "1-D projection must be monotone: {col:?}");
    }
}
