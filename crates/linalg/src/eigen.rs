//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::Matrix;

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
///
/// Eigenpairs are sorted by descending eigenvalue; `eigenvectors` stores one
/// eigenvector per *column*, matching the usual convention.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    pub eigenvalues: Vec<f64>,
    pub eigenvectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// rotation method. Converges quadratically; suitable for the covariance
/// matrices PCA needs (tens to a few hundred dimensions).
///
/// # Panics
/// Panics if `a` is not square.
pub fn symmetric_eigen(a: &Matrix) -> EigenDecomposition {
    let n = a.rows();
    assert_eq!(a.cols(), n, "symmetric_eigen: matrix must be square");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = off_diagonal_norm(&m);
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Compute the Jacobi rotation that zeroes m[p][q].
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));

    let eigenvalues: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            eigenvectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    EigenDecomposition { eigenvalues, eigenvectors }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += m[(i, j)] * m[(i, j)];
            }
        }
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ]);
        let e = symmetric_eigen(&a);
        assert!((e.eigenvalues[0] - 5.0).abs() < 1e-9);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-9);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn known_2x2_eigenpairs() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-9);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-9);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.eigenvectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_a_equals_v_lambda_vt() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 2.0],
            vec![1.0, 3.0, 0.5],
            vec![2.0, 0.5, 5.0],
        ]);
        let e = symmetric_eigen(&a);
        let mut lam = Matrix::zeros(3, 3);
        for i in 0..3 {
            lam[(i, i)] = e.eigenvalues[i];
        }
        let recon = e.eigenvectors.matmul(&lam).matmul(&e.eigenvectors.transpose());
        assert!((&recon - &a).frobenius_norm() < 1e-8);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let e = symmetric_eigen(&a);
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors);
        assert!((&vtv - &Matrix::identity(3)).frobenius_norm() < 1e-8);
    }
}
