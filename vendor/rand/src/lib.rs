//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of rand 0.8's API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `SmallRng` uses on 64-bit targets — so statistical
//! quality is comparable. Streams are deterministic per seed but are NOT
//! bit-identical to the real crate's; nothing in this workspace depends on
//! the exact stream, only on determinism.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is vendored.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform range sampling. Mirrors rand's `SampleUniform` so
/// that [`SampleRange`] can be a *single* blanket impl per range shape —
/// that shape is what lets integer-literal defaulting (`gen_range(1..5000)`
/// with no annotations) infer the same types the real crate does.
pub trait SampleUniform: Sized {
    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }

    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }

    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "gen_range: empty inclusive range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_excl(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_incl(rng, lo, hi)
    }
}

/// The user-facing extension trait, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind real `SmallRng` on 64-bit
    /// platforms. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl SmallRng {
        /// The raw 256-bit generator state, for exact persistence. A
        /// generator rebuilt with [`SmallRng::from_state`] continues the
        /// stream from precisely this point.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`SmallRng::state`].
        ///
        /// An all-zero state is the xoshiro fixed point (it only emits
        /// zeros), so it is re-seeded through SplitMix64 instead — the same
        /// escape hatch the reference implementation uses.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as super::SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0..=3usize);
            assert!(i <= 3);
            let s = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&s));
        }
    }

    #[test]
    fn uniform_f64_mean_near_half() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        for _ in 0..37 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        // The all-zero fixed point is rejected rather than reproduced.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.gen::<u64>(), 0);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
