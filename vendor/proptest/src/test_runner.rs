//! Runner configuration and per-case error plumbing.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Subset of real proptest's config: only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed; the case is discarded.
    Reject(&'static str),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructor matching real proptest's `TestCaseError::fail(reason)`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Deterministic per-test RNG: seed derived from the test name (FNV-1a).
pub fn rng_for(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}
