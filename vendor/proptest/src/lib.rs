//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, vendored because the build environment cannot reach crates.io.
//!
//! It implements the subset of the API this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_flat_map`
//! / `prop_recursive`, range and regex-literal strategies, tuples,
//! [`collection::vec`], [`option::of`], [`prop_oneof!`], and the
//! [`proptest!`] / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message but does not minimize them.
//! * **Fixed derived seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are deterministic (no persistence files).
//! * Regex strategies support the literal subset used here: character
//!   classes, `.`, and the `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Size specifier for [`vec`]: an exact length or a half-open range.
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "collection::vec: empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// `Vec` strategy: `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// `Option` strategy: `None` about a quarter of the time (matching real
    /// proptest's default weighting of 1:3).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Terminate the current case as failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), a, b
        );
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Discard the current case (regenerate) when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-block macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(cond),
                    ) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(32).max(4096) {
                            panic!(
                                "proptest {}: too many prop_assume rejections ({cond})",
                                stringify!($name)
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {msg}\n\
                             (vendored proptest: inputs are not shrunk)",
                            stringify!($name),
                            passed
                        );
                    }
                }
            }
        }
    )*};
}
