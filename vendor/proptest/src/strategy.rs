//! Value-generation strategies: the [`Strategy`] trait, primitive sources,
//! and the combinators the workspace's property tests use.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: `generate` draws one value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `pred` holds (capped; `reason` is reported if the
    /// cap is hit, mirroring real proptest's rejection bookkeeping).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Bounded recursive strategy: expands `recurse` over itself `depth`
    /// times, choosing between the leaf and the recursive branch at each
    /// level. `_desired_size`/`_expected_branch_size` are accepted for API
    /// compatibility but unused (no size-driven growth control).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.reason);
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof!: no alternatives");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
        if rng.gen_range(0..4usize) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive sources: ranges, any::<T>(), and regex string literals.
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

/// Full-range generation for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite-heavy mix with occasional zero/negative extremes; arbitrary
    /// bit patterns would mostly be uninteresting giant magnitudes.
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        match rng.gen_range(0..8usize) {
            0 => 0.0,
            1 => -(rng.gen::<f64>() * 1e6),
            _ => rng.gen::<f64>() * 1e6,
        }
    }
}

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// Tuple strategies (2..=6 elements, matching workspace usage).
macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Regex-literal string strategy.
// ---------------------------------------------------------------------------

/// One regex atom with its repetition bounds.
struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

enum AtomKind {
    /// Literal character.
    Lit(char),
    /// `.` — mostly printable ASCII, salted with newline/quote/unicode so
    /// totality tests see genuinely hostile input.
    Dot,
    /// `[...]` — expanded list of candidate characters.
    Class(Vec<char>),
}

fn parse_class(chars: &mut core::iter::Peekable<core::str::Chars<'_>>, pat: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars.next().unwrap_or_else(|| panic!("unterminated [..] in regex `{pat}`"));
        match c {
            ']' => break,
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().expect("range start");
                let hi = chars.next().expect("range end");
                assert!(lo <= hi, "descending class range in regex `{pat}`");
                out.extend(lo..=hi);
            }
            c => {
                if let Some(p) = prev.take() {
                    out.push(p);
                }
                prev = Some(c);
            }
        }
    }
    if let Some(p) = prev {
        out.push(p);
    }
    assert!(!out.is_empty(), "empty character class in regex `{pat}`");
    out
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut chars = pat.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let kind = match c {
            '.' => AtomKind::Dot,
            '[' => AtomKind::Class(parse_class(&mut chars, pat)),
            '\\' => AtomKind::Lit(chars.next().unwrap_or('\\')),
            c => AtomKind::Lit(c),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut digits = String::new();
                let mut min = None;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => {
                            min = Some(digits.parse::<usize>().unwrap_or_else(|_| {
                                panic!("bad quantifier in regex `{pat}`")
                            }));
                            digits.clear();
                        }
                        Some(d) => digits.push(d),
                        None => panic!("unterminated quantifier in regex `{pat}`"),
                    }
                }
                let last = digits
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier in regex `{pat}`"));
                match min {
                    Some(m) => (m, last),
                    None => (last, last),
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

/// Characters `.` can produce beyond printable ASCII.
const HOSTILE: &[char] =
    &['\n', '\t', '\r', '\'', '"', '\\', '\0', 'é', 'λ', '中', '\u{7f}', '😀'];

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                match &atom.kind {
                    AtomKind::Lit(c) => out.push(*c),
                    AtomKind::Dot => {
                        if rng.gen_range(0..10usize) == 0 {
                            out.push(HOSTILE[rng.gen_range(0..HOSTILE.len())]);
                        } else {
                            out.push(char::from_u32(rng.gen_range(32..127u32)).expect("ascii"));
                        }
                    }
                    AtomKind::Class(cs) => out.push(cs[rng.gen_range(0..cs.len())]),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn regex_identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().expect("head").is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn regex_dot_and_star() {
        let mut r = rng();
        for _ in 0..100 {
            let s = ".{0,120}".generate(&mut r);
            assert!(s.chars().count() <= 120);
        }
        for _ in 0..100 {
            let s = "[a-c%_]*".generate(&mut r);
            assert!(s.chars().all(|c| "abc%_".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let strat = (0i64..10, 10i64..20)
            .prop_map(|(a, b)| a + b)
            .prop_filter("positive", |v| *v >= 10);
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((10..30).contains(&v));
        }
    }

    #[test]
    fn vec_and_option_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(0.0f64..1.0, 1..5).generate(&mut r);
            assert!((1..5).contains(&v.len()));
        }
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            match crate::option::of(0i64..5).generate(&mut r) {
                None => saw_none = true,
                Some(x) => {
                    assert!((0..5).contains(&x));
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn union_covers_all_branches() {
        let mut r = rng();
        let strat = crate::prop_oneof![Just(1i64), Just(2i64), 10i64..20];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(strat.generate(&mut r).min(10));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&10));
    }

    #[test]
    fn recursive_terminates() {
        let mut r = rng();
        let leaf = crate::prop_oneof![Just("x".to_string()), Just("y".to_string())];
        let strat = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
        });
        for _ in 0..100 {
            let s = strat.generate(&mut r);
            assert!(!s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(a in 0i64..100, b in 0i64..100) {
            prop_assume!(a != b);
            prop_assert!(a + b >= a.min(b));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }
}
