//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored because the build environment cannot reach
//! crates.io.
//!
//! It implements just enough of the 0.5 API for the workspace's benches to
//! compile and produce *rough* wall-clock numbers: a fixed iteration count
//! per benchmark, mean time printed to stdout, no statistics, no plots.
//! Treat the output as a smoke signal, not a measurement.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark. Small: the numeric benches train real models.
const ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, group: name.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.group, id.label), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.group, id.label), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { elapsed_ns: 0, iters: 0 };
    f(&mut b);
    match b.elapsed_ns.checked_div(b.iters) {
        Some(per_iter) => {
            println!("bench {label}: {per_iter} ns/iter (stub, {} iters)", b.iters)
        }
        None => println!("bench {label}: no iterations recorded"),
    }
}

pub struct Bencher {
    elapsed_ns: u128,
    iters: u128,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self { label: format!("{}/{}", name.into(), param) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

/// Both `criterion_group!` forms: the plain list and the configured block.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the bench binary is invoked with --test;
            // benches are slow, so only run under `cargo bench`.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v * v, BatchSize::SmallInput)
        });
        group.finish();
    }
}
